//! Attack-graph generation and analysis (Sheyner et al. [60]).
//!
//! States are `(zone, privilege)` pairs; edges are exploits instantiated
//! from program facts. The graph answers "how difficult is it to attack
//! this program": is the goal state reachable at all, how short is the
//! shortest attack path, and how many minimal attack paths exist.

use minilang::ast::{ChannelKind, PrivLevel, Program};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Where the attacker currently operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Zone {
    /// Off-host, network access only.
    Remote,
    /// On-host, unprivileged.
    Local,
}

/// Privilege the attacker holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Privilege {
    None,
    User,
    Root,
}

/// One attack-graph state.
pub type State = (Zone, Privilege);

/// The canonical start state: remote, no privilege.
pub const START: State = (Zone::Remote, Privilege::None);

/// The canonical goal: local root.
pub const GOAL: State = (Zone::Local, Privilege::Root);

/// An exploit template instantiated from program facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploitFact {
    /// State required before the exploit.
    pub pre: State,
    /// State granted after the exploit.
    pub post: State,
    /// Which function/vulnerability this exploit abuses.
    pub via: String,
    /// Difficulty in [0, 1] — 0 trivial, 1 near-impossible. Used as the
    /// edge cost for shortest-path ("easiest chain") queries.
    pub difficulty: f64,
}

/// Derive baseline exploit facts from annotations alone: an endpoint lets a
/// remote/local attacker *interact* with the code at the function's
/// privilege. Interaction is a precondition, not a compromise — so these
/// facts only create edges when the paired `vulnerable` flag is set by the
/// caller (the Clairvoyant core pairs them with taint flows).
pub fn interaction_facts(program: &Program, vulnerable_functions: &[String]) -> Vec<ExploitFact> {
    let mut facts = Vec::new();
    for f in program.functions() {
        if !vulnerable_functions.contains(&f.name) {
            continue;
        }
        let granted = match f.privilege() {
            PrivLevel::Root => Privilege::Root,
            PrivLevel::User => Privilege::User,
        };
        for channel in f.endpoint_channels() {
            let (pre_zone, difficulty) = match channel {
                ChannelKind::Network => (Zone::Remote, 0.4),
                ChannelKind::Local => (Zone::Local, 0.3),
                ChannelKind::File => (Zone::Local, 0.5),
            };
            facts.push(ExploitFact {
                pre: (
                    pre_zone,
                    if pre_zone == Zone::Remote {
                        Privilege::None
                    } else {
                        Privilege::User
                    },
                ),
                post: (Zone::Local, granted),
                via: f.name.clone(),
                difficulty,
            });
        }
    }
    facts
}

/// The attack graph over the fixed state space.
#[derive(Debug, Clone, Default)]
pub struct AttackGraph {
    /// Adjacency: state → outgoing exploits.
    edges: BTreeMap<State, Vec<ExploitFact>>,
}

/// Metrics extracted from the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Is the goal state reachable from START?
    pub goal_reachable: bool,
    /// Fewest exploits from START to GOAL (None if unreachable).
    pub shortest_path_len: Option<usize>,
    /// Total difficulty along the easiest chain (None if unreachable).
    pub easiest_path_cost: Option<f64>,
    /// Number of minimal (no repeated state) attack paths to the goal,
    /// capped at `PATH_CAP`.
    pub minimal_paths: usize,
    /// Number of exploit edges.
    pub exploit_count: usize,
}

const PATH_CAP: usize = 10_000;

impl AttackGraph {
    /// Build from exploit facts.
    pub fn from_facts(facts: Vec<ExploitFact>) -> AttackGraph {
        let mut edges: BTreeMap<State, Vec<ExploitFact>> = BTreeMap::new();
        for fact in facts {
            edges.entry(fact.pre).or_default().push(fact);
        }
        // Implicit escalation-free moves: remote attackers with user creds
        // can act locally (shell access is outside the modelled program, so
        // this move is free once user privilege is gained).
        AttackGraph { edges }
    }

    /// All states with outgoing edges.
    pub fn states(&self) -> impl Iterator<Item = &State> {
        self.edges.keys()
    }

    /// Successor states of `s`, with the exploit used.
    fn successors(&self, s: State) -> Vec<(&ExploitFact, State)> {
        let mut out: Vec<(&ExploitFact, State)> = self
            .edges
            .get(&s)
            .into_iter()
            .flatten()
            .map(|f| (f, f.post))
            .collect();
        // Free move: once local user, a remote-user state is redundant;
        // once ANY privilege is held remotely, the attacker can also try
        // local-preconditioned exploits that need only User.
        if s == (Zone::Remote, Privilege::User) || s == (Zone::Local, Privilege::User) {
            // Normalization handled by state equality; nothing extra.
        }
        out.dedup_by(|a, b| a.1 == b.1 && a.0.via == b.0.via);
        out
    }

    /// Compute the metrics from START toward GOAL.
    pub fn metrics(&self) -> GraphMetrics {
        let exploit_count = self.edges.values().map(|v| v.len()).sum();

        // BFS for shortest hop count.
        let mut dist: BTreeMap<State, usize> = BTreeMap::new();
        dist.insert(START, 0);
        let mut queue = VecDeque::from([START]);
        while let Some(s) = queue.pop_front() {
            let d = dist[&s];
            for (_, next) in self.successors(s) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(next) {
                    e.insert(d + 1);
                    queue.push_back(next);
                }
            }
        }
        let shortest_path_len = dist.get(&GOAL).copied();

        // Dijkstra-lite over difficulty (state space is tiny: ≤ 6 states).
        let mut cost: BTreeMap<State, f64> = BTreeMap::new();
        cost.insert(START, 0.0);
        let mut frontier: Vec<State> = vec![START];
        while let Some(s) = frontier.pop() {
            let base = cost[&s];
            for (fact, next) in self.successors(s) {
                let c = base + fact.difficulty;
                if cost.get(&next).is_none_or(|&old| c < old - 1e-12) {
                    cost.insert(next, c);
                    frontier.push(next);
                }
            }
        }
        let easiest_path_cost = cost.get(&GOAL).copied();

        // DFS path counting without repeated states, capped.
        let mut count = 0usize;
        let mut visited: BTreeSet<State> = BTreeSet::new();
        self.count_paths(START, &mut visited, &mut count);

        GraphMetrics {
            goal_reachable: shortest_path_len.is_some(),
            shortest_path_len,
            easiest_path_cost,
            minimal_paths: count,
            exploit_count,
        }
    }

    fn count_paths(&self, s: State, visited: &mut BTreeSet<State>, count: &mut usize) {
        if *count >= PATH_CAP {
            return;
        }
        if s == GOAL {
            *count += 1;
            return;
        }
        visited.insert(s);
        for (_, next) in self.successors(s) {
            if !visited.contains(&next) {
                self.count_paths(next, visited, count);
            }
        }
        visited.remove(&s);
    }
}

impl fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "goal_reachable={} shortest={:?} easiest_cost={:?} paths={} exploits={}",
            self.goal_reachable,
            self.shortest_path_len,
            self.easiest_path_cost,
            self.minimal_paths,
            self.exploit_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn fact(pre: State, post: State, via: &str, difficulty: f64) -> ExploitFact {
        ExploitFact {
            pre,
            post,
            via: via.into(),
            difficulty,
        }
    }

    #[test]
    fn empty_graph_goal_unreachable() {
        let g = AttackGraph::from_facts(vec![]);
        let m = g.metrics();
        assert!(!m.goal_reachable);
        assert_eq!(m.shortest_path_len, None);
        assert_eq!(m.minimal_paths, 0);
        assert_eq!(m.exploit_count, 0);
    }

    #[test]
    fn single_hop_to_root() {
        let g = AttackGraph::from_facts(vec![fact(START, GOAL, "rce", 0.4)]);
        let m = g.metrics();
        assert!(m.goal_reachable);
        assert_eq!(m.shortest_path_len, Some(1));
        assert_eq!(m.easiest_path_cost, Some(0.4));
        assert_eq!(m.minimal_paths, 1);
    }

    #[test]
    fn two_stage_escalation() {
        let g = AttackGraph::from_facts(vec![
            fact(START, (Zone::Local, Privilege::User), "net-rce", 0.4),
            fact((Zone::Local, Privilege::User), GOAL, "lpe", 0.3),
        ]);
        let m = g.metrics();
        assert_eq!(m.shortest_path_len, Some(2));
        assert!((m.easiest_path_cost.unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(m.minimal_paths, 1);
    }

    #[test]
    fn easiest_path_prefers_lower_total_difficulty() {
        let g = AttackGraph::from_facts(vec![
            fact(START, GOAL, "hard-direct", 0.9),
            fact(START, (Zone::Local, Privilege::User), "easy-entry", 0.1),
            fact((Zone::Local, Privilege::User), GOAL, "easy-lpe", 0.2),
        ]);
        let m = g.metrics();
        assert_eq!(m.shortest_path_len, Some(1));
        assert!((m.easiest_path_cost.unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(m.minimal_paths, 2);
    }

    #[test]
    fn parallel_exploits_multiply_paths() {
        let g = AttackGraph::from_facts(vec![
            fact(START, (Zone::Local, Privilege::User), "rce-a", 0.4),
            fact(START, (Zone::Local, Privilege::User), "rce-b", 0.4),
            fact((Zone::Local, Privilege::User), GOAL, "lpe", 0.3),
        ]);
        // Paths are counted over states, not edge multiplicity, so distinct
        // exploits to the same state count once per state sequence; the
        // edge count still reflects both.
        let m = g.metrics();
        assert_eq!(m.exploit_count, 3);
        assert!(m.goal_reachable);
    }

    #[test]
    fn interaction_facts_require_vulnerability() {
        let p = parse_program(
            "app",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(network) @priv(root) fn handle(req: str) { }
                 @endpoint(local) fn cli(a: str) { }"
                    .into(),
            )],
        )
        .unwrap();
        // No functions marked vulnerable → no exploits.
        assert!(interaction_facts(&p, &[]).is_empty());
        // Root network endpoint vulnerable → remote-to-root edge.
        let facts = interaction_facts(&p, &["handle".to_string()]);
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].pre, START);
        assert_eq!(facts[0].post, GOAL);
        let g = AttackGraph::from_facts(facts);
        assert!(g.metrics().goal_reachable);
    }

    #[test]
    fn local_endpoint_needs_local_user() {
        let p = parse_program(
            "app",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(local) @priv(root) fn su(a: str) { }".into(),
            )],
        )
        .unwrap();
        let facts = interaction_facts(&p, &["su".to_string()]);
        assert_eq!(facts[0].pre, (Zone::Local, Privilege::User));
        // From START alone the goal is unreachable (no way on-host).
        let g = AttackGraph::from_facts(facts);
        let m = g.metrics();
        assert!(!m.goal_reachable);
    }

    #[test]
    fn chain_network_user_then_local_root() {
        let p = parse_program(
            "app",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(network) fn handle(req: str) { }
                 @endpoint(local) @priv(root) fn helper(cmd: str) { }"
                    .into(),
            )],
        )
        .unwrap();
        let facts = interaction_facts(&p, &["handle".to_string(), "helper".to_string()]);
        let g = AttackGraph::from_facts(facts);
        let m = g.metrics();
        assert!(m.goal_reachable);
        assert_eq!(m.shortest_path_len, Some(2));
    }

    #[test]
    fn states_listing() {
        let g = AttackGraph::from_facts(vec![fact(START, GOAL, "x", 0.5)]);
        assert_eq!(g.states().count(), 1);
    }
}
