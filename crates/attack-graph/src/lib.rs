//! attack-graph — attack-surface and attack-graph metrics.
//!
//! §4.1 of the paper: *"to measure the attack surface of a program, one can
//! use Relative Attack Surface Quotient (RASQ). … we can estimate how
//! difficult it is to attack a program by building an attack-graph."*
//!
//! * [`rasq`] — Howard/Pincus/Wing-style attack-surface enumeration:
//!   channels, methods, and access rights, each weighted by attackability,
//!   summed into a quotient that is meaningful *relative to* another
//!   configuration of the same system (exactly the caveat the paper quotes).
//! * [`graph`] — Sheyner-style attack graphs: privilege states connected by
//!   exploit edges instantiated from program facts; metrics are goal
//!   reachability, shortest attack path, and number of minimal attack paths.

pub mod graph;
pub mod rasq;

pub use graph::{interaction_facts, AttackGraph, ExploitFact, GraphMetrics, Privilege, Zone};
pub use rasq::{AttackSurface, VectorKind};
