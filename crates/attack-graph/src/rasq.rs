//! Relative Attack Surface Quotient (Howard, Pincus & Wing [41]).
//!
//! RASQ sums *attack vectors* — "the resources available to the attacker,
//! the communication channels, and access rights" — each weighted by how
//! attackable it is. The absolute number is not meaningful; comparing two
//! versions or two candidate libraries is (the paper's own framing).

use minilang::ast::{ChannelKind, PrivLevel, Program};
use minilang::{visit, Intrinsic};
use std::collections::BTreeMap;

/// The attack-vector kinds RASQ enumerates for MiniLang programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VectorKind {
    /// `@endpoint(network)` function.
    NetworkEndpoint,
    /// `@endpoint(local)` function.
    LocalEndpoint,
    /// `@endpoint(file)` function.
    FileEndpoint,
    /// Call to `recv`/`read_input`/`read_int` (open input channel).
    InputChannel,
    /// Call to `send` (output channel an attacker can observe).
    OutputChannel,
    /// Call to `getenv` (environment as input).
    EnvironmentRead,
    /// Call to `open`/`read_file`/`write_file`/`access` (filesystem access).
    FileAccess,
    /// Call to `exec`/`system` (process spawn — a high-value method).
    ProcessSpawn,
    /// Function annotated `@priv(root)` (elevated access rights).
    PrivilegedCode,
    /// Call to an unresolved external function (unknown behaviour).
    UnresolvedExtern,
}

impl VectorKind {
    /// Attackability weight, following the RASQ idea that root-privileged
    /// network-reachable vectors dominate.
    pub fn weight(self) -> f64 {
        match self {
            VectorKind::NetworkEndpoint => 1.0,
            VectorKind::LocalEndpoint => 0.6,
            VectorKind::FileEndpoint => 0.5,
            VectorKind::InputChannel => 0.4,
            VectorKind::OutputChannel => 0.2,
            VectorKind::EnvironmentRead => 0.3,
            VectorKind::FileAccess => 0.3,
            VectorKind::ProcessSpawn => 0.8,
            VectorKind::PrivilegedCode => 0.9,
            VectorKind::UnresolvedExtern => 0.25,
        }
    }
}

/// The enumerated attack surface of one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackSurface {
    /// Vector counts by kind.
    pub vectors: BTreeMap<VectorKind, usize>,
    /// The weighted sum.
    pub quotient: f64,
}

impl AttackSurface {
    /// Enumerate and weigh the attack surface.
    pub fn measure(program: &Program) -> AttackSurface {
        let mut vectors: BTreeMap<VectorKind, usize> = BTreeMap::new();
        let mut add = |kind: VectorKind, n: usize| {
            if n > 0 {
                *vectors.entry(kind).or_insert(0) += n;
            }
        };
        let defined: Vec<&str> = program.functions().map(|f| f.name.as_str()).collect();
        for f in program.functions() {
            for channel in f.endpoint_channels() {
                let kind = match channel {
                    ChannelKind::Network => VectorKind::NetworkEndpoint,
                    ChannelKind::Local => VectorKind::LocalEndpoint,
                    ChannelKind::File => VectorKind::FileEndpoint,
                };
                add(kind, 1);
            }
            if f.privilege() == PrivLevel::Root {
                add(VectorKind::PrivilegedCode, 1);
            }
            for callee in visit::collect_calls(&f.body) {
                match Intrinsic::from_name(callee) {
                    Some(Intrinsic::Recv | Intrinsic::ReadInput | Intrinsic::ReadInt) => {
                        add(VectorKind::InputChannel, 1)
                    }
                    Some(Intrinsic::Send) => add(VectorKind::OutputChannel, 1),
                    Some(Intrinsic::Getenv) => add(VectorKind::EnvironmentRead, 1),
                    Some(
                        Intrinsic::Open
                        | Intrinsic::ReadFile
                        | Intrinsic::WriteFile
                        | Intrinsic::Access,
                    ) => add(VectorKind::FileAccess, 1),
                    Some(Intrinsic::Exec | Intrinsic::System) => add(VectorKind::ProcessSpawn, 1),
                    Some(_) => {}
                    None => {
                        if !defined.contains(&callee) {
                            add(VectorKind::UnresolvedExtern, 1);
                        }
                    }
                }
            }
        }
        let quotient = vectors
            .iter()
            .map(|(kind, &count)| kind.weight() * count as f64)
            .sum();
        AttackSurface { vectors, quotient }
    }

    /// Count of one vector kind.
    pub fn count(&self, kind: VectorKind) -> usize {
        self.vectors.get(&kind).copied().unwrap_or(0)
    }

    /// The *relative* quotient against a baseline — the "R" in RASQ.
    /// Values above 1 mean a larger surface than the baseline; a zero
    /// baseline with a non-zero surface reports infinity-free `f64::MAX`
    /// stand-in of 1.0-per-unit (callers compare, not do arithmetic).
    pub fn relative_to(&self, baseline: &AttackSurface) -> f64 {
        if baseline.quotient <= 0.0 {
            if self.quotient <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.quotient / baseline.quotient
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn surface(src: &str) -> AttackSurface {
        let p = parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
        AttackSurface::measure(&p)
    }

    #[test]
    fn enumerates_endpoints_and_channels() {
        let s = surface(
            "@endpoint(network) fn handle(req: str) { send(0, req); }
             @endpoint(local) fn cli(arg: str) { }
             fn worker() { let d: str = recv(1); exec(d); }",
        );
        assert_eq!(s.count(VectorKind::NetworkEndpoint), 1);
        assert_eq!(s.count(VectorKind::LocalEndpoint), 1);
        assert_eq!(s.count(VectorKind::InputChannel), 1);
        assert_eq!(s.count(VectorKind::OutputChannel), 1);
        assert_eq!(s.count(VectorKind::ProcessSpawn), 1);
        assert!(s.quotient > 0.0);
    }

    #[test]
    fn privileged_code_counts() {
        let s = surface("@priv(root) fn daemon() { }");
        assert_eq!(s.count(VectorKind::PrivilegedCode), 1);
    }

    #[test]
    fn pure_computation_has_empty_surface() {
        let s = surface("fn add(a: int, b: int) -> int { return a + b; }");
        assert_eq!(s.quotient, 0.0);
        assert!(s.vectors.is_empty());
    }

    #[test]
    fn quotient_is_weighted_sum() {
        let s = surface("@endpoint(network) fn h() { } @endpoint(file) fn g() { }");
        let expected = VectorKind::NetworkEndpoint.weight() + VectorKind::FileEndpoint.weight();
        assert!((s.quotient - expected).abs() < 1e-12);
    }

    #[test]
    fn network_endpoint_outweighs_local() {
        let net = surface("@endpoint(network) fn h() { }");
        let local = surface("@endpoint(local) fn h() { }");
        assert!(net.quotient > local.quotient);
    }

    #[test]
    fn relative_quotient() {
        let big = surface("@endpoint(network) fn a() { } @endpoint(network) fn b() { }");
        let small = surface("@endpoint(network) fn a() { }");
        assert!((big.relative_to(&small) - 2.0).abs() < 1e-12);
        assert!((small.relative_to(&small) - 1.0).abs() < 1e-12);
        let empty = surface("fn f() { }");
        assert_eq!(small.relative_to(&empty), f64::INFINITY);
        assert_eq!(empty.relative_to(&empty), 1.0);
    }

    #[test]
    fn unresolved_externs_counted() {
        let s = surface("fn f() { plugin_hook(); }");
        assert_eq!(s.count(VectorKind::UnresolvedExtern), 1);
    }

    #[test]
    fn file_access_vectors() {
        let s = surface("fn f(p: str) { if access(p) { let fd: int = open(p); } }");
        assert_eq!(s.count(VectorKind::FileAccess), 2);
    }
}
