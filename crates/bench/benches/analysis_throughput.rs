//! BENCH-PERF (part 1): throughput of the testbed's analysis passes.
//!
//! §5.3 claims the metric "requires very little effort from the
//! developers" because analysis is automated; these benchmarks quantify
//! that: per-pass wall time over a representative synthesized application,
//! plus corpus-scale extraction through the pipeline engine (sequential
//! vs multi-worker vs warm cache), whose `PipelineReport` JSON prints as
//! `BENCH_PIPELINE` lines for tracking.

use bench::harness::{black_box, Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use clairvoyant::prelude::*;

fn sample_program() -> minilang::ast::Program {
    let spec = corpus::AppSpec {
        name: "bench-app".into(),
        dialect: minilang::Dialect::C,
        domain: corpus::Domain::Server,
        target_kloc: 1.5,
        maturity: 0.5,
        review: 0.5,
        expertise: 0.5,
        first_release_year: 2004,
        seed: 99,
    };
    let seeds = vec![
        (cvedb::Cwe::StackBufferOverflow, true),
        (cvedb::Cwe::FormatString, false),
    ];
    corpus::synth::synthesize(&spec, &seeds).program
}

fn bench_passes(c: &mut Criterion) {
    let program = sample_program();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);

    group.bench_function("loc", |b| {
        b.iter(|| black_box(static_analysis::loc::count_program(&program)))
    });
    group.bench_function("cyclomatic", |b| {
        b.iter(|| black_box(static_analysis::cyclomatic::program_complexity(&program)))
    });
    group.bench_function("halstead", |b| {
        b.iter(|| black_box(static_analysis::halstead::program_halstead(&program)))
    });
    group.bench_function("counts", |b| {
        b.iter(|| black_box(static_analysis::counts::program_counts(&program)))
    });
    group.bench_function("callgraph", |b| {
        b.iter(|| black_box(static_analysis::callgraph::CallGraph::build(&program).stats()))
    });
    group.bench_function("taint", |b| {
        b.iter(|| black_box(static_analysis::taint::analyze(&program).flows.len()))
    });
    group.bench_function("smells", |b| {
        b.iter(|| {
            black_box(
                static_analysis::smells::detect(
                    &program,
                    &static_analysis::smells::Thresholds::default(),
                )
                .len(),
            )
        })
    });
    group.bench_function("bugfind_meta", |b| {
        b.iter(|| black_box(bugfind::MetaTool::new().run(&program).total()))
    });
    group.bench_function("rasq", |b| {
        b.iter(|| black_box(attack_graph::AttackSurface::measure(&program).quotient))
    });
    group.bench_function("full_testbed", |b| {
        let testbed = clairvoyant::Testbed::new();
        b.iter(|| black_box(testbed.extract(&program).len()))
    });
    group.finish();
}

fn bench_parsing(c: &mut Criterion) {
    let spec = corpus::AppSpec {
        name: "parse-bench".into(),
        dialect: minilang::Dialect::C,
        domain: corpus::Domain::Server,
        target_kloc: 1.5,
        maturity: 0.5,
        review: 0.5,
        expertise: 0.5,
        first_release_year: 2004,
        seed: 7,
    };
    let out = corpus::synth::synthesize(&spec, &[]);
    let lines: usize = out.files.iter().map(|(_, s)| s.lines().count()).sum();
    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);
    group.throughput(Throughput::Elements(lines as u64));
    group.bench_function("parse_program_lines", |b| {
        b.iter(|| {
            black_box(
                minilang::parse_program("p", minilang::Dialect::C, &out.files)
                    .expect("parses")
                    .function_count(),
            )
        })
    });
    group.finish();
}

/// Corpus-scale extraction through the pipeline engine. One timed run per
/// configuration (the batch itself is the repetition); each run's
/// `PipelineReport` prints as a `BENCH_PIPELINE` JSON line.
fn bench_pipeline(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig::small(16, 20177));
    let configs = [
        (
            "sequential",
            PipelineConfig::default().jobs(1).cache(CacheMode::Off),
        ),
        (
            "workers_4",
            PipelineConfig::default().jobs(4).cache(CacheMode::Off),
        ),
    ];
    let mut group = c.benchmark_group("pipeline_extract");
    group.sample_size(5);
    group.throughput(Throughput::Elements(corpus.apps.len() as u64));
    for (name, config) in configs {
        let mut last_report = None;
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = extract_corpus(&corpus, config.clone());
                last_report = Some(out.report.clone());
                black_box(out.features.len())
            })
        });
        if let Some(report) = last_report {
            println!("BENCH_PIPELINE {}", report.to_json());
        }
    }
    // Warm cache: one engine reused, second batch served from memory.
    let mut engine = pipeline::Pipeline::new(Testbed::new());
    let apps: Vec<&corpus::GeneratedApp> = corpus.apps.iter().collect();
    clairvoyant::extract::extract_apps_with(&mut engine, apps.iter().copied());
    let mut last_report = None;
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            let out = clairvoyant::extract::extract_apps_with(&mut engine, apps.iter().copied());
            last_report = Some(out.report.clone());
            black_box(out.features.len())
        })
    });
    if let Some(report) = last_report {
        println!("BENCH_PIPELINE {}", report.to_json());
    }
    group.finish();
}

/// BENCH-PERF (part 2): the fused single-pass engine vs the pre-fusion
/// path. Races [`Testbed::extract`] (one shared `AnalysisContext`, bitset
/// fixpoints, one taint pass) against [`Testbed::extract_legacy`] (every
/// analysis rebuilds its own CFGs, string-keyed lattices, taint ×3) over a
/// synthesized corpus, asserts the vectors bit-identical — including
/// across per-function worker counts — and prints a `BENCH_ANALYSIS` JSON
/// line (snapshot: `results/BENCH_ANALYSIS.json`).
///
/// `CLAIRVOYANT_BENCH_SMOKE=1` shrinks the corpus and iteration count to
/// a CI-sized equality smoke test.
fn bench_engine(_c: &mut Criterion) {
    use std::time::Instant;
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    let (n_apps, iters) = if smoke { (4, 1) } else { (12, 3) };
    let corpus = Corpus::generate(&CorpusConfig::small(n_apps, 4242));
    let testbed = Testbed::new();
    let parallel_testbed = Testbed::new().with_fn_jobs(4);

    // Equality gate: the fused engine must reproduce the legacy vector
    // bit-for-bit, for 1 and 4 per-function workers.
    for app in &corpus.apps {
        let fused = testbed.extract(&app.program);
        let legacy = testbed.extract_legacy(&app.program);
        assert_eq!(
            fused, legacy,
            "fused vector diverged from legacy for {}",
            app.spec.name
        );
        let parallel = parallel_testbed.extract(&app.program);
        assert_eq!(
            fused, parallel,
            "4-worker context construction diverged for {}",
            app.spec.name
        );
    }

    let t0 = Instant::now();
    for _ in 0..iters {
        for app in &corpus.apps {
            black_box(testbed.extract(&app.program).len());
        }
    }
    let fused_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        for app in &corpus.apps {
            black_box(testbed.extract_legacy(&app.program).len());
        }
    }
    let legacy_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let speedup = legacy_ms / fused_ms.max(1e-9);
    println!(
        "BENCH_ANALYSIS {{\"programs\":{},\"iters\":{iters},\"fused_ms\":{:.1},\
         \"legacy_ms\":{:.1},\"speedup\":{:.2},\"vectors_identical\":true}}",
        corpus.apps.len(),
        fused_ms,
        legacy_ms,
        speedup
    );
    eprintln!(
        "analysis engine: fused {fused_ms:.0} ms, legacy {legacy_ms:.0} ms, \
         speedup {speedup:.1}× over {} programs",
        corpus.apps.len()
    );
}

criterion_group!(
    benches,
    bench_passes,
    bench_parsing,
    bench_pipeline,
    bench_engine
);
criterion_main!(benches);
