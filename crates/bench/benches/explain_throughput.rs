//! BENCH-EXPLAIN: batched per-feature attribution vs plain batched scoring.
//!
//! Explanation is a serving workload, not an offline report: the daemon
//! folds `explain`/`compare` rows into the same batches as `score`, so
//! attribution must stay within a small constant factor of scoring or it
//! would dominate mixed batches. This bench trains the same serving-scale
//! random-forest battery as BENCH-INFER (200 trees per forest), compiles
//! it, and races [`CompiledModel::evaluate_batch`](clairvoyant::CompiledModel)
//! against [`CompiledModel::explain_batch`](clairvoyant::CompiledModel)
//! over a 150-app corpus. Two equality gates run before anything is
//! timed: every explained report must equal its scored report bit-for-bit,
//! and every model of every row must satisfy the fold invariant
//! `baseline + Σ contributions == score` **bitwise**. The result prints
//! as one `BENCH_EXPLAIN` JSON line (snapshot:
//! `results/BENCH_EXPLAIN.json`); `ratio` is explain-vs-score wall time at
//! the better worker count and is asserted `< 3.0` in full runs.
//!
//! `CLAIRVOYANT_BENCH_SMOKE=1` shrinks the corpus, forest and iteration
//! count to a CI-sized equality smoke test (the ratio is still reported
//! but not asserted — tiny corpora are all fixed overhead).

use bench::harness::{black_box, Criterion};
use bench::{criterion_group, criterion_main};
use clairvoyant::prelude::*;

fn bench_explain(_c: &mut Criterion) {
    use std::time::Instant;
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    let (n_apps, n_train, trees, iters) = if smoke {
        (24, 30, clairvoyant::train::DEFAULT_FOREST_TREES, 1)
    } else {
        (150, 150, 200, 20)
    };

    let train_corpus = Corpus::generate(&CorpusConfig::small(n_train, 20170408));
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        forest_trees: trees,
        ..Default::default()
    })
    .train(&train_corpus);
    let compiled = model.compile();

    let mut score_config = CorpusConfig::small(n_apps, 5);
    score_config.max_kloc = 2.0;
    let score_corpus = Corpus::generate(&score_config);
    let testbed = Testbed::new();
    let apps: Vec<(String, static_analysis::FeatureVector)> =
        pipeline::parallel_map(0, &score_corpus.apps, |_, app| {
            (app.spec.name.clone(), testbed.extract(&app.program))
        });

    // Equality gates before timing: explained reports must equal scored
    // reports bitwise, and every attribution must fold back to its score
    // exactly, at 1 and 4 workers.
    let scored = compiled.evaluate_batch(&apps, 1);
    for jobs in [1, 4] {
        let explained = compiled.explain_batch(&apps, jobs);
        assert_eq!(explained.len(), scored.len());
        for (report, explanation) in scored.iter().zip(&explained) {
            assert_eq!(report.app, explanation.report.app);
            assert_eq!(
                report.risk_score().to_bits(),
                explanation.report.risk_score().to_bits(),
                "explained risk score diverged for {} at {jobs} worker(s)",
                report.app
            );
            for ((h1, p1), (h2, p2)) in report.hypotheses.iter().zip(&explanation.report.hypotheses)
            {
                assert_eq!(h1, h2);
                assert_eq!(
                    p1.to_bits(),
                    p2.to_bits(),
                    "explained {h1} diverged for {}",
                    report.app
                );
            }
            for m in &explanation.models {
                let folded = secml::attribution::fold(m.baseline, &m.contributions);
                assert_eq!(
                    folded.to_bits(),
                    m.score.to_bits(),
                    "{} does not fold for {} at {jobs} worker(s)",
                    m.target,
                    report.app
                );
            }
        }
    }

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(compiled.evaluate_batch(&apps, 1).len());
    }
    let score_1w_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(compiled.evaluate_batch(&apps, 4).len());
    }
    let score_4w_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(compiled.explain_batch(&apps, 1).len());
    }
    let explain_1w_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(compiled.explain_batch(&apps, 4).len());
    }
    let explain_4w_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    // Compare like against like: best explain time vs best score time.
    let ratio = explain_1w_ms.min(explain_4w_ms) / score_1w_ms.min(score_4w_ms).max(1e-9);
    println!(
        "BENCH_EXPLAIN {{\"rows\":{},\"trees\":{trees},\"iters\":{iters},\
         \"score_1w_ms\":{score_1w_ms:.2},\"score_4w_ms\":{score_4w_ms:.2},\
         \"explain_1w_ms\":{explain_1w_ms:.2},\"explain_4w_ms\":{explain_4w_ms:.2},\
         \"ratio\":{ratio:.2},\"folds_exact\":true,\"reports_identical\":true}}",
        apps.len(),
    );
    eprintln!(
        "explanation engine: score {:.1} ms, explain {:.1} ms (best of 1w/4w), \
         ratio {ratio:.2}× over {} apps × {trees}-tree forests",
        score_1w_ms.min(score_4w_ms),
        explain_1w_ms.min(explain_4w_ms),
        apps.len()
    );
    if !smoke {
        assert!(
            ratio < 3.0,
            "batched attribution must stay within 3× of batched scoring, got {ratio:.2}×"
        );
    }
}

criterion_group!(benches, bench_explain);
criterion_main!(benches);
