//! BENCH-PERF (part 3): end-to-end figure regeneration at smoke scale —
//! keeps the experiment drivers honest about their cost.

use bench::harness::{black_box, Criterion};
use bench::{criterion_group, criterion_main};

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_survey", |b| {
        b.iter(|| black_box(clairvoyant::survey::Figure1::produce(7).result.total_loc()))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let corpus = corpus::Corpus::generate(&corpus::CorpusConfig::small(10, 7));
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("loc_study", |b| {
        b.iter(|| {
            black_box(
                clairvoyant::studies::run_study(&corpus)
                    .regression_loc
                    .r_squared,
            )
        })
    });
    group.finish();
}

fn bench_shin(c: &mut Criterion) {
    let corpus = corpus::Corpus::generate(&corpus::CorpusConfig::small(10, 7));
    let mut group = c.benchmark_group("exp_shin");
    group.sample_size(10);
    group.bench_function("file_study", |b| {
        b.iter(|| black_box(clairvoyant::files::run_file_study(&corpus, 0.5).recall_at_budget))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_shin);
criterion_main!(benches);
