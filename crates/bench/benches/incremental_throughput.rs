//! BENCH_INCR: incremental re-extraction vs from-scratch extraction.
//!
//! The §5.3 developer workflow is edit → re-score; PR 9's incremental
//! engine claims that after a one-function edit only that function's
//! fixpoints re-run while the merged feature vector stays bit-identical
//! to a scratch build. This bench measures exactly that loop: synthesize
//! an N-function program (N ≥ 200 in the full run), then repeatedly
//! mutate a single function body and race a persistent
//! [`IncrementalTestbed`] against `Testbed::extract` on the same parsed
//! program. Before anything is timed, an equality gate asserts the
//! incremental vector reproduces scratch bit-for-bit at 1 and 4 context
//! workers across several edits.
//!
//! One `BENCH_INCR` JSON line prints per run (snapshot:
//! `results/BENCH_INCR.json`); CI fails the job if `speedup` regresses
//! more than 10% below the committed snapshot.
//! `CLAIRVOYANT_BENCH_SMOKE=1` shrinks the program and edit count to a
//! CI-sized equality smoke test.

use bench::harness::{black_box, Criterion};
use bench::{criterion_group, criterion_main};
use clairvoyant::{IncrementalTestbed, Testbed};
use minilang::ast::Program;
use minilang::{parse_program, Dialect};

/// A deterministic N-function project whose bodies carry loops, branches
/// and buffer traffic (so per-function fixpoints dominate extraction, the
/// workload the cache is for). `edit(i)` mutates one function's constants
/// in place; `source()` re-renders the single module.
struct Project {
    seeds: Vec<u64>,
}

impl Project {
    fn new(n: usize) -> Project {
        Project {
            seeds: (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9) + 1)
                .collect(),
        }
    }

    fn edit(&mut self, round: usize) -> usize {
        let target = (round * 31 + 7) % self.seeds.len();
        self.seeds[target] = self.seeds[target].wrapping_mul(6364136223846793005) + 1;
        target
    }

    fn source(&self) -> String {
        let n = self.seeds.len();
        let mut src = String::new();
        for (i, seed) in self.seeds.iter().enumerate() {
            let k1 = seed % 13 + 2;
            let k2 = seed % 29;
            let k3 = seed % 7 + 1;
            if i % 5 == 0 {
                src.push_str("@endpoint(network)\n");
            }
            src.push_str(&format!("fn fn_{i}(s: str, n: int) -> int {{\n"));
            src.push_str(&format!(
                "    let buf: str[{}];\n    let acc: int = n * {k1} + {k2};\n    let i: int = 0;\n",
                16 + seed % 48
            ));
            src.push_str(&format!(
                "    while i < acc {{\n        if i > {k3} {{ acc = acc - 1; }}\n        i = i + {k3};\n    }}\n"
            ));
            // A branch ladder: 2^13 path candidates per function, which
            // pins the path enumerator at its state cap and drives the
            // per-function fixpoints — the cached work — far above the
            // linear AST passes that must re-run every build.
            // A branch ladder: the per-function path/interval fixpoints —
            // the cached work — dwarf the linear AST passes that must
            // re-run every build.
            for b in 0..13 {
                src.push_str(&format!(
                    "    if n > {} {{ acc = acc + {b}; }}\n",
                    seed % 17 + b as u64
                ));
            }
            src.push_str(&format!(
                "    let j: int = acc;\n    while j > {k1} {{\n        j = j - {k3};\n        if j == n {{ acc = acc + 1; }}\n    }}\n"
            ));
            match seed % 4 {
                0 => src.push_str("    strcpy(buf, s);\n"),
                1 => src.push_str("    exec(s);\n"),
                2 => src.push_str("    let d: str = read_input();\n    log_msg(d);\n"),
                _ => src.push_str("    sprintf(buf, s);\n"),
            }
            // A sparse call layer so taint summaries actually propagate.
            if i > 0 && i % 3 == 0 {
                src.push_str(&format!(
                    "    let r: int = fn_{}(s, acc);\n    acc = acc + r;\n",
                    i - 1
                ));
            }
            if i + 2 < n && i % 7 == 0 {
                src.push_str(&format!(
                    "    let q: int = fn_{}(buf, {k2});\n    acc = acc + q;\n",
                    i + 2
                ));
            }
            src.push_str("    return acc;\n}\n\n");
        }
        src
    }

    fn parse(&self) -> Program {
        parse_program(
            "incr-bench",
            Dialect::C,
            &[("app.c".to_string(), self.source())],
        )
        .expect("generated program parses")
    }
}

fn bench_incremental(_c: &mut Criterion) {
    use std::time::Instant;
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    let (n_fns, gate_rounds, timed_rounds) = if smoke { (40, 2, 3) } else { (240, 4, 16) };

    let mut project = Project::new(n_fns);
    let scratch = Testbed::new();

    // Equality gate: several single-function edits, bit-identical vectors
    // at 1 and 4 workers, and only the edited function re-analyzed once
    // the store is warm.
    let mut seq = IncrementalTestbed::new();
    let mut par = IncrementalTestbed::new().with_fn_jobs(4);
    let p0 = project.parse();
    assert_eq!(p0.function_count(), n_fns);
    let want0 = scratch.extract(&p0);
    assert_eq!(seq.extract(&p0), want0, "cold sequential");
    assert_eq!(par.extract(&p0), want0, "cold 4-worker");
    for round in 0..gate_rounds {
        project.edit(round);
        let p = project.parse();
        let want = scratch.extract(&p);
        let (got, report) = seq.extract_stats(&p);
        assert_eq!(got, want, "gate round {round}: sequential diverged");
        assert_eq!(
            report.rebuilt, 1,
            "gate round {round}: one edit, one rebuild"
        );
        assert_eq!(
            par.extract(&p),
            want,
            "gate round {round}: 4-worker diverged"
        );
    }

    // Timed race: per edit, the persistent engine sees exactly one changed
    // fingerprint; scratch re-runs every fixpoint.
    let mut incr_s = 0.0;
    let mut scratch_s = 0.0;
    let mut rebuilt_total = 0u64;
    for round in 0..timed_rounds {
        project.edit(gate_rounds + round);
        let p = project.parse();

        let t0 = Instant::now();
        let (incr_fv, report) = seq.extract_stats(&p);
        incr_s += t0.elapsed().as_secs_f64();
        rebuilt_total += report.rebuilt;

        let t0 = Instant::now();
        let scratch_fv = scratch.extract(&p);
        scratch_s += t0.elapsed().as_secs_f64();

        assert_eq!(
            black_box(incr_fv),
            black_box(scratch_fv),
            "timed round {round} diverged"
        );
    }

    let incremental_ms = incr_s * 1e3 / timed_rounds as f64;
    let scratch_ms = scratch_s * 1e3 / timed_rounds as f64;
    let speedup = scratch_ms / incremental_ms.max(1e-9);
    let rebuilt_per_edit = rebuilt_total as f64 / timed_rounds as f64;
    println!(
        "BENCH_INCR {{\"functions\":{n_fns},\"edits\":{timed_rounds},\
         \"scratch_ms\":{scratch_ms:.2},\"incremental_ms\":{incremental_ms:.2},\
         \"speedup\":{speedup:.2},\"rebuilt_per_edit\":{rebuilt_per_edit:.2},\
         \"identical\":true}}"
    );
    eprintln!(
        "incremental re-extraction: {scratch_ms:.1} ms scratch → {incremental_ms:.1} ms \
         incremental ({speedup:.1}×) per one-function edit of a {n_fns}-function program \
         ({rebuilt_per_edit:.1} functions rebuilt per edit)"
    );
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
