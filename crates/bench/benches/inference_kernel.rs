//! BENCH-KERNEL: compiled quantized kernels vs the PR 4 interpreter.
//!
//! Races the flattened-battery interpreter (`TrainedModel::compile`, the
//! blocked lockstep engine) against the same battery after
//! `CompiledModel::optimize()` — quantized thresholds, feature-subset
//! pruning, mask-propagation blocks, depth-unrolled ladders (see
//! `secml::kernel` and DESIGN.md §14) — over the serving-scale
//! 200-tree / 150-app configuration the `BENCH_INFER` snapshot uses.
//! Before anything is timed, the equality gate asserts scores *and*
//! attributions are bit-identical between the two engines at 1 and 4
//! workers.
//!
//! The headline `speedup` times `CompiledModel::score_battery` — every
//! model in the battery over the prepared matrix, end to end — which
//! is the stage the codegen touches. The same line also reports the
//! full report pipeline (`evaluate_batch`: feature prep + scoring +
//! report assembly, stages shared verbatim by both engines) as
//! `pipeline_*`, and `explain_batch` end-to-end as `explain_*`. The
//! result prints as one `BENCH_KERNEL` JSON line (snapshot:
//! `results/BENCH_KERNEL.json`); CI fails the job if `speedup`
//! regresses more than 10% below the committed snapshot.
//!
//! `CLAIRVOYANT_BENCH_SMOKE=1` shrinks the corpus, forest and iteration
//! count to a CI-sized equality smoke test.

use bench::harness::{black_box, Criterion};
use bench::{criterion_group, criterion_main};
use clairvoyant::explain::Explanation;
use clairvoyant::prelude::*;
use clairvoyant::SecurityReport;

fn assert_reports_identical(a: &SecurityReport, b: &SecurityReport, context: &str) {
    assert_eq!(a.app, b.app, "{context}");
    assert_eq!(
        a.predicted_vulnerabilities.to_bits(),
        b.predicted_vulnerabilities.to_bits(),
        "{context}: predicted count diverged for {}",
        a.app
    );
    assert_eq!(a.hypotheses.len(), b.hypotheses.len(), "{context}");
    for ((h1, p1), (h2, p2)) in a.hypotheses.iter().zip(&b.hypotheses) {
        assert_eq!(h1, h2, "{context}");
        assert_eq!(
            p1.to_bits(),
            p2.to_bits(),
            "{context}: {h1} diverged for {}",
            a.app
        );
    }
    for ((s1, n1), (s2, n2)) in a.severity_counts.iter().zip(&b.severity_counts) {
        assert_eq!(s1, s2, "{context}");
        assert_eq!(n1.to_bits(), n2.to_bits(), "{context}: severity {}", a.app);
    }
    assert_eq!(
        a.risk_score().to_bits(),
        b.risk_score().to_bits(),
        "{context}: risk score diverged for {}",
        a.app
    );
}

fn assert_explanations_identical(a: &Explanation, b: &Explanation, context: &str) {
    assert_reports_identical(&a.report, &b.report, context);
    assert_eq!(a.features, b.features, "{context}");
    assert_eq!(a.models.len(), b.models.len(), "{context}");
    for (ma, mb) in a.models.iter().zip(&b.models) {
        assert_eq!(ma.target, mb.target, "{context}");
        assert_eq!(ma.baseline.to_bits(), mb.baseline.to_bits(), "{context}");
        assert_eq!(ma.score.to_bits(), mb.score.to_bits(), "{context}");
        assert_eq!(
            ma.prediction.to_bits(),
            mb.prediction.to_bits(),
            "{context}: {} prediction diverged for {}",
            ma.target,
            a.report.app
        );
        assert_eq!(ma.contributions.len(), mb.contributions.len(), "{context}");
        for (ca, cb) in ma.contributions.iter().zip(&mb.contributions) {
            assert_eq!(
                ca.to_bits(),
                cb.to_bits(),
                "{context}: {} attribution diverged for {}",
                ma.target,
                a.report.app
            );
        }
    }
}

fn bench_kernel(_c: &mut Criterion) {
    use std::time::Instant;
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    let (n_apps, n_train, trees, iters) = if smoke {
        (24, 30, clairvoyant::train::DEFAULT_FOREST_TREES, 1)
    } else {
        (150, 150, 200, 20)
    };

    // Same battery and corpora as BENCH_INFER: train on one corpus,
    // score a disjoint one.
    let train_corpus = Corpus::generate(&CorpusConfig::small(n_train, 20170408));
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        forest_trees: trees,
        ..Default::default()
    })
    .train(&train_corpus);
    // Two independent compilations of the same battery: one stays the
    // interpreter, one runs the codegen stage.
    let interp = model.compile();
    let kernel = model.compile();
    let kernels = kernel.optimize();
    assert!(kernels > 0, "battery must compile at least one kernel");

    let mut score_config = CorpusConfig::small(n_apps, 5);
    score_config.max_kloc = 2.0;
    let score_corpus = Corpus::generate(&score_config);
    let testbed = Testbed::new();
    let apps: Vec<(String, static_analysis::FeatureVector)> =
        pipeline::parallel_map(0, &score_corpus.apps, |_, app| {
            (app.spec.name.clone(), testbed.extract(&app.program))
        });

    // Equality gate before timing: scores and attributions from the
    // compiled kernels must reproduce the interpreter bit-for-bit, at 1
    // and 4 workers.
    for (jobs, context) in [(1usize, "1 worker"), (4, "4 workers")] {
        let a = interp.evaluate_batch(&apps, jobs);
        let b = kernel.evaluate_batch(&apps, jobs);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_reports_identical(ra, rb, context);
        }
        let ea = interp.explain_batch(&apps, jobs);
        let eb = kernel.explain_batch(&apps, jobs);
        for (xa, xb) in ea.iter().zip(&eb) {
            assert_explanations_identical(xa, xb, context);
        }
    }

    // Headline: the battery scoring stage over one prepared batch —
    // prep and assembly are engine-independent pipeline stages, timed
    // separately below as `pipeline_*`.
    let batch = interp.prepare_batch(&apps, 1);
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(interp.score_battery(&batch, 1).len());
    }
    let interp_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(kernel.score_battery(&batch, 1).len());
    }
    let kernel_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(interp.evaluate_batch(&apps, 1).len());
    }
    let pipeline_interp_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(kernel.evaluate_batch(&apps, 1).len());
    }
    let pipeline_kernel_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(interp.explain_batch(&apps, 1).len());
    }
    let explain_interp_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(kernel.explain_batch(&apps, 1).len());
    }
    let explain_kernel_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let speedup = interp_ms / kernel_ms.max(1e-9);
    let pipeline_speedup = pipeline_interp_ms / pipeline_kernel_ms.max(1e-9);
    let explain_speedup = explain_interp_ms / explain_kernel_ms.max(1e-9);
    println!(
        "BENCH_KERNEL {{\"rows\":{},\"trees\":{trees},\"iters\":{iters},\"kernels\":{kernels},\
         \"interp_ms\":{:.2},\"kernel_ms\":{:.2},\"speedup\":{:.2},\
         \"pipeline_interp_ms\":{:.2},\"pipeline_kernel_ms\":{:.2},\"pipeline_speedup\":{:.2},\
         \"explain_interp_ms\":{:.2},\"explain_kernel_ms\":{:.2},\"explain_speedup\":{:.2},\
         \"reports_identical\":true}}",
        apps.len(),
        interp_ms,
        kernel_ms,
        speedup,
        pipeline_interp_ms,
        pipeline_kernel_ms,
        pipeline_speedup,
        explain_interp_ms,
        explain_kernel_ms,
        explain_speedup
    );
    eprintln!(
        "kernel codegen: battery scoring {interp_ms:.1} ms → {kernel_ms:.1} ms ({speedup:.1}×), \
         report pipeline {pipeline_interp_ms:.1} ms → {pipeline_kernel_ms:.1} ms \
         ({pipeline_speedup:.1}×), explain {explain_interp_ms:.1} ms → {explain_kernel_ms:.1} ms \
         ({explain_speedup:.1}×) over {} apps × {trees}-tree forests ({kernels} kernels)",
        apps.len()
    );
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
