//! BENCH-INFER: batched inference engine vs the boxed per-row path.
//!
//! The §5.3 workflow scores whole corpora ("for any application"), so
//! serving throughput matters as much as training time. This bench trains
//! a serving-scale random-forest battery (200 trees per forest — the
//! regime where the boxed trees' pointer-chasing working set falls out of
//! cache), compiles it
//! ([`TrainedModel::compile`](clairvoyant::TrainedModel)), and races the
//! boxed per-row reference path (`TrainedModel::evaluate_features`, one
//! pointer-chasing tree walk per row per model) against
//! [`CompiledModel::evaluate_batch`](clairvoyant::CompiledModel)
//! (flattened node tables, 64-row blocked lockstep scoring, pool fan-out)
//! over a 150-app corpus. Reports are asserted bit-identical at 1 and 4
//! workers before anything is timed, and the result prints as one
//! `BENCH_INFER` JSON line (snapshot: `results/BENCH_INFER.json`);
//! `speedup` compares the boxed path against the best batched worker
//! count, so single-core machines are not penalized for thread overhead.
//!
//! `CLAIRVOYANT_BENCH_SMOKE=1` shrinks the corpus, forest and iteration
//! count to a CI-sized equality smoke test.

use bench::harness::{black_box, Criterion};
use bench::{criterion_group, criterion_main};
use clairvoyant::prelude::*;
use clairvoyant::SecurityReport;

fn assert_reports_identical(a: &SecurityReport, b: &SecurityReport, context: &str) {
    assert_eq!(a.app, b.app, "{context}");
    assert_eq!(
        a.predicted_vulnerabilities.to_bits(),
        b.predicted_vulnerabilities.to_bits(),
        "{context}: predicted count diverged for {}",
        a.app
    );
    assert_eq!(a.hypotheses.len(), b.hypotheses.len(), "{context}");
    for ((h1, p1), (h2, p2)) in a.hypotheses.iter().zip(&b.hypotheses) {
        assert_eq!(h1, h2, "{context}");
        assert_eq!(
            p1.to_bits(),
            p2.to_bits(),
            "{context}: {h1} diverged for {}",
            a.app
        );
    }
    for ((s1, n1), (s2, n2)) in a.severity_counts.iter().zip(&b.severity_counts) {
        assert_eq!(s1, s2, "{context}");
        assert_eq!(n1.to_bits(), n2.to_bits(), "{context}: severity {}", a.app);
    }
    assert_eq!(
        a.risk_score().to_bits(),
        b.risk_score().to_bits(),
        "{context}: risk score diverged for {}",
        a.app
    );
}

fn bench_inference(_c: &mut Criterion) {
    use std::time::Instant;
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    let (n_apps, n_train, trees, iters) = if smoke {
        (24, 30, clairvoyant::train::DEFAULT_FOREST_TREES, 1)
    } else {
        (150, 150, 200, 20)
    };

    // Train the forest battery on its own corpus, then score a disjoint
    // one — serving and training sets need not match.
    let train_corpus = Corpus::generate(&CorpusConfig::small(n_train, 20170408));
    let model = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        forest_trees: trees,
        ..Default::default()
    })
    .train(&train_corpus);
    let compiled = model.compile();

    let mut score_config = CorpusConfig::small(n_apps, 5);
    score_config.max_kloc = 2.0;
    let score_corpus = Corpus::generate(&score_config);
    let testbed = Testbed::new();
    let apps: Vec<(String, static_analysis::FeatureVector)> =
        pipeline::parallel_map(0, &score_corpus.apps, |_, app| {
            (app.spec.name.clone(), testbed.extract(&app.program))
        });

    // Equality gate before timing: the batched engine must reproduce the
    // boxed reference reports bit-for-bit, at 1 and 4 workers.
    let boxed_reports: Vec<SecurityReport> = apps
        .iter()
        .map(|(name, fv)| model.evaluate_features(name.clone(), fv))
        .collect();
    for (jobs, context) in [(1, "1 worker"), (4, "4 workers")] {
        let batched = compiled.evaluate_batch(&apps, jobs);
        assert_eq!(batched.len(), boxed_reports.len());
        for (a, b) in boxed_reports.iter().zip(&batched) {
            assert_reports_identical(a, b, context);
        }
    }

    let t0 = Instant::now();
    for _ in 0..iters {
        for (name, fv) in &apps {
            black_box(model.evaluate_features(name.clone(), fv).hypotheses.len());
        }
    }
    let boxed_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(compiled.evaluate_batch(&apps, 1).len());
    }
    let batched_1w_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(compiled.evaluate_batch(&apps, 4).len());
    }
    let batched_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let speedup = boxed_ms / batched_1w_ms.min(batched_ms).max(1e-9);
    println!(
        "BENCH_INFER {{\"rows\":{},\"trees\":{trees},\"iters\":{iters},\"boxed_ms\":{:.2},\
         \"batched_1w_ms\":{:.2},\"batched_4w_ms\":{:.2},\"speedup\":{:.2},\
         \"reports_identical\":true}}",
        apps.len(),
        boxed_ms,
        batched_1w_ms,
        batched_ms,
        speedup
    );
    eprintln!(
        "inference engine: boxed {boxed_ms:.1} ms, batched {batched_1w_ms:.1} ms (1w) / \
         {batched_ms:.1} ms (4w), speedup {speedup:.1}× over {} apps × {trees}-tree forests",
        apps.len()
    );
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
