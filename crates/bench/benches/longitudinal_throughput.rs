//! BENCH_LONGITUDINAL: 100k-app longitudinal scale-out, end to end.
//!
//! PR 10's claim is that the corpus → dataset → trainer → serve stack
//! survives a longitudinal population two orders of magnitude past the
//! seed corpus without ever holding it in RAM. This bench measures the
//! four legs of that claim:
//!
//! 1. **Streaming extraction** — epoch 0 of a [`LongitudinalStream`]
//!    (100 000 apps in the full run) flows one app at a time through
//!    ground-truth selection and feature extraction straight into
//!    spill-to-disk training; `apps_per_sec` is the streamed rate.
//! 2. **Out-of-core vs in-RAM RSS** — the streaming phase runs FIRST
//!    (peak RSS via `VmHWM`, which only ever rises), then the in-RAM
//!    baseline materializes the entire population plus the dense
//!    dataset the way `Corpus::generate` would. The full run asserts
//!    `rss_ratio < 0.25` and the two paths' models are byte-identical.
//! 3. **Retrain loop determinism** — a 3-epoch replay (500 apps) runs
//!    twice; the drift reports must match exactly, and per-epoch
//!    retrain wall time is reported.
//! 4. **Reload blackout** — the replay's epoch models hot-swap into a
//!    live daemon while pipelined clients hammer `score`; the run
//!    fails unless every response through every swap is `ok`
//!    (`blackout_dropped` must be 0).
//!
//! One `BENCH_LONGITUDINAL` JSON line prints per run. The committed
//! full-scale snapshot is `results/BENCH_LONGITUDINAL.json` (the
//! 100k-app claim); CI runs the smoke shape (3 epochs × 500 apps),
//! re-checks the equality/determinism/blackout gates, and compares
//! `rss_headroom` — the in-RAM peak over the streaming peak, a
//! machine-portable ratio like the other benches' `speedup` — against
//! the committed smoke snapshot
//! (`results/BENCH_LONGITUDINAL.smoke.json`) with a 10% floor.

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use clairvoyant::longitudinal::{replay, LongitudinalConfig};
use clairvoyant::prelude::*;
use corpus::StreamConfig;
use cvedb::CveDatabase;
use serve::client::{is_ok, Client};
use serve::server::{ModelState, ServeConfig};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Peak resident set size of this process so far, in kilobytes.
/// `VmHWM` is a high-water mark: it never decreases, which is why the
/// streaming phase must run before the in-RAM baseline.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .expect("VmHWM present in /proc/self/status")
}

fn bench_longitudinal(_c: &mut Criterion) {
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    let apps: usize = std::env::var("CLAIRVOYANT_BENCH_APPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 500 } else { 100_000 });
    let replay_apps = 500;
    let replay_epochs = 3;

    let work =
        std::env::temp_dir().join(format!("clairvoyant-longit-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create bench work dir");

    let trainer = Trainer::with_config(TrainerConfig {
        top_k_features: Some(24),
        ..Default::default()
    });

    // ---- Phase 1: streaming extraction into out-of-core training. ----
    //
    // Pass A streams every app once for its CVE trajectory (ground
    // truth must be complete before selection); pass B lazily
    // regenerates and extracts only the selected apps, row by row,
    // inside `train_streaming` — at no point is more than one program
    // resident.
    let scfg = StreamConfig {
        apps,
        ..Default::default()
    };
    let stream = corpus::LongitudinalStream::new(scfg);

    let t_labels = Instant::now();
    let mut db = CveDatabase::new();
    let mut index_of: HashMap<String, usize> = HashMap::with_capacity(apps);
    for (i, ea) in stream.epoch(0).enumerate() {
        index_of.insert(ea.app.spec.name.clone(), i);
        for record in ea.records {
            db.insert(record);
        }
    }
    let labels_s = t_labels.elapsed().as_secs_f64();

    let histories = db.select(&trainer.config.selection);
    assert!(!histories.is_empty(), "selection produced no training apps");

    let schema: Vec<String> = {
        let fv = Testbed::new().extract(&stream.epoch_app(0, 0).app.program);
        let mut names: Vec<String> = fv.iter().map(|(k, _)| k.to_string()).collect();
        names.sort();
        names
    };

    // Original dense rows tee to a row-major side file so the in-RAM
    // baseline can reconstruct the dataset without re-extracting.
    let rows_path = work.join("rows.bin");
    let rows_file = RefCell::new(std::io::BufWriter::new(
        std::fs::File::create(&rows_path).expect("create rows side file"),
    ));
    let row_production_s = Cell::new(0.0);
    let testbed = Testbed::new();
    let rows_iter = histories.iter().map(|h| {
        let t = Instant::now();
        let index = index_of[h.app.as_str()];
        let (app, _records) = stream.materialize(index, 0);
        let fv = testbed.extract(&app.program);
        let mut row = Vec::new();
        fv.fill_dense(&schema, &mut row);
        {
            let mut file = rows_file.borrow_mut();
            for v in &row {
                file.write_all(&v.to_le_bytes()).expect("write row");
            }
        }
        row_production_s.set(row_production_s.get() + t.elapsed().as_secs_f64());
        row
    });

    let t_train = Instant::now();
    let spill_dir = work.join("spill");
    let spilled_model = trainer
        .train_streaming(&schema, rows_iter, &histories, Some(&spill_dir))
        .expect("out-of-core training");
    let train_wall_s = t_train.elapsed().as_secs_f64();
    rows_file
        .into_inner()
        .flush()
        .expect("flush rows side file");

    let stream_s = labels_s + row_production_s.get();
    let retrain_s = (train_wall_s - row_production_s.get()).max(0.0);
    let apps_per_sec = apps as f64 / stream_s.max(1e-9);
    let spilled_bytes = spilled_model.compile().to_bytes();
    let streaming_peak_kb = vm_hwm_kb();
    eprintln!(
        "streamed {apps} apps at {apps_per_sec:.1} apps/s ({} trained rows), \
         out-of-core retrain {retrain_s:.2}s, peak RSS {streaming_peak_kb} kB",
        histories.len(),
    );

    // ---- Phase 2: the in-RAM baseline the streaming path avoids. ----
    //
    // Materialize the whole population (what `Corpus::generate` holds)
    // plus the dense dataset, then train the identical model in RAM.
    let resident: Vec<corpus::EpochApp> = stream.epoch(0).collect();
    let rows: Vec<Vec<f64>> = {
        let bytes = std::fs::read(&rows_path).expect("read rows side file");
        assert_eq!(bytes.len(), histories.len() * schema.len() * 8);
        bytes
            .chunks_exact(schema.len() * 8)
            .map(|row| {
                row.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            })
            .collect()
    };
    let t_ram = Instant::now();
    let in_ram_model = trainer
        .train_streaming(&schema, rows.iter().cloned(), &histories, None)
        .expect("in-RAM training");
    let retrain_ram_s = t_ram.elapsed().as_secs_f64();
    let bit_identical = spilled_bytes == in_ram_model.compile().to_bytes();
    assert!(
        bit_identical,
        "out-of-core model diverged from the in-RAM twin"
    );
    let inram_peak_kb = vm_hwm_kb().max(1);
    drop(resident);
    drop(rows);
    let rss_ratio = streaming_peak_kb as f64 / inram_peak_kb as f64;
    let rss_headroom = inram_peak_kb as f64 / streaming_peak_kb.max(1) as f64;
    eprintln!(
        "in-RAM baseline: retrain {retrain_ram_s:.2}s, peak RSS {inram_peak_kb} kB \
         -> streaming used {:.1}% of the in-RAM footprint",
        rss_ratio * 100.0,
    );
    if !smoke {
        // The tentpole's memory claim, enforced at full scale (at smoke
        // scale the process baseline dominates both numbers).
        assert!(
            rss_ratio < 0.25,
            "streaming peak {streaming_peak_kb} kB is not under 25% of the \
             in-RAM baseline {inram_peak_kb} kB"
        );
    }

    // ---- Phase 3: the retrain loop, replayed twice for determinism. ----
    let replay_config = |dir: &Path| LongitudinalConfig {
        stream: StreamConfig {
            apps: replay_apps,
            ..StreamConfig::default()
        },
        epochs: replay_epochs,
        trainer: TrainerConfig {
            top_k_features: Some(24),
            ..Default::default()
        },
        work_dir: dir.to_path_buf(),
        ..Default::default()
    };
    let t_replay = Instant::now();
    let first =
        replay(&replay_config(&work.join("replay-1")), |_, _| Ok(())).expect("first replay");
    let replay_s = t_replay.elapsed().as_secs_f64();
    let second =
        replay(&replay_config(&work.join("replay-2")), |_, _| Ok(())).expect("second replay");
    let replay_deterministic = first.drift_json() == second.drift_json();
    assert!(
        replay_deterministic,
        "replay drift reports diverged between identical runs"
    );
    let epoch_retrain_ms: Vec<u128> = first.epochs.iter().map(|e| e.retrain_ms).collect();
    eprintln!(
        "replay: {replay_epochs} epochs x {replay_apps} apps in {replay_s:.2}s \
         (retrain {epoch_retrain_ms:?} ms/epoch), drift report deterministic"
    );

    // ---- Phase 4: hot-redeploy blackout under pipelined load. ----
    let first_epoch = first.epochs.first().expect("replay produced epochs");
    let last_epoch = first.epochs.last().expect("replay produced epochs");
    let model = ModelState::load(&first_epoch.model_path).expect("load epoch 0 model");
    let handle = serve::start(
        ServeConfig {
            jobs: 1,
            ..ServeConfig::default()
        },
        model,
    )
    .expect("daemon starts");
    let addr = handle.addr();
    let swaps: usize = if smoke { 4 } else { 8 };
    let stop = AtomicBool::new(false);
    let requests = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let source = "@endpoint(network)\nfn handle(req: str, n: int) -> int {\n    let buf: str[32];\n    let i: int = 0;\n    while i < n {\n        if i > 3 { n = n - 1; }\n        i = i + 1;\n    }\n    strcpy(buf, req);\n    return n;\n}\n";
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("scorer connects");
                while !stop.load(Ordering::Relaxed) {
                    let response = client
                        .score_source("blackout-app", source, "c")
                        .expect("connection survives the swap");
                    requests.fetch_add(1, Ordering::Relaxed);
                    if !is_ok(&response) {
                        dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let mut admin = Client::connect(addr).expect("admin connects");
        for swap in 0..swaps {
            std::thread::sleep(std::time::Duration::from_millis(30));
            let target = if swap % 2 == 0 {
                &last_epoch.model_path
            } else {
                &first_epoch.model_path
            };
            let response = admin
                .reload(Some(&target.to_string_lossy()))
                .expect("reload round-trip");
            assert!(is_ok(&response), "reload refused: {response}");
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
    });
    handle.shutdown();
    let blackout_requests = requests.load(Ordering::Relaxed);
    let blackout_dropped = dropped.load(Ordering::Relaxed);
    assert!(blackout_requests > 0, "scorers never got a response in");
    assert_eq!(
        blackout_dropped, 0,
        "requests dropped during hot-redeploy swaps"
    );
    eprintln!(
        "blackout: {blackout_requests} scores across {swaps} hot swaps, \
         {blackout_dropped} dropped"
    );

    let _ = std::fs::remove_dir_all(&work);

    println!(
        "BENCH_LONGITUDINAL {{\"apps\":{apps},\"trained\":{},\
         \"apps_per_sec\":{apps_per_sec:.1},\"stream_s\":{stream_s:.2},\
         \"retrain_s\":{retrain_s:.2},\"retrain_ram_s\":{retrain_ram_s:.2},\
         \"streaming_peak_kb\":{streaming_peak_kb},\"inram_peak_kb\":{inram_peak_kb},\
         \"rss_ratio\":{rss_ratio:.3},\"rss_headroom\":{rss_headroom:.2},\
         \"bit_identical\":{bit_identical},\
         \"replay_apps\":{replay_apps},\"replay_epochs\":{replay_epochs},\
         \"replay_s\":{replay_s:.2},\"replay_deterministic\":{replay_deterministic},\
         \"blackout_swaps\":{swaps},\"blackout_requests\":{blackout_requests},\
         \"blackout_dropped\":{blackout_dropped}}}",
        histories.len(),
    );
}

criterion_group!(benches, bench_longitudinal);
criterion_main!(benches);
