//! BENCH-SERVE: scoring-service round-trip throughput and latency.
//!
//! Boots the `serve` daemon in-process on an ephemeral port and drives it
//! the way a deployment would: hundreds of concurrent clients
//! **pipelining** pre-extracted feature vectors over the length-prefixed
//! JSON protocol. Three gates run before anything is timed:
//!
//! 1. **Equality** — every app's wire-scored report must be string-equal
//!    to the offline [`evaluate_batch`] report (which is itself
//!    bit-identical to the boxed path), and must carry the served model's
//!    fingerprint.
//! 2. **Overload** — a second daemon with `max_inflight = 1` and an
//!    artificial batch delay must answer a typed `busy` error, not queue
//!    unboundedly or drop the connection.
//! 3. **Recovery** — after the overload clears, the same server must
//!    score again.
//!
//! Then N client threads each blast bursts of `WINDOW` pipelined `score`
//! requests per connection (request frames are precomputed, so the
//! client side of the hot loop is one `write_all` plus reads), and the
//! equality gate runs *inside* the timed loop: every response must be
//! byte-identical to the precomputed offline reference frame. The result
//! prints as one `BENCH_SERVE` JSON line (snapshot:
//! `results/BENCH_SERVE.json`) with requests/sec and client-observed
//! p50/p95/p99/p99.9 latency. `CLAIRVOYANT_BENCH_SMOKE=1` shrinks
//! everything to a CI-sized round-trip check.
//!
//! [`evaluate_batch`]: clairvoyant::CompiledModel::evaluate_batch

use bench::{criterion_group, criterion_main};
use clairvoyant::prelude::*;
use clairvoyant::report::{security_report_value, Json};
use serve::client::{error_type, is_ok};
use serve::protocol::{frame_into, ok_response};
use serve::{Client, ModelState, ServeConfig};
use static_analysis::FeatureVector;
use std::time::{Duration, Instant};

/// Pull `(model_fingerprint, report_json)` out of a score response.
fn score_parts(response: &Json) -> (String, String) {
    assert!(is_ok(response), "score failed: {response}");
    let Json::Object(obj) = response else {
        panic!("score response is not an object: {response}");
    };
    let Some(Json::String(fp)) = obj.get("model") else {
        panic!("score response has no model fingerprint: {response}");
    };
    let report = obj.get("report").expect("score response has a report");
    (fp.clone(), report.to_string())
}

fn bench_serve(_c: &mut bench::harness::Criterion) {
    let smoke = std::env::var("CLAIRVOYANT_BENCH_SMOKE").is_ok();
    // clients × bursts × window pipelined requests in the timed section.
    let (n_apps, clients, bursts, window) = if smoke {
        (8, 4, 3, 4)
    } else {
        (34, 200, 10, 32)
    };

    // Fixed-seed model and corpus: the bench is deterministic end to end.
    let train_corpus = Corpus::generate(&CorpusConfig::small(30, 20170408));
    let compiled = Trainer::with_config(TrainerConfig {
        learner: Learner::RandomForest,
        ..Default::default()
    })
    .train(&train_corpus)
    .compile();

    let mut score_config = CorpusConfig::small(n_apps, 5);
    score_config.max_kloc = 2.0;
    let score_corpus = Corpus::generate(&score_config);
    let testbed = Testbed::new();
    let apps: Vec<(String, FeatureVector)> =
        pipeline::parallel_map(0, &score_corpus.apps, |_, app| {
            (app.spec.name.clone(), testbed.extract(&app.program))
        });

    // Offline reference reports, serialized exactly as the server does.
    let reports = compiled.evaluate_batch(&apps, 1);
    let expected: Vec<String> = reports
        .iter()
        .map(|r| security_report_value(r).to_string())
        .collect();

    let model = ModelState::from_model(compiled);
    let fingerprint = model.fingerprint_hex();
    let handle = serve::start(
        ServeConfig {
            // Sized for the pipelined fleet: the in-flight cap must hold
            // clients × window admitted jobs, or the equality gate would
            // (correctly) trip on typed busy refusals.
            max_inflight: (clients * window * 2).max(256),
            batch_max: 128,
            jobs: 1,
            // One reactor + one shard: the bench host is a single core,
            // so extra threads only add context switches.
            reactor_threads: 1,
            batch_shards: 1,
            ..ServeConfig::default()
        },
        model,
    )
    .expect("start server");
    let addr = handle.addr();

    // Gate 1: every wire report equals its offline reference, byte for
    // byte, under the served model's fingerprint.
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    for ((name, fv), want) in apps.iter().zip(&expected) {
        let response = client.score_features(name, fv).expect("score");
        let (fp, got) = score_parts(&response);
        assert_eq!(fp, fingerprint, "fingerprint mismatch for {name}");
        assert_eq!(&got, want, "wire report diverged from offline for {name}");
    }

    // Gates 2 + 3: a saturated server answers `busy`, then recovers.
    let overload = serve::start(
        ServeConfig {
            max_inflight: 1,
            batch_max: 1,
            debug_batch_delay: Duration::from_millis(300),
            ..ServeConfig::default()
        },
        ModelState::from_model(
            Trainer::with_config(TrainerConfig::default())
                .train(&train_corpus)
                .compile(),
        ),
    )
    .expect("start overload server");
    let overload_addr = overload.addr();
    let (hold_name, hold_fv) = apps[0].clone();
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(overload_addr).expect("connect holder");
        c.score_features(&hold_name, &hold_fv).expect("held score")
    });
    std::thread::sleep(Duration::from_millis(100)); // let the holder admit
    let mut probe = Client::connect(overload_addr).expect("connect probe");
    let refused = probe
        .score_features(&apps[1].0, &apps[1].1)
        .expect("probe roundtrip");
    let busy_seen = error_type(&refused) == Some("busy");
    assert!(busy_seen, "expected busy, got: {refused}");
    assert!(is_ok(&holder.join().expect("holder thread")));
    let recovered = probe
        .score_features(&apps[1].0, &apps[1].1)
        .expect("recovery roundtrip");
    assert!(is_ok(&recovered), "server did not recover: {recovered}");
    overload.shutdown();

    // Precompute the hot-loop bytes once: per-app request frames (what
    // every client writes) and per-app expected response payloads (the
    // byte-equality gate each response is checked against — `frame_into`
    // + `ok_response` is exactly how the server renders its replies).
    let request_frames: Vec<Vec<u8>> = apps
        .iter()
        .map(|(name, fv)| {
            let request = Json::object(vec![
                ("op", Json::String("score".into())),
                ("name", Json::String(name.clone())),
                (
                    "features",
                    Json::Object(
                        fv.iter()
                            .map(|(k, v)| (k.to_string(), Json::Number(v)))
                            .collect(),
                    ),
                ),
            ]);
            let mut frame = Vec::new();
            frame_into(&mut frame, &request);
            frame
        })
        .collect();
    let expected_payloads: Vec<String> = reports
        .iter()
        .map(|report| {
            ok_response(
                "score",
                vec![
                    ("model", Json::String(fingerprint.clone())),
                    ("report", security_report_value(report)),
                ],
            )
            .to_string()
        })
        .collect();

    // Timed section: every client pipelines `window` requests per burst
    // over one persistent connection — one write, `window` reads — and
    // byte-checks each response in request order.
    let t0 = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let apps = &apps;
                let request_frames = &request_frames;
                let expected_payloads = &expected_payloads;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect worker");
                    client
                        .set_timeout(Some(Duration::from_secs(60)))
                        .expect("set timeout");
                    let mut lats = Vec::with_capacity(bursts * window);
                    let mut burst_bytes = Vec::new();
                    for b in 0..bursts {
                        burst_bytes.clear();
                        let base = c + b * window;
                        for i in 0..window {
                            burst_bytes.extend_from_slice(&request_frames[(base + i) % apps.len()]);
                        }
                        let t = Instant::now();
                        client.send_framed(&burst_bytes).expect("send burst");
                        for i in 0..window {
                            let payload = client.recv_payload().expect("recv");
                            // In-loop equality gate: responses must come
                            // back in request order, byte-identical to
                            // the offline reference.
                            let want = expected_payloads[(base + i) % apps.len()].as_bytes();
                            assert_eq!(
                                payload, want,
                                "client {c} burst {b} response {i}: wire bytes diverged \
                                 from offline scoring (or arrived out of order)"
                            );
                            lats.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let total = all.len();
    let quantile = |q: f64| all[((total - 1) as f64 * q) as usize] as f64 / 1e3;
    let rps = total as f64 / elapsed.max(1e-9);

    handle.shutdown();

    println!(
        "BENCH_SERVE {{\"apps\":{},\"clients\":{clients},\"window\":{window},\
         \"requests\":{total},\"throughput_rps\":{rps:.1},\"p50_ms\":{:.2},\
         \"p95_ms\":{:.2},\"p99_ms\":{:.2},\"p999_ms\":{:.2},\
         \"busy_seen\":{busy_seen},\"reports_identical\":true}}",
        apps.len(),
        quantile(0.5),
        quantile(0.95),
        quantile(0.99),
        quantile(0.999),
    );
    eprintln!(
        "serve engine: {total} pipelined requests from {clients} clients \
         (window {window}) in {elapsed:.2} s ({rps:.0} req/s), \
         p50 {:.2} ms, p99 {:.2} ms, p99.9 {:.2} ms",
        quantile(0.5),
        quantile(0.99),
        quantile(0.999),
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
