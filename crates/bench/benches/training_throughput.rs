//! BENCH-PERF (part 2): cost of corpus generation and model training as
//! the application count grows — the "prediction model is trained offline"
//! budget of §1. Training extraction goes through the pipeline engine;
//! the last run's `PipelineReport` prints as a `BENCH_PIPELINE` line.

use bench::harness::{black_box, BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generate");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let config = corpus::CorpusConfig::small(n, 5);
            b.iter(|| black_box(corpus::Corpus::generate(&config).db.len()))
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    let mut last_extraction = None;
    for n in [8usize, 16] {
        let config = corpus::CorpusConfig::small(n, 5);
        let corpus = corpus::Corpus::generate(&config);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let (model, report) = clairvoyant::Trainer::new().train_with_report(&corpus);
                last_extraction = Some(report.extraction);
                black_box(model.feature_names.len())
            })
        });
    }
    if let Some(report) = last_extraction {
        println!("BENCH_PIPELINE {}", report.to_json());
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    // Applying the metric must be cheap: this is the inner loop of the CI
    // gate (§5.3).
    let config = corpus::CorpusConfig::small(10, 5);
    let corpus = corpus::Corpus::generate(&config);
    let model = clairvoyant::Trainer::new().train(&corpus);
    let program = &corpus.apps[0].program;
    let mut group = c.benchmark_group("evaluate");
    group.sample_size(20);
    group.bench_function("security_report", |b| {
        b.iter(|| black_box(model.evaluate(program).risk_score()))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_training, bench_evaluation);
criterion_main!(benches);
