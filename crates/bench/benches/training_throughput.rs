//! BENCH-PERF (part 2): the offline training budget of §1 — corpus
//! generation, the ML training engine, and metric application.
//!
//! The headline measurement pits the fast engine (columnar matrix +
//! incremental split sweep + pooled forest/CV training) against an
//! in-bench copy of the pre-rework reference (row-major trees, per-
//! threshold re-partition split search) on the same prepared dataset:
//! a 150-app corpus, the full feature set, 5 CV folds, and the full
//! standard hypothesis battery with the 20-tree random forest. Results
//! print as a one-line `BENCH_TRAIN {…}` JSON record, and the bench
//! asserts that 1-worker and 4-worker training are bit-identical.

use bench::harness::{black_box, BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use clairvoyant::extract::extract_apps;
use clairvoyant::hypothesis::standard_battery;
use clairvoyant::train::TrainerConfig;
use clairvoyant::{Learner, PipelineConfig, Trainer};
use cvedb::SelectionCriteria;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use secml::dataset::{ColMatrix, Dataset};
use secml::eval::{cross_validate_classifier_jobs, stratified_folds};
use secml::forest::{ForestConfig, RandomForest};
use secml::preprocess::{log1p_rows, Standardizer};
use secml::tree::TreeConfig;
use secml::Classifier;
use std::time::Instant;

const FOLDS: usize = 5;
const TREES: usize = 20;

// ---------------------------------------------------------------------
// Reference implementation: the pre-rework training engine, verbatim.
// Row-major storage; every candidate threshold re-partitions the node and
// recomputes both impurities from scratch; trees grown sequentially from
// one shared RNG stream.
// ---------------------------------------------------------------------

enum NaiveNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<NaiveNode>,
        right: Box<NaiveNode>,
    },
}

impl NaiveNode {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            NaiveNode::Leaf { value } => *value,
            NaiveNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }
}

fn naive_entropy(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let ones = values.iter().sum::<f64>();
    let mut h = 0.0;
    for p in [ones / n, 1.0 - ones / n] {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

fn naive_grow(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    depth: usize,
    config: &TreeConfig,
    feature_pool: &[usize],
) -> NaiveNode {
    let values: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let parent_impurity = naive_entropy(&values);

    if depth >= config.max_depth
        || indices.len() < config.min_samples_split
        || parent_impurity <= 0.0
    {
        return NaiveNode::Leaf { value: mean };
    }

    let mut best: Option<(usize, f64, f64)> = None;
    for &feature in feature_pool {
        let mut vals: Vec<f64> = indices.iter().map(|&i| x[i][feature]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in indices {
                if x[i][feature] <= threshold {
                    left.push(y[i]);
                } else {
                    right.push(y[i]);
                }
            }
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let n = indices.len() as f64;
            let weighted = (left.len() as f64 / n) * naive_entropy(&left)
                + (right.len() as f64 / n) * naive_entropy(&right);
            let gain = parent_impurity - weighted;
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, threshold, gain));
            }
        }
    }

    match best {
        Some((feature, threshold, gain)) if gain > config.min_gain => {
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &i in indices {
                if x[i][feature] <= threshold {
                    li.push(i);
                } else {
                    ri.push(i);
                }
            }
            NaiveNode::Split {
                feature,
                threshold,
                left: Box::new(naive_grow(x, y, &li, depth + 1, config, feature_pool)),
                right: Box::new(naive_grow(x, y, &ri, depth + 1, config, feature_pool)),
            }
        }
        _ => NaiveNode::Leaf { value: mean },
    }
}

#[derive(Default)]
struct NaiveForest {
    trees: Vec<NaiveNode>,
}

impl Classifier for NaiveForest {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        self.fit(&x.to_rows(), y);
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let cols = x[0].len();
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        let config = ForestConfig {
            n_trees: TREES,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.n_trees {
            let sample: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            let bx: Vec<Vec<f64>> = sample.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<f64> = sample.iter().map(|&i| yf[i]).collect();
            let k = ((cols as f64 * config.feature_fraction).ceil() as usize).clamp(1, cols);
            let mut pool: Vec<usize> = (0..cols).collect();
            pool.shuffle(&mut rng);
            pool.truncate(k);
            let indices: Vec<usize> = (0..bx.len()).collect();
            self.trees
                .push(naive_grow(&bx, &by, &indices, 0, &config.tree, &pool));
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }
}

/// Pre-rework cross-validation: clones the training rows per fold and
/// trains the naive forest sequentially.
fn naive_cv_auc(x: &[Vec<f64>], y: &[usize], k: usize) -> f64 {
    let fold_sets = stratified_folds(y, k);
    let mut truth = Vec::new();
    let mut scores = Vec::new();
    for test in &fold_sets {
        let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
        let train_idx: Vec<usize> = (0..x.len()).filter(|i| !test_set.contains(i)).collect();
        let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| x[i].clone()).collect();
        let ty: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
        let mut model = NaiveForest::default();
        model.fit(&tx, &ty);
        for &i in test {
            truth.push(y[i]);
            scores.push(model.predict_proba(&x[i]));
        }
    }
    secml::eval::roc_auc(&truth, &scores)
}

// ---------------------------------------------------------------------
// The benchmark proper.
// ---------------------------------------------------------------------

/// The trainer's data prep, reproduced so the naive and fast engines see
/// the exact same matrix: full feature set, log1p + standardization.
fn prepared_battery(corpus: &corpus::Corpus) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
    let histories = corpus.db.select(&SelectionCriteria::default());
    let apps: Vec<&corpus::GeneratedApp> = histories
        .iter()
        .map(|h| {
            corpus
                .apps
                .iter()
                .find(|a| a.spec.name == h.app)
                .expect("app exists")
        })
        .collect();
    let extraction = extract_apps(apps.iter().copied(), PipelineConfig::default());
    let items: Vec<(String, Vec<(String, f64)>)> = extraction
        .features
        .iter()
        .map(|(name, fv)| {
            (
                name.clone(),
                fv.iter().map(|(k, v)| (k.to_string(), v)).collect(),
            )
        })
        .collect();
    let dataset = Dataset::from_named(&items);
    let mut rows = dataset.rows.clone();
    log1p_rows(&mut rows);
    let st = Standardizer::fit(&rows);
    st.transform(&mut rows);
    let labelled: Vec<Vec<usize>> = standard_battery()
        .iter()
        .map(|h| histories.iter().map(|hist| h.label(hist)).collect())
        .filter(|labels: &Vec<usize>| {
            let p: usize = labels.iter().sum();
            p > 0 && p < labels.len()
        })
        .collect();
    (rows, labelled)
}

fn bench_training_engine(c: &mut Criterion) {
    let config = corpus::CorpusConfig::small(150, 5);
    let corpus = corpus::Corpus::generate(&config);
    let (rows, batteries) = prepared_battery(&corpus);
    let n_rows = rows.len();
    let n_features = rows.first().map(|r| r.len()).unwrap_or(0);
    eprintln!(
        "training engine: {} apps × {} features, {} trainable hypotheses",
        n_rows,
        n_features,
        batteries.len()
    );

    // Fast engine: shared columnar matrix, incremental sweep, pooled CV.
    let fast_battery = |jobs: usize| -> Vec<f64> {
        let matrix = ColMatrix::from_rows(&rows);
        matrix.sorted(0);
        batteries
            .iter()
            .map(|labels| {
                let report = cross_validate_classifier_jobs(
                    || {
                        RandomForest::with_config(ForestConfig {
                            n_trees: TREES,
                            ..Default::default()
                        })
                    },
                    &matrix,
                    labels,
                    FOLDS,
                    jobs,
                );
                let mut model = RandomForest::with_config(ForestConfig {
                    n_trees: TREES,
                    jobs,
                    ..Default::default()
                });
                model.fit_matrix(&matrix, labels);
                report.auc
            })
            .collect()
    };

    // Determinism gate: 1 worker and 4 workers must agree bit-for-bit.
    let sequential = fast_battery(1);
    let parallel = fast_battery(4);
    assert_eq!(
        sequential.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "parallel training diverged from sequential"
    );

    let t0 = Instant::now();
    black_box(fast_battery(1));
    let fast_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Reference engine, one pass (it is the slow side by construction).
    let t0 = Instant::now();
    for labels in &batteries {
        black_box(naive_cv_auc(&rows, labels, FOLDS));
        let mut model = NaiveForest::default();
        model.fit(&rows, labels);
        black_box(model.predict_proba(&rows[0]));
    }
    let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

    let speedup = naive_ms / fast_ms.max(1e-9);
    println!(
        "BENCH_TRAIN {{\"rows\":{n_rows},\"features\":{n_features},\"trees\":{TREES},\
         \"folds\":{FOLDS},\"hypotheses\":{},\"wall_ms\":{:.1},\"naive_ms\":{:.1},\
         \"speedup\":{:.2}}}",
        batteries.len(),
        fast_ms,
        naive_ms,
        speedup
    );
    eprintln!(
        "training engine: fast {fast_ms:.0} ms, naive {naive_ms:.0} ms, speedup {speedup:.1}×"
    );

    // Full trainer wall (extraction included) on the same corpus, for the
    // BENCH ledger.
    let mut group = c.benchmark_group("train");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::from_parameter(150), &150, |b, _| {
        b.iter(|| {
            let trainer = Trainer::with_config(TrainerConfig {
                learner: Learner::RandomForest,
                train_jobs: 1,
                ..Default::default()
            });
            let (model, report) = trainer.train_with_report(&corpus);
            black_box((model.feature_names.len(), report.n_apps))
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generate");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let config = corpus::CorpusConfig::small(n, 5);
            b.iter(|| black_box(corpus::Corpus::generate(&config).db.len()))
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    // Applying the metric must be cheap: this is the inner loop of the CI
    // gate (§5.3).
    let config = corpus::CorpusConfig::small(10, 5);
    let corpus = corpus::Corpus::generate(&config);
    let model = clairvoyant::Trainer::new().train(&corpus);
    let program = &corpus.apps[0].program;
    let mut group = c.benchmark_group("evaluate");
    group.sample_size(20);
    group.bench_function("security_report", |b| {
        b.iter(|| black_box(model.evaluate(program).risk_score()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_training_engine,
    bench_evaluation
);
criterion_main!(benches);
