//! EXP-DETECT: bug-finding tools vs ground truth (§4.2).
//!
//! The paper worries that "the concern with many bug-finding tools is a
//! high false positive rate" and proposes feeding their reports into the
//! learner anyway, to "amortize the inaccuracy of locating bugs". This
//! experiment measures the suite's actual behaviour against the corpus's
//! planted ground truth: per CWE class, how often does the checker fire on
//! applications that truly contain the class (recall) and how often on
//! applications that do not (false-positive rate)?

use bugfind::MetaTool;
use cvedb::Cwe;

fn main() {
    let corpus = bench::experiment_corpus();
    let tool = MetaTool::new();
    println!("== EXP-DETECT: checker suite vs planted ground truth ==\n");

    // The CWE classes a checker claims to hint at.
    let classes = [
        (Cwe::StackBufferOverflow, "bufcheck"),
        (Cwe::FormatString, "fmtcheck"),
        (Cwe::IntegerOverflow, "intcheck"),
        (Cwe::ImproperInputValidation, "inputcheck"),
        (Cwe::Toctou, "racecheck"),
        (Cwe::HardcodedCredentials, "credcheck"),
        (Cwe::PathTraversal, "pathcheck"),
        (Cwe::UseAfterFree, "alloccheck"),
        (Cwe::MemoryLeak, "alloccheck"),
        (Cwe::InfoExposure, "leakcheck"),
    ];

    // One meta-tool run per app, reused across classes.
    let reports: Vec<(&corpus::GeneratedApp, bugfind::MetaReport)> = corpus
        .apps
        .iter()
        .map(|a| (a, tool.run(&a.program)))
        .collect();

    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8}",
        "class (checker)", "seeded", "recall", "FP rate", "reports"
    );
    for (cwe, checker) in classes {
        let mut tp = 0usize;
        let mut fn_ = 0usize;
        let mut fp = 0usize;
        let mut tn = 0usize;
        let mut total_reports = 0usize;
        for (app, report) in &reports {
            let truly_has = app.seeded.iter().any(|s| s.cwe == cwe);
            let flagged = report.count_cwe(cwe.id()) > 0;
            total_reports += report.count_cwe(cwe.id());
            match (truly_has, flagged) {
                (true, true) => tp += 1,
                (true, false) => fn_ += 1,
                (false, true) => fp += 1,
                (false, false) => tn += 1,
            }
        }
        let recall = if tp + fn_ == 0 {
            f64::NAN
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let fp_rate = if fp + tn == 0 {
            f64::NAN
        } else {
            fp as f64 / (fp + tn) as f64
        };
        println!(
            "{:<28} {:>8} {:>7.0}% {:>7.0}% {:>8}",
            format!("{cwe} ({checker})"),
            tp + fn_,
            recall * 100.0,
            fp_rate * 100.0,
            total_reports
        );
    }
    println!(
        "\nshape check: recall high for the pattern-matched classes (121, 134, 367,\n\
         798, 22, 416, 401, 200), with nonzero FP rates on some — the realistic\n\
         noise the learner is meant to amortize (§4.2)."
    );
}
