//! EXP-DYN: does the paper's proposed dynamic-trace improvement (§5.3)
//! actually help? Compares the cross-validated count regression of the
//! static-only unified model against static + `dyn.*` features, and shows
//! which dynamic signals carry weight.

use clairvoyant::dynamic::dynamic_features;
use clairvoyant::extract::extract_apps;
use clairvoyant::PipelineConfig;
use cvedb::SelectionCriteria;
use secml::dataset::ColMatrix;
use secml::eval::cross_validate_regressor;
use secml::linreg::LinearRegression;
use secml::preprocess::{log1p_rows, Standardizer};

fn main() {
    let corpus = bench::experiment_corpus();
    let histories = corpus.db.select(&SelectionCriteria::default());
    println!("== EXP-DYN: static vs static+dynamic features ==\n");

    let apps: Vec<&corpus::GeneratedApp> = histories
        .iter()
        .map(|h| {
            corpus
                .apps
                .iter()
                .find(|a| a.spec.name == h.app)
                .expect("app exists")
        })
        .collect();
    let extraction = extract_apps(apps.iter().copied(), PipelineConfig::default());
    println!("BENCH_PIPELINE {}", extraction.report.to_json());

    let mut static_rows: Vec<Vec<f64>> = Vec::new();
    let mut extended_rows: Vec<Vec<f64>> = Vec::new();
    let mut dyn_totals: Vec<(String, f64, f64)> = Vec::new();
    let mut counts: Vec<f64> = Vec::new();
    for (h, app) in histories.iter().zip(&apps) {
        let fv = extraction.get(&h.app).expect("extracted").clone();
        let dynamic = dynamic_features(&app.program);
        dyn_totals.push((
            h.app.clone(),
            dynamic.get_or_zero("dyn.oob_writes"),
            dynamic.get_or_zero("dyn.tainted_sink_calls"),
        ));
        let mut both = fv.clone();
        both.merge(&dynamic);
        static_rows.push(fv.iter().map(|(_, v)| v).collect());
        extended_rows.push(both.iter().map(|(_, v)| v).collect());
        counts.push((h.total as f64).log10());
    }

    let prep = |rows: &mut Vec<Vec<f64>>| {
        log1p_rows(rows);
        let st = Standardizer::fit(rows);
        st.transform(rows);
    };
    prep(&mut static_rows);
    prep(&mut extended_rows);

    let static_matrix = ColMatrix::from_rows(&static_rows);
    let extended_matrix = ColMatrix::from_rows(&extended_rows);
    let static_cv =
        cross_validate_regressor(|| LinearRegression::ridge(1.0), &static_matrix, &counts, 5);
    let extended_cv = cross_validate_regressor(
        || LinearRegression::ridge(1.0),
        &extended_matrix,
        &counts,
        5,
    );

    println!(
        "count regression (log10 CVEs), 5-fold CV over {} apps:",
        counts.len()
    );
    println!(
        "  static only      R² = {:.3}  MAE = {:.3}",
        static_cv.r_squared, static_cv.mae
    );
    println!(
        "  static + dynamic R² = {:.3}  MAE = {:.3}",
        extended_cv.r_squared, extended_cv.mae
    );
    let delta = extended_cv.r_squared - static_cv.r_squared;
    println!(
        "  ΔR² = {delta:+.3} — {}",
        if delta > 0.0 {
            "dynamic traces add signal, as §5.3 hypothesizes"
        } else {
            "no measurable gain at this scale (the static testbed already covers it)"
        }
    );

    println!("\ndynamic evidence per app (top 8 by runtime OOB writes):");
    dyn_totals.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (app, oob, sinks) in dyn_totals.iter().take(8) {
        println!("  {app:<22} oob_writes={oob:<4} tainted_sink_calls={sinks}");
    }
}
