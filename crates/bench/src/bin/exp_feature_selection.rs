//! EXP-SELECT: the §5.2 model-refinement ablation — "the primary challenge
//! on building this metric will be to refine the trained model, including
//! filtering features that are irrelevant to the prediction". Sweeps the
//! top-k Pearson feature filter and reports cross-validated quality, so the
//! cost of keeping irrelevant features (and of cutting too deep) is
//! visible.

use clairvoyant::prelude::*;
use clairvoyant::train::TrainerConfig;

fn main() {
    let corpus = bench::experiment_corpus();
    println!("== EXP-SELECT: feature-filter sweep (§5.2) ==\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "kept", "count R²", "CVSS>7 AUC", "AV:N AUC"
    );

    let mut extraction = None;
    for top_k in [Some(4usize), Some(8), Some(16), Some(32), Some(64), None] {
        let trainer = Trainer::with_config(TrainerConfig {
            top_k_features: top_k,
            ..Default::default()
        });
        let (_, report) = trainer.train_with_report(&corpus);
        extraction = Some(report.extraction.clone());
        let auc_of = |name: &str| {
            report
                .hypothesis_reports
                .iter()
                .find(|h| h.hypothesis.name() == name)
                .and_then(|h| h.report.as_ref())
                .map(|r| format!("{:.3}", r.auc))
                .unwrap_or_else(|| "—".to_string())
        };
        println!(
            "{:>10} {:>12.3} {:>14} {:>14}",
            top_k
                .map(|k| k.to_string())
                .unwrap_or_else(|| "all".to_string()),
            report.count_cv.r_squared,
            auc_of("cvss_gt_7"),
            auc_of("av_network"),
        );
    }
    println!(
        "\nshape check: quality should rise from 4 features, peak in the middle,\n\
         and hold (or dip slightly) at `all` — filtering matters most when the\n\
         app count is small relative to the 97-wide unified vector."
    );
    if let Some(e) = extraction {
        println!("BENCH_PIPELINE {}", e.to_json());
    }
}
