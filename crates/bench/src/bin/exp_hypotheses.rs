//! EXP-HYP: cross-validated accuracy of the hypothesis battery, per
//! learner — the quantitative version of the paper's §5.2 training phase
//! ("CVSS > 7?", "AV = N?", "CWE = 121?", …), including the Weka-style
//! learner-zoo comparison.

use clairvoyant::prelude::*;
use clairvoyant::train::TrainerConfig;

fn main() {
    let corpus = bench::experiment_corpus();
    println!("== EXP-HYP: hypothesis battery, cross-validated ==\n");

    let mut extraction = None;
    for learner in Learner::ALL {
        let trainer = Trainer::with_config(TrainerConfig {
            learner,
            top_k_features: Some(16),
            ..Default::default()
        });
        let (_, report) = trainer.train_with_report(&corpus);
        extraction = Some(report.extraction.clone());
        println!("--- learner: {learner} ---");
        let mut shown = 0;
        for h in &report.hypothesis_reports {
            if let Some(r) = &h.report {
                println!(
                    "  {:<22} acc={:.2} prec={:.2} rec={:.2} f1={:.2} auc={:.2} (base {:.2})",
                    h.hypothesis.name(),
                    r.accuracy,
                    r.precision,
                    r.recall,
                    r.f1,
                    r.auc,
                    h.base_rate
                );
                shown += 1;
            }
        }
        if shown == 0 {
            println!("  (all hypotheses degenerate at this corpus scale)");
        }
        println!(
            "  count regression: R² = {:.3}, MAE(log10) = {:.3}\n",
            report.count_cv.r_squared, report.count_cv.mae
        );
    }
    println!(
        "shape check: the battery's AUCs should generally beat 0.5 (chance) and the\n\
         count R² should beat the LoC-only study (Figure 2) — see exp_unified_vs_single."
    );
    if let Some(e) = extraction {
        println!("BENCH_PIPELINE {}", e.to_json());
    }
}
