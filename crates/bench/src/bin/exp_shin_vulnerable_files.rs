//! EXP-SHIN: predicting vulnerable files from basic metrics.
//!
//! §4 of the paper cites Shin et al. [61]: complexity, code churn and
//! developer-activity metrics "predict 80 % of the vulnerable files" in
//! Firefox and the RHEL kernel using only basic per-file properties. This
//! experiment replicates the study at file (module) granularity on the
//! synthetic corpus, sweeping the inspection budget.

use clairvoyant::files::{file_dataset, run_file_study, FILE_FEATURES};

fn main() {
    let corpus = bench::experiment_corpus();
    let rows = file_dataset(&corpus);
    let vulnerable = rows.iter().filter(|r| r.vulnerable).count();
    println!("== EXP-SHIN: vulnerable-file prediction ==\n");
    println!(
        "{} files across {} applications; {} ({:.0}%) contain a vulnerability",
        rows.len(),
        corpus.apps.len(),
        vulnerable,
        100.0 * vulnerable as f64 / rows.len() as f64
    );
    println!("features: {}\n", FILE_FEATURES.join(", "));

    println!("{:>9} {:>8} {:>8}", "inspect", "recall", "AUC");
    let mut recall_at_half = 0.0;
    for budget in [0.10, 0.25, 0.50, 0.75] {
        let r = run_file_study(&corpus, budget);
        println!(
            "{:>8.0}% {:>7.0}% {:>8.3}",
            budget * 100.0,
            r.recall_at_budget * 100.0,
            r.auc
        );
        if budget == 0.50 {
            recall_at_half = r.recall_at_budget;
        }
    }
    println!(
        "\npaper reference: Shin et al. predict 80% of vulnerable files; \
         here {:.0}% are caught inspecting half the files",
        recall_at_half * 100.0
    );
}
