//! EXP-UNIFIED: the paper's central position (§4) — "a weighted aggregation
//! of multiple metrics can provide a more precise estimation of potential
//! vulnerabilities" than any single metric. Trains on each feature family
//! alone and on the unified vector, and compares cross-validated quality.

use clairvoyant::ablation::run_ablation;

fn main() {
    let corpus = bench::experiment_corpus();
    println!("== EXP-UNIFIED: unified model vs single metric families ==\n");
    let result = run_ablation(&corpus);
    println!("{result}");
    let unified = result.unified();
    let loc = result.loc_only();
    let best = result.best_single();
    println!(
        "unified R² = {:.3} vs LoC-only {:.3} (best single family: {} at {:.3})",
        unified.count_r2, loc.count_r2, best.family, best.count_r2
    );
    if unified.count_r2 > loc.count_r2 {
        println!("✓ the unified aggregation beats counting lines of code");
    } else {
        println!("✗ unified model failed to beat LoC at this scale");
    }
}
