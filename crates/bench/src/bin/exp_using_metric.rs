//! EXP-METRIC: using the metric (§5.3) — evaluate held-out applications,
//! compare two candidate libraries, gate a code change, and show the
//! per-feature attributions that make the prediction actionable.

use clairvoyant::prelude::*;
use clairvoyant::report::security_report_json;
use cvedb::SelectionCriteria;

fn main() {
    let corpus = bench::experiment_corpus();
    // Hold out the last few selected applications from training.
    let selected = corpus.db.select(&SelectionCriteria::default());
    let holdout: Vec<&str> = selected
        .iter()
        .rev()
        .take(3)
        .map(|h| h.app.as_str())
        .collect();
    println!("== EXP-METRIC: applying the trained metric (§5.3) ==\n");

    let (model, train_report) = Trainer::new().train_with_report(&corpus);
    println!("BENCH_PIPELINE {}", train_report.extraction.to_json());

    println!("--- held-out application reports ---");
    for name in &holdout {
        let app = corpus
            .apps
            .iter()
            .find(|a| a.spec.name == *name)
            .expect("app exists");
        let truth = corpus.db.history(name).expect("history exists");
        let report = model.evaluate(&app.program);
        println!(
            "{name}: predicted {:.1} vulns (actual {}), risk {:.0}/100",
            report.predicted_vulnerabilities,
            truth.total,
            report.risk_score()
        );
        for a in report.attributions.iter().take(3) {
            println!("    driver: {:<28} {:+.3}", a.feature, a.contribution);
        }
    }

    println!("\n--- A/B library selection ---");
    let risky = parse_program(
        "lib-a",
        Dialect::C,
        &[(
            "a.c".into(),
            "@endpoint(network) fn api(req: str) { let b: str[32]; strcpy(b, req); printf(req); }"
                .into(),
        )],
    )
    .expect("parses");
    let safe = parse_program(
        "lib-b",
        Dialect::C,
        &[(
            "b.c".into(),
            "@endpoint(network) fn api(req: str) { if strlen(req) > 31 { return; } \
             let b: str[32]; strncpy(b, req, 31); log_msg(b); }"
                .into(),
        )],
    )
    .expect("parses");
    let cmp = compare_programs(&model, &risky, &safe);
    println!("{cmp}");

    println!("\n--- CI gate on a code change ---");
    let delta = version_delta(&model, &safe, &risky);
    println!("{delta}");

    println!("\n--- machine-readable output ---");
    println!("{}", security_report_json(&model.evaluate(&safe)));
}
