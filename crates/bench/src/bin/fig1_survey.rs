//! FIG-1: how top systems venues evaluate security.
//!
//! Reproduces the paper's Figure 1: counts of papers across CCS, PLDI,
//! SOSP, ASPLOS and EuroSys using lines of code (paper total: 384), CVE
//! report counts (116), or formal verification (31) as their security
//! evaluation. The proceedings corpus is synthetic but calibrated to those
//! totals; the counting itself is done by the survey classifier over the
//! generated evaluation-section text.

use clairvoyant::survey::Figure1;

fn main() {
    let figure = Figure1::produce(2017);
    println!("== Figure 1: security evaluation methods in systems papers ==\n");
    println!("{figure}");
    println!("\npaper reference totals: LoC 384, CVE 116, formally verified 31");
    let (loc, cve, fv) = (
        figure.result.total_loc(),
        figure.result.total_cve(),
        figure.result.total_verified(),
    );
    assert_eq!(
        (loc, cve, fv),
        (384, 116, 31),
        "survey drifted from calibration"
    );
    println!("reproduced exactly: LoC {loc}, CVE {cve}, verified {fv} ✓");
}
