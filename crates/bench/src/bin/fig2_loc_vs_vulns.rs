//! FIG-2: lines of code vs number of vulnerabilities.
//!
//! Reproduces the paper's Figure 2: per-application kLoC (measured with the
//! cloc-equivalent analysis) against CVE counts, on log-log axes, with the
//! OLS trend line and R². Paper reference: 164 apps (126 C / 20 C++ /
//! 6 Python / 12 Java), trend `log10(v) = 0.17 + 0.39·log10(kLoC)`,
//! R² = 24.66 %.

use clairvoyant::studies::run_study;

fn main() {
    let corpus = bench::experiment_corpus();
    let study = run_study(&corpus);

    println!("== Figure 2: LoC vs vulnerabilities ==\n");
    println!("{study}\n");
    println!("paper reference: log10(v) = 0.17 + 0.39·log10(kLoC), R² = 24.66% over 164 apps");
    println!("\nscatter (kLoC, vulns, language):");
    for p in study.points.iter().take(20) {
        println!(
            "  {:>8.2} kLoC  {:>4} vulns  {:<7} {}",
            p.kloc,
            p.vulnerabilities,
            p.dialect.name(),
            p.app
        );
    }
    if study.points.len() > 20 {
        println!("  … {} more applications", study.points.len() - 20);
    }
    println!("\nper-language mean vulnerability counts:");
    for d in minilang::Dialect::ALL {
        if let Some(mean) = study.mean_vulns_for(d) {
            println!("  {:<7} {:.1}", d.name(), mean);
        }
    }
    let r2 = study.regression_loc.r_squared;
    println!(
        "\nconclusion: LoC explains {:.1}% of the variance — {}",
        r2 * 100.0,
        if r2 < 0.5 {
            "a weak metric, as the paper argues"
        } else {
            "stronger than the paper's corpus"
        }
    );
}
