//! FIG-3: cyclomatic complexity vs number of vulnerabilities.
//!
//! Reproduces the paper's Figure 3: McCabe cyclomatic complexity (computed
//! over the real CFGs of every function) against CVE counts. The paper
//! reports the same weak-correlation regime as Figure 2 — complexity is
//! "also weakly correlated to the number of vulnerabilities".

use clairvoyant::studies::run_study;

fn main() {
    let corpus = bench::experiment_corpus();
    let study = run_study(&corpus);

    println!("== Figure 3: cyclomatic complexity vs vulnerabilities ==\n");
    println!("{study}\n");
    println!("scatter (total complexity, vulns, language):");
    for p in study.points.iter().take(20) {
        println!(
            "  {:>8} CC  {:>4} vulns  {:<7} {}",
            p.cyclomatic,
            p.vulnerabilities,
            p.dialect.name(),
            p.app
        );
    }
    if study.points.len() > 20 {
        println!("  … {} more applications", study.points.len() - 20);
    }
    let (r2_cc, r2_loc) = (
        study.regression_cc.r_squared,
        study.regression_loc.r_squared,
    );
    println!(
        "\nconclusion: complexity R² = {:.1}% vs LoC R² = {:.1}% — both weak, \
         no single property suffices (the paper's §3.2)",
        r2_cc * 100.0,
        r2_loc * 100.0
    );
}
