//! FIG-4: the training phase, end to end.
//!
//! The paper's Figure 4 is the architecture diagram of the training
//! pipeline: select applications with converging CVE histories, collect
//! code properties through the testbed, pose the CVE hypotheses
//! (CVSS > 7?, AV = N?, CWE = 121?, …), and train weights with
//! cross-validation. This binary runs that pipeline and prints every
//! stage's output, ending with the trained model's inspectable weights.

use clairvoyant::prelude::*;
use cvedb::SelectionCriteria;

fn main() {
    let corpus = bench::experiment_corpus();

    // Stage 1: the §5.1 dataset card (TAB-A).
    let selected = corpus.db.select(&SelectionCriteria::default());
    let total_cves: usize = selected.iter().map(|h| h.total).sum();
    println!("== stage 1: application selection (§5.1) ==");
    println!(
        "  {} of {} applications have ≥5-year converging CVE histories",
        selected.len(),
        corpus.apps.len()
    );
    println!("  {total_cves} vulnerabilities in the training set");
    println!("  (paper: 164 applications, 5,975 vulnerabilities as of April 2017)\n");

    // Stages 2–4: testbed → hypotheses → cross-validated training.
    println!("== stages 2–4: testbed features × hypotheses × training ==");
    let started = std::time::Instant::now();
    let (model, report) = Trainer::new().train_with_report(&corpus);
    println!("{report}");
    println!(
        "  (training wall time: {:.1}s)\n",
        started.elapsed().as_secs_f64()
    );
    println!("BENCH_PIPELINE {}", report.extraction.to_json());

    // Stage 5: the trained weights are inspectable (§5.3: "each weight in
    // the trained model shows the importance of the corresponding code
    // property").
    println!("== stage 5: top model weights (count regressor) ==");
    let mut weights: Vec<(&String, f64)> = model
        .feature_names
        .iter()
        .zip(model.count_model.coefficients.iter().copied())
        .collect();
    weights.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    for (name, w) in weights.iter().take(12) {
        println!("  {name:<32} {w:+.4}");
    }
}
