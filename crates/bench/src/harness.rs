//! Hand-rolled benchmark harness.
//!
//! A drop-in stand-in for the slice of criterion's API the benches use
//! (`Criterion`, groups, `bench_function`, `bench_with_input`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros) —
//! criterion itself is unreachable in the offline registry. Each
//! measurement is one warm-up pass plus `sample_size` timed iterations;
//! results print as human-readable lines on stderr and as machine-readable
//! `BENCH {…}` JSON lines on stdout for BENCH_* tracking.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Measure a stand-alone function (implicit single-entry group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group(name).run("", f);
    }
}

/// Identifies one measurement within a group (criterion-compatible shell).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: p.to_string(),
        }
    }

    pub fn new(function: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), p),
        }
    }
}

/// Units processed per iteration, for derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A group of measurements sharing a sample size and throughput unit.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed iterations per measurement (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(name, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.name, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = if name.is_empty() {
            self.group.clone()
        } else {
            format!("{}/{}", self.group, name)
        };
        report(&label, &bencher.samples, self.throughput);
    }
}

/// Collects the timed iterations for one measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        eprintln!("bench {label}: no samples (b.iter never called)");
        return;
    }
    let mut ns: Vec<u128> = samples.iter().map(|d| d.as_nanos()).collect();
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    let mut json = format!(
        "{{\"bench\":\"{label}\",\"samples\":{},\"min_ns\":{min},\"median_ns\":{median},\"mean_ns\":{mean}",
        ns.len()
    );
    let mut human_extra = String::new();
    if let Some(t) = throughput {
        let (units, unit_name) = match t {
            Throughput::Elements(n) => (n, "elems"),
            Throughput::Bytes(n) => (n, "bytes"),
        };
        if median > 0 {
            let per_sec = units as f64 * 1e9 / median as f64;
            json.push_str(&format!(",\"{unit_name}_per_sec\":{per_sec:.1}"));
            human_extra = format!(", {per_sec:.0} {unit_name}/s");
        }
    }
    json.push('}');
    eprintln!("bench {label}: median {}{human_extra}", human_time(median));
    println!("BENCH {json}");
}

fn human_time(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Declares a bench group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::new();
            $( $f(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn human_time_scales() {
        assert_eq!(human_time(12), "12ns");
        assert_eq!(human_time(1_500), "1.50µs");
        assert_eq!(human_time(2_000_000), "2.00ms");
        assert_eq!(human_time(3_500_000_000), "3.50s");
    }
}
