//! Shared experiment scaffolding for the bench binaries.
//!
//! Every figure/table regenerator works on a corpus whose scale is chosen
//! by the `CLAIRVOYANT_SCALE` environment variable:
//!
//! * `paper` — the full 164-application corpus with the paper's language
//!   mix (126 C / 20 C++ / 6 Python / 12 Java); minutes of compute;
//! * `mid` (default) — 64 applications, same proportions, small sizes;
//! * `small` — 16 applications, for smoke runs.

use corpus::{Corpus, CorpusConfig};

pub mod harness;

/// Scale selection for experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Paper,
    Mid,
    Small,
}

impl Scale {
    /// Read from `CLAIRVOYANT_SCALE` (default `mid`).
    pub fn from_env() -> Scale {
        match std::env::var("CLAIRVOYANT_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("small") => Scale::Small,
            _ => Scale::Mid,
        }
    }

    /// The corpus configuration for this scale.
    pub fn config(self) -> CorpusConfig {
        match self {
            Scale::Paper => CorpusConfig::paper(),
            Scale::Mid => CorpusConfig {
                language_mix: [49, 8, 2, 5], // the paper's mix, ~2.6x down
                short_history_apps: 4,
                min_kloc: 0.25,
                max_kloc: 8.0,
                seed: 20170408,
                target_loc_r2: 0.2466,
            },
            Scale::Small => CorpusConfig {
                language_mix: [12, 2, 1, 1],
                short_history_apps: 2,
                min_kloc: 0.2,
                max_kloc: 2.0,
                seed: 20170408,
                target_loc_r2: 0.2466,
            },
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Mid => "mid",
            Scale::Small => "small",
        }
    }
}

/// Generate (and time) the experiment corpus at the chosen scale.
pub fn experiment_corpus() -> Corpus {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let corpus = Corpus::generate(&scale.config());
    let lines: usize = corpus
        .apps
        .iter()
        .flat_map(|a| a.files.iter())
        .map(|(_, s)| s.lines().count())
        .sum();
    eprintln!(
        "[scale={}] generated {} apps / {} CVEs / {} source lines in {:.1}s",
        scale.name(),
        corpus.apps.len(),
        corpus.db.len(),
        lines,
        started.elapsed().as_secs_f64()
    );
    corpus
}
