//! The seven checkers.

use crate::diagnostic::{DiagSeverity, Diagnostic};
use minilang::ast::{Expr, ExprKind, Function, LValue, Module, Program, StmtKind, Type};
use minilang::{visit, Intrinsic};
use static_analysis::cfg::{Cfg, NodeKind};
use static_analysis::context::AnalysisContext;
use static_analysis::dataflow;
use static_analysis::interval::{self, Interval};
use static_analysis::taint::TaintReport;
use std::collections::BTreeMap;

/// A bug-finding tool: scans a program, emits diagnostics.
pub trait Checker {
    /// Stable tool name.
    fn name(&self) -> &'static str;
    /// Scan the whole program.
    fn check(&self, program: &Program) -> Vec<Diagnostic>;
    /// Scan using the shared [`AnalysisContext`]. Checkers that need CFGs,
    /// interval analysis or the interprocedural taint result override this
    /// to reuse the precomputed artifacts; the default is the plain
    /// program scan. Diagnostics must be identical either way.
    fn check_ctx(&self, cx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        self.check(cx.program)
    }
}

/// Every checker in the suite, in a deterministic order.
pub fn all_checkers() -> Vec<Box<dyn Checker + Send + Sync>> {
    vec![
        Box::new(BufferOverflowChecker),
        Box::new(FormatStringChecker),
        Box::new(IntegerOverflowChecker),
        Box::new(UntrustedInputChecker),
        Box::new(ToctouChecker),
        Box::new(DeadStoreChecker),
        Box::new(HardcodedCredentialChecker),
        Box::new(PathTraversalChecker),
        Box::new(AllocLifetimeChecker),
        Box::new(InfoExposureChecker),
    ]
}

fn for_each_function(program: &Program, mut f: impl FnMut(&Module, &Function)) {
    for module in &program.modules {
        for function in &module.functions {
            f(module, function);
        }
    }
}

/// CWE-121-style checker: every `buf[i]` whose index interval is not
/// provably inside `[0, capacity)` is reported — `Error` when provably
/// outside, `Warning` when merely unproved (the realistic FP source).
pub struct BufferOverflowChecker;

impl BufferOverflowChecker {
    /// One function's scan, parameterized over where the interval for an
    /// index expression at a CFG node comes from (fresh analysis or the
    /// shared context's precomputed one).
    fn check_function(
        module: &Module,
        function: &Function,
        cfg: &Cfg<'_>,
        eval_at: &dyn Fn(usize, &Expr) -> Interval,
        out: &mut Vec<Diagnostic>,
    ) {
        let mut caps: BTreeMap<&str, usize> = BTreeMap::new();
        for p in &function.params {
            if let Some(c) = p.ty.buffer_capacity() {
                caps.insert(p.name.as_str(), c);
            }
        }
        visit::walk_stmts(&function.body, &mut |s| {
            if let StmtKind::Let { name, ty, .. } = &s.kind {
                if let Some(c) = ty.buffer_capacity() {
                    caps.insert(name.as_str(), c);
                }
            }
        });

        for (id, node) in cfg.nodes.iter().enumerate() {
            let mut report = |base: &str, index: &Expr, span: minilang::Span| {
                let Some(&cap) = caps.get(base) else { return };
                let idx = eval_at(id, index);
                if idx.is_bottom() {
                    return; // unreachable
                }
                if idx.lo >= 0 && idx.hi < cap as i64 {
                    return; // provably safe
                }
                let (severity, rule, message) = if idx.hi < 0 || idx.lo >= cap as i64 {
                    (
                        DiagSeverity::Error,
                        "index-oob",
                        format!("index {idx} is outside `{base}[{cap}]`"),
                    )
                } else {
                    (
                        DiagSeverity::Warning,
                        "index-unproved",
                        format!("cannot prove index {idx} inside `{base}[{cap}]`"),
                    )
                };
                out.push(Diagnostic {
                    tool: "bufcheck",
                    rule,
                    severity,
                    function: function.name.clone(),
                    module: module.path.clone(),
                    span,
                    cwe_hint: Some(121),
                    message,
                });
            };
            let roots: Vec<&Expr> = match &node.kind {
                NodeKind::Stmt(stmt) => {
                    if let StmtKind::Assign {
                        target: LValue::Index { base, index, span },
                        ..
                    } = &stmt.kind
                    {
                        report(base, index, *span);
                    }
                    visit::stmt_exprs(stmt)
                }
                NodeKind::Cond(c) => vec![c],
                _ => vec![],
            };
            for root in roots {
                visit::walk_expr(root, &mut |e| {
                    if let ExprKind::Index { base, index } = &e.kind {
                        if let ExprKind::Var(name) = &base.kind {
                            report(name, index, e.span);
                        }
                    }
                });
            }
        }

        // `strcpy(dst, src)` into a fixed-size buffer is flagged unless
        // the copy is bounded (`strncpy`).
        visit::walk_exprs(&function.body, &mut |e| {
            if let ExprKind::Call { callee, args } = &e.kind {
                if Intrinsic::from_name(callee) == Some(Intrinsic::Strcpy) {
                    if let Some(ExprKind::Var(dst)) = args.first().map(|a| &a.kind) {
                        if caps.contains_key(dst.as_str()) {
                            out.push(Diagnostic {
                                tool: "bufcheck",
                                rule: "strcpy-fixed-buffer",
                                severity: DiagSeverity::Warning,
                                function: function.name.clone(),
                                module: module.path.clone(),
                                span: e.span,
                                cwe_hint: Some(121),
                                message: format!("unbounded strcpy into fixed buffer `{dst}`"),
                            });
                        }
                    }
                }
            }
        });
    }
}

impl Checker for BufferOverflowChecker {
    fn name(&self) -> &'static str {
        "bufcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            let cfg = Cfg::build(function);
            let analysis = interval::analyze_cfg(&cfg, function);
            Self::check_function(
                module,
                function,
                &cfg,
                &|id, index| interval::eval(index, &analysis.envs[id]),
                &mut out,
            );
        });
        out
    }

    fn check_ctx(&self, cx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut fcxs = cx.functions.iter();
        for_each_function(cx.program, |module, function| {
            let fcx = fcxs.next().expect("one context per function");
            Self::check_function(
                module,
                function,
                &fcx.cfg,
                &|id, index| interval::eval_sym(index, &fcx.intervals.envs[id], &fcx.symbols),
                &mut out,
            );
        });
        out
    }
}

/// CWE-134: `printf`/`sprintf` where the format argument is not a string
/// literal.
pub struct FormatStringChecker;

impl Checker for FormatStringChecker {
    fn name(&self) -> &'static str {
        "fmtcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            visit::walk_exprs(&function.body, &mut |e| {
                let ExprKind::Call { callee, args } = &e.kind else {
                    return;
                };
                let fmt_arg = match Intrinsic::from_name(callee) {
                    Some(Intrinsic::Printf) => args.first(),
                    Some(Intrinsic::Sprintf) => args.get(1),
                    _ => None,
                };
                let Some(fmt) = fmt_arg else { return };
                if !matches!(fmt.kind, ExprKind::Str(_)) {
                    out.push(Diagnostic {
                        tool: "fmtcheck",
                        rule: "non-literal-format",
                        severity: DiagSeverity::Warning,
                        function: function.name.clone(),
                        module: module.path.clone(),
                        span: e.span,
                        cwe_hint: Some(134),
                        message: format!("non-literal format string passed to `{callee}`"),
                    });
                }
            });
        });
        out
    }
}

/// CWE-190: arithmetic that can overflow feeding an allocation size or a
/// buffer index, with neither operand a small constant.
pub struct IntegerOverflowChecker;

impl IntegerOverflowChecker {
    fn risky_arith(e: &Expr) -> bool {
        let mut found = false;
        visit::walk_expr(e, &mut |sub| {
            if let ExprKind::Binary { op, lhs, rhs } = &sub.kind {
                if op.can_overflow() {
                    let small_const =
                        |x: &Expr| matches!(x.kind, ExprKind::Int(v) if v.abs() < 4096);
                    if !small_const(lhs) && !small_const(rhs) {
                        found = true;
                    }
                }
            }
        });
        found
    }
}

impl Checker for IntegerOverflowChecker {
    fn name(&self) -> &'static str {
        "intcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            let mut push = |span, message: String| {
                out.push(Diagnostic {
                    tool: "intcheck",
                    rule: "overflowing-size-arith",
                    severity: DiagSeverity::Warning,
                    function: function.name.clone(),
                    module: module.path.clone(),
                    span,
                    cwe_hint: Some(190),
                    message,
                });
            };
            visit::walk_exprs(&function.body, &mut |e| match &e.kind {
                ExprKind::Call { callee, args }
                    if Intrinsic::from_name(callee) == Some(Intrinsic::Alloc) =>
                {
                    if let Some(size) = args.first() {
                        if Self::risky_arith(size) {
                            push(e.span, "allocation size from unchecked arithmetic".into());
                        }
                    }
                }
                ExprKind::Index { index, .. } if Self::risky_arith(index) => {
                    push(e.span, "buffer index from unchecked arithmetic".into());
                }
                _ => {}
            });
        });
        out
    }
}

/// CWE-20: a parameter of an `@endpoint`/`@untrusted` function flows into a
/// call argument while no `if` in the function mentions it (no validation).
pub struct UntrustedInputChecker;

impl Checker for UntrustedInputChecker {
    fn name(&self) -> &'static str {
        "inputcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            if !function.is_untrusted() && function.endpoint_channels().is_empty() {
                return;
            }
            // Which params are mentioned in any branch condition?
            let mut validated: Vec<&str> = Vec::new();
            visit::walk_stmts(&function.body, &mut |s| {
                let cond = match &s.kind {
                    StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => Some(cond),
                    StmtKind::Switch { scrutinee, .. } => Some(scrutinee),
                    _ => None,
                };
                if let Some(c) = cond {
                    visit::walk_expr(c, &mut |e| {
                        if let ExprKind::Var(name) = &e.kind {
                            validated.push(name);
                        }
                    });
                }
            });
            for p in &function.params {
                if validated.contains(&p.name.as_str()) {
                    continue;
                }
                // Does the parameter flow into any call?
                let mut used_in_call = None;
                visit::walk_exprs(&function.body, &mut |e| {
                    if let ExprKind::Call { args, .. } = &e.kind {
                        for a in args {
                            let mut mentions = false;
                            visit::walk_expr(a, &mut |sub| {
                                if matches!(&sub.kind, ExprKind::Var(n) if n == &p.name) {
                                    mentions = true;
                                }
                            });
                            if mentions && used_in_call.is_none() {
                                used_in_call = Some(e.span);
                            }
                        }
                    }
                });
                if let Some(span) = used_in_call {
                    out.push(Diagnostic {
                        tool: "inputcheck",
                        rule: "unvalidated-param",
                        severity: DiagSeverity::Warning,
                        function: function.name.clone(),
                        module: module.path.clone(),
                        span,
                        cwe_hint: Some(20),
                        message: format!(
                            "untrusted parameter `{}` used without validation",
                            p.name
                        ),
                    });
                }
            }
        });
        out
    }
}

/// CWE-367: `access(p)` followed (anywhere later in the function) by an
/// `open`/`read_file`/`write_file` on the same path variable.
pub struct ToctouChecker;

impl Checker for ToctouChecker {
    fn name(&self) -> &'static str {
        "racecheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            // Collect (callee, first-arg-var, span) in source order.
            let mut calls: Vec<(Intrinsic, String, minilang::Span)> = Vec::new();
            visit::walk_exprs(&function.body, &mut |e| {
                if let ExprKind::Call { callee, args } = &e.kind {
                    if let Some(i) = Intrinsic::from_name(callee) {
                        if let Some(ExprKind::Var(name)) = args.first().map(|a| &a.kind) {
                            calls.push((i, name.clone(), e.span));
                        }
                    }
                }
            });
            for (idx, (intr, var, _)) in calls.iter().enumerate() {
                if *intr != Intrinsic::Access {
                    continue;
                }
                for (later_intr, later_var, later_span) in &calls[idx + 1..] {
                    let is_use = matches!(
                        later_intr,
                        Intrinsic::Open | Intrinsic::ReadFile | Intrinsic::WriteFile
                    );
                    if is_use && later_var == var {
                        out.push(Diagnostic {
                            tool: "racecheck",
                            rule: "toctou",
                            severity: DiagSeverity::Warning,
                            function: function.name.clone(),
                            module: module.path.clone(),
                            span: *later_span,
                            cwe_hint: Some(367),
                            message: format!(
                                "`{}` on `{var}` after `access` check (TOCTOU window)",
                                later_intr.name()
                            ),
                        });
                        break;
                    }
                }
            }
        });
        out
    }
}

/// Dead stores via the liveness analysis — the code-quality tool whose
/// reports correlate with process quality rather than direct exploitability.
pub struct DeadStoreChecker;

impl DeadStoreChecker {
    fn program_globals(program: &Program) -> Vec<String> {
        program
            .modules
            .iter()
            .flat_map(|m| m.globals.iter().map(|g| g.name.clone()))
            .collect()
    }

    fn check_function(
        module: &Module,
        function: &Function,
        cfg: &Cfg<'_>,
        globals: &[String],
        out: &mut Vec<Diagnostic>,
    ) {
        let rd = dataflow::reaching_definitions(cfg);
        let lv = dataflow::liveness(cfg);
        let params: Vec<&str> = function.params.iter().map(|p| p.name.as_str()).collect();
        for def in &rd.defs {
            if !def.strong || params.contains(&def.var.as_str()) || globals.contains(&def.var) {
                continue;
            }
            if !lv.is_live_out(def.node, &def.var) {
                let span = match cfg.nodes[def.node].kind {
                    NodeKind::Stmt(s) => s.span,
                    _ => minilang::Span::dummy(),
                };
                out.push(Diagnostic {
                    tool: "deadstore",
                    rule: "dead-store",
                    severity: DiagSeverity::Note,
                    function: function.name.clone(),
                    module: module.path.clone(),
                    span,
                    cwe_hint: None,
                    message: format!("value assigned to `{}` is never read", def.var),
                });
            }
        }
    }
}

impl Checker for DeadStoreChecker {
    fn name(&self) -> &'static str {
        "deadstore"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let globals = Self::program_globals(program);
        for_each_function(program, |module, function| {
            let cfg = Cfg::build(function);
            Self::check_function(module, function, &cfg, &globals, &mut out);
        });
        out
    }

    fn check_ctx(&self, cx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        // The dead-store sites were already computed (under this checker's
        // exact predicate) by the context's dataflow fixpoint, as
        // structure-relative (node, local) pairs. Replaying them here —
        // re-anchoring spans through the CFG and names through the symbol
        // table — keeps repeat runs over a warm incremental cache from
        // paying for reaching-definitions + liveness twice per function.
        let mut out = Vec::new();
        let mut fcxs = cx.functions.iter();
        for_each_function(cx.program, |module, function| {
            let fcx = fcxs.next().expect("one context per function");
            for &(node, local) in &fcx.dead_store_sites {
                let span = match fcx.cfg.nodes[node].kind {
                    NodeKind::Stmt(s) => s.span,
                    _ => minilang::Span::dummy(),
                };
                let var = cx.symbols.table.name(fcx.symbols.syms[local as usize]);
                out.push(Diagnostic {
                    tool: "deadstore",
                    rule: "dead-store",
                    severity: DiagSeverity::Note,
                    function: function.name.clone(),
                    module: module.path.clone(),
                    span,
                    cwe_hint: None,
                    message: format!("value assigned to `{var}` is never read"),
                });
            }
        });
        out
    }
}

/// CWE-798: a string literal flowing into `auth_check`, or a comparison of a
/// secret-named variable against a literal.
pub struct HardcodedCredentialChecker;

impl HardcodedCredentialChecker {
    pub(crate) fn is_secret_name(name: &str) -> bool {
        let lower = name.to_ascii_lowercase();
        ["pass", "pwd", "secret", "token", "key", "cred"]
            .iter()
            .any(|k| lower.contains(k))
    }
}

impl Checker for HardcodedCredentialChecker {
    fn name(&self) -> &'static str {
        "credcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            visit::walk_exprs(&function.body, &mut |e| match &e.kind {
                ExprKind::Call { callee, args }
                    if Intrinsic::from_name(callee) == Some(Intrinsic::AuthCheck)
                        && args.iter().any(|a| matches!(a.kind, ExprKind::Str(_))) =>
                {
                    out.push(Diagnostic {
                        tool: "credcheck",
                        rule: "literal-credential",
                        severity: DiagSeverity::Error,
                        function: function.name.clone(),
                        module: module.path.clone(),
                        span: e.span,
                        cwe_hint: Some(798),
                        message: "literal credential passed to auth_check".into(),
                    });
                }
                ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                    let pair = [(lhs, rhs), (rhs, lhs)];
                    for (var_side, lit_side) in pair {
                        if let (ExprKind::Var(name), ExprKind::Str(lit)) =
                            (&var_side.kind, &lit_side.kind)
                        {
                            if Self::is_secret_name(name) && !lit.is_empty() {
                                out.push(Diagnostic {
                                    tool: "credcheck",
                                    rule: "secret-compared-to-literal",
                                    severity: DiagSeverity::Warning,
                                    function: function.name.clone(),
                                    module: module.path.clone(),
                                    span: e.span,
                                    cwe_hint: Some(798),
                                    message: format!(
                                        "secret `{name}` compared against a hardcoded literal"
                                    ),
                                });
                                break;
                            }
                        }
                    }
                }
                _ => {}
            });
        });
        out
    }
}

// Re-check that the Type import is used (buffer capacities come through it).
const _: fn(&Type) -> Option<usize> = Type::buffer_capacity;

/// CWE-22: a tainted path (parameter of an untrusted/endpoint function, or
/// data from an input intrinsic) flowing into `read_file`/`write_file`/
/// `open` without a validating branch on it.
pub struct PathTraversalChecker;

impl PathTraversalChecker {
    fn check_with(program: &Program, taint: &TaintReport) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            let entry_tainted = taint.tainted_entry_functions.contains(&function.name);
            // Variables holding raw input in this function.
            let mut tainted_vars: Vec<String> = if entry_tainted {
                function.params.iter().map(|p| p.name.clone()).collect()
            } else {
                Vec::new()
            };
            visit::walk_stmts(&function.body, &mut |s| {
                if let StmtKind::Let {
                    name,
                    init: Some(e),
                    ..
                } = &s.kind
                {
                    let mut from_source = false;
                    visit::walk_expr(e, &mut |sub| {
                        if let ExprKind::Call { callee, .. } = &sub.kind {
                            if Intrinsic::from_name(callee).is_some_and(|i| i.is_taint_source()) {
                                from_source = true;
                            }
                        }
                        if let ExprKind::Var(v) = &sub.kind {
                            if tainted_vars.contains(v) {
                                from_source = true;
                            }
                        }
                    });
                    if from_source {
                        tainted_vars.push(name.clone());
                    }
                }
            });
            // Validated names (mentioned in any branch condition).
            let mut validated: Vec<String> = Vec::new();
            visit::walk_stmts(&function.body, &mut |s| {
                let cond = match &s.kind {
                    StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => Some(cond),
                    _ => None,
                };
                if let Some(c) = cond {
                    visit::walk_expr(c, &mut |e| {
                        if let ExprKind::Var(v) = &e.kind {
                            validated.push(v.clone());
                        }
                        // strlen(p) in a guard counts as validating p.
                        if let ExprKind::Call { args, .. } = &e.kind {
                            for a in args {
                                if let ExprKind::Var(v) = &a.kind {
                                    validated.push(v.clone());
                                }
                            }
                        }
                    });
                }
            });
            visit::walk_exprs(&function.body, &mut |e| {
                let ExprKind::Call { callee, args } = &e.kind else {
                    return;
                };
                let is_fs = matches!(
                    Intrinsic::from_name(callee),
                    Some(Intrinsic::ReadFile | Intrinsic::WriteFile | Intrinsic::Open)
                );
                if !is_fs {
                    return;
                }
                if let Some(ExprKind::Var(path)) = args.first().map(|a| &a.kind) {
                    if tainted_vars.contains(path) && !validated.contains(path) {
                        out.push(Diagnostic {
                            tool: "pathcheck",
                            rule: "tainted-path",
                            severity: DiagSeverity::Warning,
                            function: function.name.clone(),
                            module: module.path.clone(),
                            span: e.span,
                            cwe_hint: Some(22),
                            message: format!(
                                "attacker-influenced path `{path}` reaches `{callee}`"
                            ),
                        });
                    }
                }
            });
        });
        out
    }
}

impl Checker for PathTraversalChecker {
    fn name(&self) -> &'static str {
        "pathcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        Self::check_with(program, &static_analysis::taint::analyze(program))
    }

    fn check_ctx(&self, cx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        Self::check_with(cx.program, &cx.taint)
    }
}

/// CWE-416 / CWE-401: `free(p)` followed by a later use of `p` (UAF), and
/// `alloc` results whose variable is never passed to `free` (leak).
pub struct AllocLifetimeChecker;

impl Checker for AllocLifetimeChecker {
    fn name(&self) -> &'static str {
        "alloccheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            // Source-order events on alloc'd variables.
            let mut allocated: Vec<String> = Vec::new();
            visit::walk_stmts(&function.body, &mut |s| {
                if let StmtKind::Let {
                    name,
                    init: Some(e),
                    ..
                } = &s.kind
                {
                    let mut from_alloc = false;
                    visit::walk_expr(e, &mut |sub| {
                        if let ExprKind::Call { callee, .. } = &sub.kind {
                            if Intrinsic::from_name(callee) == Some(Intrinsic::Alloc) {
                                from_alloc = true;
                            }
                        }
                    });
                    if from_alloc {
                        allocated.push(name.clone());
                    }
                }
            });
            if allocated.is_empty() {
                return;
            }
            // Order calls and uses.
            // (order, free-call span) per freed variable; the variable
            // mention inside the `free(p)` call itself is not a use.
            let mut freed_at: std::collections::BTreeMap<String, (usize, minilang::Span)> =
                std::collections::BTreeMap::new();
            let mut uses_after: Vec<(String, minilang::Span)> = Vec::new();
            let mut order = 0usize;
            visit::walk_exprs(&function.body, &mut |e| {
                order += 1;
                match &e.kind {
                    ExprKind::Call { callee, args }
                        if Intrinsic::from_name(callee) == Some(Intrinsic::Free) =>
                    {
                        if let Some(ExprKind::Var(v)) = args.first().map(|a| &a.kind) {
                            freed_at.entry(v.clone()).or_insert((order, e.span));
                        }
                    }
                    ExprKind::Var(v) => {
                        if let Some(&(at, free_span)) = freed_at.get(v) {
                            let inside_free_call =
                                e.span.start >= free_span.start && e.span.end <= free_span.end;
                            if order > at && !inside_free_call {
                                uses_after.push((v.clone(), e.span));
                            }
                        }
                    }
                    _ => {}
                }
            });
            for (var, span) in uses_after {
                out.push(Diagnostic {
                    tool: "alloccheck",
                    rule: "use-after-free",
                    severity: DiagSeverity::Error,
                    function: function.name.clone(),
                    module: module.path.clone(),
                    span,
                    cwe_hint: Some(416),
                    message: format!("`{var}` used after being freed"),
                });
            }
            for var in &allocated {
                if !freed_at.contains_key(var.as_str()) {
                    out.push(Diagnostic {
                        tool: "alloccheck",
                        rule: "memory-leak",
                        severity: DiagSeverity::Note,
                        function: function.name.clone(),
                        module: module.path.clone(),
                        span: function.span,
                        cwe_hint: Some(401),
                        message: format!("allocation `{var}` is never freed"),
                    });
                }
            }
        });
        out
    }
}

/// CWE-200: secret-looking data (secret-named variables, `getenv` results)
/// written to an attacker-observable channel (`send`).
pub struct InfoExposureChecker;

impl Checker for InfoExposureChecker {
    fn name(&self) -> &'static str {
        "leakcheck"
    }

    fn check(&self, program: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for_each_function(program, |module, function| {
            // Secret carriers: secret-named variables and getenv() results.
            let mut secrets: Vec<String> = Vec::new();
            visit::walk_stmts(&function.body, &mut |s| {
                if let StmtKind::Let { name, init, .. } = &s.kind {
                    let named_secret = HardcodedCredentialChecker::is_secret_name(name);
                    let from_env = init.as_ref().is_some_and(|e| {
                        let mut hit = false;
                        visit::walk_expr(e, &mut |sub| {
                            if let ExprKind::Call { callee, .. } = &sub.kind {
                                if Intrinsic::from_name(callee) == Some(Intrinsic::Getenv) {
                                    hit = true;
                                }
                            }
                        });
                        hit
                    });
                    if named_secret || from_env {
                        secrets.push(name.clone());
                    }
                }
            });
            if secrets.is_empty() {
                return;
            }
            visit::walk_exprs(&function.body, &mut |e| {
                let ExprKind::Call { callee, args } = &e.kind else {
                    return;
                };
                if Intrinsic::from_name(callee) != Some(Intrinsic::Send) {
                    return;
                }
                for a in args {
                    let mut leaked: Option<String> = None;
                    visit::walk_expr(a, &mut |sub| {
                        if let ExprKind::Var(v) = &sub.kind {
                            if secrets.contains(v) && leaked.is_none() {
                                leaked = Some(v.clone());
                            }
                        }
                    });
                    if let Some(var) = leaked {
                        out.push(Diagnostic {
                            tool: "leakcheck",
                            rule: "secret-on-channel",
                            severity: DiagSeverity::Warning,
                            function: function.name.clone(),
                            module: module.path.clone(),
                            span: e.span,
                            cwe_hint: Some(200),
                            message: format!("secret `{var}` written to a network channel"),
                        });
                        break;
                    }
                }
            });
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn run(checker: &dyn Checker, src: &str) -> Vec<Diagnostic> {
        let p = parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
        checker.check(&p)
    }

    #[test]
    fn bufcheck_flags_constant_oob_as_error() {
        let d = run(
            &BufferOverflowChecker,
            "fn f() { let b: int[4]; b[4] = 1; }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, DiagSeverity::Error);
        assert_eq!(d[0].rule, "index-oob");
        assert_eq!(d[0].cwe_hint, Some(121));
    }

    #[test]
    fn bufcheck_flags_unproved_as_warning() {
        let d = run(
            &BufferOverflowChecker,
            "fn f(i: int) { let b: int[4]; b[i] = 1; }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, DiagSeverity::Warning);
    }

    #[test]
    fn bufcheck_accepts_guarded_access() {
        let d = run(
            &BufferOverflowChecker,
            "fn f(i: int) { let b: int[4]; if i >= 0 && i < 4 { b[i] = 1; } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bufcheck_flags_strcpy_into_fixed_buffer() {
        let d = run(
            &BufferOverflowChecker,
            "fn f(s: str) { let b: str[16]; strcpy(b, s); }",
        );
        assert!(d.iter().any(|x| x.rule == "strcpy-fixed-buffer"));
    }

    #[test]
    fn fmtcheck_flags_variable_format() {
        let d = run(&FormatStringChecker, "fn f(s: str) { printf(s); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cwe_hint, Some(134));
        let clean = run(&FormatStringChecker, "fn f(s: str) { printf(\"%s\", s); }");
        assert!(clean.is_empty());
    }

    #[test]
    fn fmtcheck_checks_sprintf_second_arg() {
        let d = run(
            &FormatStringChecker,
            "fn f(b: str, s: str) { sprintf(b, s); }",
        );
        assert_eq!(d.len(), 1);
        let clean = run(
            &FormatStringChecker,
            "fn f(b: str, s: str) { sprintf(b, \"%s\", s); }",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn intcheck_flags_alloc_arith() {
        let d = run(
            &IntegerOverflowChecker,
            "fn f(n: int, m: int) { let p: str = alloc(n * m); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cwe_hint, Some(190));
    }

    #[test]
    fn intcheck_ignores_small_constant_arith() {
        let d = run(
            &IntegerOverflowChecker,
            "fn f(n: int) { let p: str = alloc(n + 16); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn intcheck_flags_index_arith() {
        let d = run(
            &IntegerOverflowChecker,
            "fn f(a: int, b: int) { let buf: int[64]; let x: int = buf[a * b]; }",
        );
        assert!(!d.is_empty());
    }

    #[test]
    fn inputcheck_flags_unvalidated_endpoint_param() {
        let d = run(
            &UntrustedInputChecker,
            "@endpoint(network) fn handle(req: str) { log_msg(req); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cwe_hint, Some(20));
    }

    #[test]
    fn inputcheck_accepts_validated_param() {
        let d = run(
            &UntrustedInputChecker,
            "@endpoint(network) fn handle(n: int) { if n > 0 && n < 100 { log_msg(\"ok\"); send(0, \"x\"); } }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn inputcheck_ignores_internal_functions() {
        let d = run(&UntrustedInputChecker, "fn internal(s: str) { exec(s); }");
        assert!(d.is_empty());
    }

    #[test]
    fn racecheck_flags_access_then_open() {
        let d = run(
            &ToctouChecker,
            "fn f(p: str) { if access(p) { let fd: int = open(p); } }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cwe_hint, Some(367));
    }

    #[test]
    fn racecheck_ignores_open_without_check() {
        let d = run(&ToctouChecker, "fn f(p: str) { let fd: int = open(p); }");
        assert!(d.is_empty());
    }

    #[test]
    fn racecheck_requires_same_variable() {
        let d = run(
            &ToctouChecker,
            "fn f(p: str, q: str) { if access(p) { let fd: int = open(q); } }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn deadstore_reports_notes() {
        let d = run(
            &DeadStoreChecker,
            "fn f() { let x: int = 1; x = 2; log_msg(\"k\"); }",
        );
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.severity == DiagSeverity::Note));
    }

    #[test]
    fn credcheck_flags_literal_in_auth() {
        let d = run(
            &HardcodedCredentialChecker,
            "fn f(u: str) { auth_check(u, \"hunter2\"); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, DiagSeverity::Error);
        assert_eq!(d[0].cwe_hint, Some(798));
    }

    #[test]
    fn credcheck_flags_secret_comparison() {
        let d = run(
            &HardcodedCredentialChecker,
            "fn f(password: str) -> bool { return password == \"letmein\"; }",
        );
        assert_eq!(d.len(), 1);
        let clean = run(
            &HardcodedCredentialChecker,
            "fn f(name: str) -> bool { return name == \"admin\"; }",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn pathcheck_flags_tainted_unvalidated_path() {
        let d = run(
            &PathTraversalChecker,
            "@endpoint(network) fn serve(req: str) { let data: str = read_file(req); send(0, data); }",
        );
        assert!(d.iter().any(|x| x.cwe_hint == Some(22)), "{d:?}");
    }

    #[test]
    fn pathcheck_accepts_validated_path() {
        let d = run(
            &PathTraversalChecker,
            "@endpoint(network) fn serve(req: str) {
                if strlen(req) > 64 { return; }
                let data: str = read_file(req);
                send(0, data);
            }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pathcheck_ignores_constant_paths() {
        let d = run(
            &PathTraversalChecker,
            "@endpoint(network) fn serve(req: str) { let data: str = read_file(\"/etc/motd\"); send(0, data); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn alloccheck_flags_use_after_free() {
        let d = run(
            &AllocLifetimeChecker,
            "fn f() { let p: str = alloc(16); free(p); log_msg(p); }",
        );
        assert!(d
            .iter()
            .any(|x| x.rule == "use-after-free" && x.cwe_hint == Some(416)));
    }

    #[test]
    fn alloccheck_flags_leak() {
        let d = run(
            &AllocLifetimeChecker,
            "fn f() { let p: str = alloc(16); log_msg(p); }",
        );
        assert!(d
            .iter()
            .any(|x| x.rule == "memory-leak" && x.cwe_hint == Some(401)));
    }

    #[test]
    fn alloccheck_accepts_balanced_lifetime() {
        let d = run(
            &AllocLifetimeChecker,
            "fn f() { let p: str = alloc(16); log_msg(p); free(p); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn leakcheck_flags_secret_on_channel() {
        let d = run(
            &InfoExposureChecker,
            "fn f() { let api_key: str = getenv(\"KEY\"); send(0, api_key); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cwe_hint, Some(200));
    }

    #[test]
    fn leakcheck_ignores_benign_sends() {
        let d = run(&InfoExposureChecker, "fn f(msg: str) { send(0, msg); }");
        assert!(d.is_empty());
    }

    #[test]
    fn all_checkers_is_complete() {
        let names: Vec<&str> = all_checkers().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "bufcheck",
                "fmtcheck",
                "intcheck",
                "inputcheck",
                "racecheck",
                "deadstore",
                "credcheck",
                "pathcheck",
                "alloccheck",
                "leakcheck"
            ]
        );
    }
}
