//! Diagnostics emitted by the checkers.

use minilang::Span;
use std::fmt;

/// How serious a finding is (tool-assigned, not ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagSeverity {
    /// Code-quality note (dead store, style).
    Note,
    /// Possible bug.
    Warning,
    /// Near-certain bug.
    Error,
}

/// One finding from one tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Emitting tool name (stable identifier, e.g. `"bufcheck"`).
    pub tool: &'static str,
    /// Rule identifier within the tool, e.g. `"index-unproved"`.
    pub rule: &'static str,
    pub severity: DiagSeverity,
    /// Function containing the finding.
    pub function: String,
    /// Module path containing the finding.
    pub module: String,
    pub span: Span,
    /// The CWE class this pattern suggests, when the tool can say.
    pub cwe_hint: Option<u32>,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            DiagSeverity::Note => "note",
            DiagSeverity::Warning => "warning",
            DiagSeverity::Error => "error",
        };
        write!(
            f,
            "{}:{} [{}/{}] {sev}: {} (in `{}`)",
            self.module, self.span, self.tool, self.rule, self.message, self.function
        )?;
        if let Some(cwe) = self.cwe_hint {
            write!(f, " [CWE-{cwe}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let d = Diagnostic {
            tool: "bufcheck",
            rule: "index-oob",
            severity: DiagSeverity::Error,
            function: "handle".into(),
            module: "src/net.c".into(),
            span: Span::new(0, 4, 12, 5),
            cwe_hint: Some(121),
            message: "index 8 outside buffer of 8".into(),
        };
        let text = d.to_string();
        assert!(text.contains("src/net.c:12:5"));
        assert!(text.contains("bufcheck/index-oob"));
        assert!(text.contains("error"));
        assert!(text.contains("CWE-121"));
        assert!(text.contains("`handle`"));
    }

    #[test]
    fn severity_ordering() {
        assert!(DiagSeverity::Error > DiagSeverity::Warning);
        assert!(DiagSeverity::Warning > DiagSeverity::Note);
    }
}
