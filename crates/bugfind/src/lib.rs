//! bugfind — lint-style bug-finding tools and a meta-tool combiner.
//!
//! §4.2 of the paper: *"We can also extract information from existing
//! bug-finding tools. … A simple way is to feed the bug reports or count of
//! bug types into the machine learning engine."* The cited tool families
//! (Lint for C, FindBugs/PMD/JLint-style pattern detectors, Rutar et al.'s
//! meta-tool that combines their output) are reproduced as ten checkers
//! over MiniLang plus [`meta::MetaTool`]:
//!
//! | checker | pattern | CWE hint |
//! |---|---|---|
//! | [`checkers::BufferOverflowChecker`] | index not provably inside the buffer | 121 |
//! | [`checkers::FormatStringChecker`] | non-literal format string reaching `printf`/`sprintf` | 134 |
//! | [`checkers::IntegerOverflowChecker`] | unchecked arithmetic sizing an allocation/index | 190 |
//! | [`checkers::UntrustedInputChecker`] | endpoint parameter used without a validation branch | 20 |
//! | [`checkers::ToctouChecker`] | `access(p)` then `open`/`read_file`/`write_file(p)` | 367 |
//! | [`checkers::DeadStoreChecker`] | value stored and never read | — |
//! | [`checkers::HardcodedCredentialChecker`] | literal secret in `auth_check` / password compare | 798 |
//! | [`checkers::PathTraversalChecker`] | tainted path reaching filesystem calls unvalidated | 22 |
//! | [`checkers::AllocLifetimeChecker`] | use-after-free and never-freed allocations | 416 / 401 |
//! | [`checkers::InfoExposureChecker`] | secret material written to a network channel | 200 |
//!
//! Checkers are deliberately *noisy in realistic ways* (dominance and
//! interval reasoning, not oracle knowledge), so the false-positive
//! behaviour the paper worries about ("the concern with many bug-finding
//! tools is a high false positive rate") is measurable against corpus
//! seeding.

pub mod checkers;
pub mod diagnostic;
pub mod meta;

pub use checkers::{all_checkers, Checker};
pub use diagnostic::{DiagSeverity, Diagnostic};
pub use meta::{MetaReport, MetaTool};
