//! The meta-tool (Rutar et al. [59]): run every checker, merge and
//! deduplicate the reports, and expose per-rule counts as features.

use crate::checkers::{all_checkers, Checker};
use crate::diagnostic::{DiagSeverity, Diagnostic};
use minilang::ast::Program;
use static_analysis::context::AnalysisContext;
use std::collections::BTreeMap;

/// Combined output of all tools over one program.
#[derive(Debug, Clone, Default)]
pub struct MetaReport {
    /// All diagnostics, merged, in (module, span) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Count per `tool/rule` key.
    pub by_rule: BTreeMap<String, usize>,
    /// Count per severity.
    pub by_severity: BTreeMap<DiagSeverity, usize>,
    /// Count per CWE hint.
    pub by_cwe: BTreeMap<u32, usize>,
    /// Sites (function + span) flagged by two or more distinct tools — the
    /// agreement signal Rutar et al. found more trustworthy than any single
    /// tool.
    pub multi_tool_sites: usize,
}

impl MetaReport {
    /// Total findings.
    pub fn total(&self) -> usize {
        self.diagnostics.len()
    }

    /// Findings with the given severity.
    pub fn count_severity(&self, severity: DiagSeverity) -> usize {
        self.by_severity.get(&severity).copied().unwrap_or(0)
    }

    /// Findings hinting at the given CWE id.
    pub fn count_cwe(&self, cwe: u32) -> usize {
        self.by_cwe.get(&cwe).copied().unwrap_or(0)
    }
}

/// Runs a set of checkers and merges their reports.
pub struct MetaTool {
    checkers: Vec<Box<dyn Checker + Send + Sync>>,
}

impl Default for MetaTool {
    fn default() -> Self {
        MetaTool {
            checkers: all_checkers(),
        }
    }
}

impl MetaTool {
    /// The full standard suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// A custom suite (for ablation: which tools matter?).
    pub fn with_checkers(checkers: Vec<Box<dyn Checker + Send + Sync>>) -> Self {
        MetaTool { checkers }
    }

    /// Tool names in run order.
    pub fn tool_names(&self) -> Vec<&'static str> {
        self.checkers.iter().map(|c| c.name()).collect()
    }

    /// Run every tool and merge.
    pub fn run(&self, program: &Program) -> MetaReport {
        self.merge(|c| c.check(program))
    }

    /// Run every tool over the shared [`AnalysisContext`] and merge. The
    /// report is identical to [`MetaTool::run`]'s, but the CFG/interval/
    /// taint-driven checkers reuse the context's precomputed results
    /// instead of re-deriving them.
    pub fn run_ctx(&self, cx: &AnalysisContext<'_>) -> MetaReport {
        self.merge(|c| c.check_ctx(cx))
    }

    fn merge(&self, run: impl Fn(&(dyn Checker + Send + Sync)) -> Vec<Diagnostic>) -> MetaReport {
        let mut report = MetaReport::default();
        // (function, span start) → set of tools that flagged it.
        let mut site_tools: BTreeMap<(String, usize), Vec<&'static str>> = BTreeMap::new();

        for checker in &self.checkers {
            for diag in run(checker.as_ref()) {
                *report
                    .by_rule
                    .entry(format!("{}/{}", diag.tool, diag.rule))
                    .or_insert(0) += 1;
                *report.by_severity.entry(diag.severity).or_insert(0) += 1;
                if let Some(cwe) = diag.cwe_hint {
                    *report.by_cwe.entry(cwe).or_insert(0) += 1;
                }
                let key = (diag.function.clone(), diag.span.start);
                let tools = site_tools.entry(key).or_default();
                if !tools.contains(&diag.tool) {
                    tools.push(diag.tool);
                }
                report.diagnostics.push(diag);
            }
        }
        report.multi_tool_sites = site_tools.values().filter(|t| t.len() >= 2).count();
        report
            .diagnostics
            .sort_by(|a, b| (&a.module, a.span.start).cmp(&(&b.module, b.span.start)));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program(src: &str) -> Program {
        parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    #[test]
    fn merges_reports_from_multiple_tools() {
        let p = program(
            "@endpoint(network)
             fn handle(req: str) {
                 let buf: str[32];
                 strcpy(buf, req);
                 printf(req);
             }",
        );
        let report = MetaTool::new().run(&p);
        // bufcheck (strcpy), fmtcheck (printf), inputcheck (req unvalidated ×2 uses → 1 per param)
        assert!(report.count_cwe(121) >= 1);
        assert!(report.count_cwe(134) >= 1);
        assert!(report.count_cwe(20) >= 1);
        assert!(report.total() >= 3);
        assert!(!report.by_rule.is_empty());
    }

    #[test]
    fn clean_program_is_quiet() {
        let p = program(
            "fn add(a: int, b: int) -> int { return a + b; }
             fn main_loop() { let total: int = add(1, 2); printf(\"%d\", total); }",
        );
        let report = MetaTool::new().run(&p);
        assert_eq!(report.total(), 0, "{:#?}", report.diagnostics);
    }

    #[test]
    fn multi_tool_agreement_detected() {
        // strcpy from an untrusted param into a fixed buffer: bufcheck flags
        // the strcpy site, inputcheck flags the same call site for the
        // unvalidated parameter.
        let p = program(
            "@endpoint(network)
             fn handle(req: str) { let buf: str[8]; strcpy(buf, req); }",
        );
        let report = MetaTool::new().run(&p);
        assert!(report.multi_tool_sites >= 1, "{:#?}", report.diagnostics);
    }

    #[test]
    fn diagnostics_sorted_by_location() {
        let p = program(
            "fn a() { let x: int = 1; x = 2; log_msg(\"s\"); }
             fn b() { let y: int = 3; y = 4; log_msg(\"t\"); }",
        );
        let report = MetaTool::new().run(&p);
        let starts: Vec<usize> = report.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn custom_suite_restricts_tools() {
        let p = program("fn f(s: str) { printf(s); let b: int[2]; b[5] = 1; }");
        let only_fmt =
            MetaTool::with_checkers(vec![Box::new(crate::checkers::FormatStringChecker)]);
        assert_eq!(only_fmt.tool_names(), vec!["fmtcheck"]);
        let report = only_fmt.run(&p);
        assert_eq!(report.count_cwe(134), 1);
        assert_eq!(report.count_cwe(121), 0);
    }

    #[test]
    fn context_run_matches_program_run() {
        // Exercises the three context-aware checkers: bufcheck (interval
        // analysis), deadstore (reaching defs + liveness), pathcheck
        // (interprocedural taint) — plus the AST-only rest.
        let p = program(
            "global limit: int = 4;
             @endpoint(network)
             fn serve(req: str) {
                 let buf: str[8];
                 strcpy(buf, req);
                 let data: str = read_file(req);
                 send(0, data);
                 printf(req);
             }
             fn helper(i: int) -> int {
                 let b: int[4];
                 let waste: int = 1;
                 waste = 2;
                 if i >= 0 && i < 4 { b[i] = 1; }
                 b[9] = 0;
                 return b[0];
             }",
        );
        let tool = MetaTool::new();
        let legacy = tool.run(&p);
        let cx = AnalysisContext::build(&p);
        let fused = tool.run_ctx(&cx);
        assert!(legacy.total() > 0);
        assert_eq!(legacy.diagnostics, fused.diagnostics);
        assert_eq!(legacy.by_rule, fused.by_rule);
        assert_eq!(legacy.by_severity, fused.by_severity);
        assert_eq!(legacy.by_cwe, fused.by_cwe);
        assert_eq!(legacy.multi_tool_sites, fused.multi_tool_sites);
    }

    #[test]
    fn severity_counts() {
        let p =
            program("fn f() { let b: int[2]; b[9] = 1; let z: int = 5; z = 6; log_msg(\"x\"); }");
        let report = MetaTool::new().run(&p);
        assert!(report.count_severity(DiagSeverity::Error) >= 1);
        assert!(report.count_severity(DiagSeverity::Note) >= 1);
    }
}
