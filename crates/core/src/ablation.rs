//! The unified-vs-single-metric ablation (EXP-UNIFIED).
//!
//! The paper's position (§4): *"a weighted aggregation of multiple metrics
//! can provide a more precise estimation of potential vulnerabilities"*
//! than any single noisy metric. This module trains the count regressor and
//! the headline hypothesis on (a) each feature family alone and (b) the
//! full unified vector, and compares cross-validated quality.

use crate::train::{Trainer, TrainerConfig};
use corpus::Corpus;
use std::fmt;

/// The feature families (testbed prefixes) that can stand alone.
pub const FAMILIES: [&str; 10] = [
    "loc.",
    "cyclomatic.",
    "halstead.",
    "counts.",
    "callgraph.",
    "dataflow.",
    "taint.",
    "smells.",
    "bugfind.",
    "rasq.",
];

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// `"unified"` or the family prefix.
    pub family: String,
    /// Cross-validated R² of the log-count regression.
    pub count_r2: f64,
    /// Cross-validated AUC of the CVSS>7 hypothesis (None if degenerate).
    pub high_sev_auc: Option<f64>,
    pub n_features: usize,
}

/// Full ablation result.
#[derive(Debug, Clone)]
pub struct AblationResult {
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// The unified row.
    pub fn unified(&self) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.family == "unified")
            .expect("unified row present")
    }

    /// Best single-family row by count R².
    pub fn best_single(&self) -> &AblationRow {
        self.rows
            .iter()
            .filter(|r| r.family != "unified")
            .max_by(|a, b| a.count_r2.partial_cmp(&b.count_r2).expect("finite"))
            .expect("at least one family row")
    }

    /// The LoC-only row — the de-facto metric the paper argues against.
    pub fn loc_only(&self) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.family == "loc.")
            .expect("loc row present")
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>10} {:>14} {:>10}",
            "features", "count R²", "CVSS>7 AUC", "width"
        )?;
        for row in &self.rows {
            let auc = row
                .high_sev_auc
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "—".to_string());
            writeln!(
                f,
                "{:<14} {:>10.3} {:>14} {:>10}",
                row.family, row.count_r2, auc, row.n_features
            )?;
        }
        Ok(())
    }
}

/// Run the ablation over a corpus.
pub fn run_ablation(corpus: &Corpus) -> AblationResult {
    let mut rows = Vec::new();
    let mut run_one = |family: Option<&str>| {
        let trainer = Trainer::with_config(TrainerConfig {
            feature_prefix: family.map(String::from),
            // §5.2's "filtering features that are irrelevant": keep the
            // regression honest when the app count is modest relative to
            // the unified vector's width.
            top_k_features: Some(8),
            ..Default::default()
        });
        let (_, report) = trainer.train_with_report(corpus);
        let high_sev_auc = report
            .hypothesis_reports
            .iter()
            .find(|h| h.hypothesis.name() == "cvss_gt_7")
            .and_then(|h| h.report.as_ref())
            .map(|r| r.auc);
        rows.push(AblationRow {
            family: family.unwrap_or("unified").to_string(),
            count_r2: report.count_cv.r_squared,
            high_sev_auc,
            n_features: report.n_features,
        });
    };
    run_one(None);
    for family in FAMILIES {
        run_one(Some(family));
    }
    AblationResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn ablation() -> &'static AblationResult {
        static RESULT: std::sync::OnceLock<AblationResult> = std::sync::OnceLock::new();
        RESULT.get_or_init(|| run_ablation(crate::testutil::shared_corpus()))
    }

    #[test]
    fn has_all_rows() {
        let result = ablation();
        assert_eq!(result.rows.len(), 1 + FAMILIES.len());
        assert_eq!(result.rows[0].family, "unified");
        assert!(result.unified().n_features >= result.loc_only().n_features);
    }

    #[test]
    fn unified_beats_loc_only() {
        // The paper's core claim, on a corpus where quality factors carry
        // most of the variance LoC cannot see.
        let result = ablation();
        assert!(
            result.unified().count_r2 > result.loc_only().count_r2,
            "unified {:.3} ≤ loc {:.3}\n{result}",
            result.unified().count_r2,
            result.loc_only().count_r2,
        );
    }

    #[test]
    fn display_renders_table() {
        let text = ablation().to_string();
        assert!(text.contains("unified"));
        assert!(text.contains("loc."));
        assert!(text.contains("count R²"));
    }
}
