//! Comparing programs and versions (§1, §5.3).
//!
//! *"In selecting between two library implementations for use in a web
//! service, our proposed metric would identify which is less likely to have
//! vulnerabilities"* — [`compare_programs`]. And the CI-gate use: *"the
//! classifier can give the developer an evaluation of, say, whether a code
//! change has raised or lowered the risk than the previous version of the
//! code"* — [`version_delta`].

use crate::metric::SecurityReport;
use crate::train::TrainedModel;
use minilang::ast::Program;
use std::fmt;

/// Outcome of an A/B comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub a: SecurityReport,
    pub b: SecurityReport,
}

impl Comparison {
    /// Name of the lower-risk candidate (ties go to `a`).
    pub fn preferred(&self) -> &str {
        if self.b.risk_score() < self.a.risk_score() {
            &self.b.app
        } else {
            &self.a.app
        }
    }

    /// Risk-score difference `b − a` (negative: b is safer).
    pub fn delta(&self) -> f64 {
        self.b.risk_score() - self.a.risk_score()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: risk {:.0}/100, predicted vulns {:.1}",
            self.a.app,
            self.a.risk_score(),
            self.a.predicted_vulnerabilities
        )?;
        writeln!(
            f,
            "{}: risk {:.0}/100, predicted vulns {:.1}",
            self.b.app,
            self.b.risk_score(),
            self.b.predicted_vulnerabilities
        )?;
        write!(f, "prefer `{}`", self.preferred())
    }
}

/// Evaluate two candidate programs and compare.
pub fn compare_programs(model: &TrainedModel, a: &Program, b: &Program) -> Comparison {
    Comparison {
        a: model.evaluate(a),
        b: model.evaluate(b),
    }
}

/// The version-gate verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskChange {
    Lowered,
    Unchanged,
    Raised,
}

/// Result of evaluating a code change.
#[derive(Debug, Clone)]
pub struct VersionDelta {
    pub before: SecurityReport,
    pub after: SecurityReport,
    /// Score delta (after − before).
    pub score_delta: f64,
    pub verdict: RiskChange,
}

impl fmt::Display for VersionDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self.verdict {
            RiskChange::Lowered => "LOWERED",
            RiskChange::Unchanged => "UNCHANGED",
            RiskChange::Raised => "RAISED",
        };
        write!(
            f,
            "risk {word}: {:.1} → {:.1} ({:+.1})",
            self.before.risk_score(),
            self.after.risk_score(),
            self.score_delta
        )
    }
}

/// Evaluate a code change: `before` vs `after` versions of one application.
/// Deltas within ±1 risk point count as unchanged (measurement noise).
pub fn version_delta(model: &TrainedModel, before: &Program, after: &Program) -> VersionDelta {
    let before_report = model.evaluate(before);
    let after_report = model.evaluate(after);
    let score_delta = after_report.risk_score() - before_report.risk_score();
    let verdict = if score_delta > 1.0 {
        RiskChange::Raised
    } else if score_delta < -1.0 {
        RiskChange::Lowered
    } else {
        RiskChange::Unchanged
    };
    VersionDelta {
        before: before_report,
        after: after_report,
        score_delta,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_model;
    use minilang::{parse_program, Dialect};

    fn model() -> &'static TrainedModel {
        shared_model()
    }

    fn program(name: &str, src: &str) -> Program {
        parse_program(name, Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    const RISKY: &str = "@endpoint(network) @priv(root)
        fn handle(req: str, n: int) {
            let buf: str[16];
            strcpy(buf, req);
            system(req);
            printf(req);
            buf[n] = req;
        }";

    const SAFE: &str = "@endpoint(network)
        fn handle(req: str, n: int) {
            if n < 0 || n > 15 { return; }
            if strlen(req) > 15 { return; }
            let buf: str[16];
            strncpy(buf, req, 15);
            log_msg(\"handled\");
        }";

    #[test]
    fn prefers_the_safer_library() {
        let m = model();
        let risky = program("libfast", RISKY);
        let safe = program("libsafe", SAFE);
        let cmp = compare_programs(m, &risky, &safe);
        assert_eq!(cmp.preferred(), "libsafe", "\n{cmp}");
        assert!(cmp.delta() < 0.0);
        // Symmetric call agrees.
        let cmp2 = compare_programs(m, &safe, &risky);
        assert_eq!(cmp2.preferred(), "libsafe");
    }

    #[test]
    fn hardening_change_lowers_risk() {
        let m = model();
        let before = program("app", RISKY);
        let after = program("app", SAFE);
        let delta = version_delta(m, &before, &after);
        assert_eq!(delta.verdict, RiskChange::Lowered, "\n{delta}");
        assert!(delta.score_delta < 0.0);
    }

    #[test]
    fn identity_change_is_unchanged() {
        let m = model();
        let v = program("app", SAFE);
        let delta = version_delta(m, &v, &v);
        assert_eq!(delta.verdict, RiskChange::Unchanged);
        assert_eq!(delta.score_delta, 0.0);
    }

    #[test]
    fn regression_change_raises_risk() {
        let m = model();
        let delta = version_delta(m, &program("app", SAFE), &program("app", RISKY));
        assert_eq!(delta.verdict, RiskChange::Raised, "\n{delta}");
    }

    #[test]
    fn display_formats() {
        let m = model();
        let cmp = compare_programs(m, &program("a", SAFE), &program("b", RISKY));
        assert!(cmp.to_string().contains("prefer"));
        let delta = version_delta(m, &program("a", SAFE), &program("a", RISKY));
        assert!(delta.to_string().contains("RAISED"));
    }
}
