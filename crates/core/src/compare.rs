//! Comparing programs and versions (§1, §5.3).
//!
//! *"In selecting between two library implementations for use in a web
//! service, our proposed metric would identify which is less likely to have
//! vulnerabilities"* — [`compare_programs`]. And the CI-gate use: *"the
//! classifier can give the developer an evaluation of, say, whether a code
//! change has raised or lowered the risk than the previous version of the
//! code"* — [`version_delta`].

use crate::explain::Explanation;
use crate::metric::SecurityReport;
use crate::score::CompiledModel;
use crate::testbed::Testbed;
use crate::train::TrainedModel;
use minilang::ast::Program;
use std::fmt;

/// How many per-feature deltas a comparison keeps.
const MAX_DELTAS: usize = 10;

/// One feature's exact risk-credit difference between two candidates.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDelta {
    pub feature: String,
    /// Risk credit in candidate `a` (see [`Explanation::risk_contributions`]).
    pub a: f64,
    /// Risk credit in candidate `b`.
    pub b: f64,
    /// `b − a` (positive: this property makes b riskier).
    pub delta: f64,
}

/// Outcome of an A/B comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub a: SecurityReport,
    pub b: SecurityReport,
    /// Attribution-backed per-feature deltas, largest |delta| first —
    /// "b is riskier because branch-density +0.31, taint-sinks +0.22".
    pub deltas: Vec<FeatureDelta>,
}

impl Comparison {
    /// Build a comparison from two full explanations: the reports carry
    /// over, and per-feature risk credits difference into ranked deltas
    /// (|delta| descending, ties by feature name, top ten kept). Used by
    /// both [`compare_programs`] and the serving `compare` endpoint, so
    /// wire responses equal the offline result exactly.
    pub fn from_explanations(a: &Explanation, b: &Explanation) -> Comparison {
        let credits_a = a.risk_contributions();
        let credits_b = b.risk_contributions();
        let mut deltas: Vec<FeatureDelta> = a
            .features
            .iter()
            .enumerate()
            .map(|(i, feature)| {
                let (ca, cb) = (credits_a[i], credits_b[i]);
                FeatureDelta {
                    feature: feature.clone(),
                    a: ca,
                    b: cb,
                    delta: cb - ca,
                }
            })
            .filter(|d| d.delta != 0.0)
            .collect();
        deltas.sort_by(|x, y| {
            y.delta
                .abs()
                .total_cmp(&x.delta.abs())
                .then_with(|| x.feature.cmp(&y.feature))
        });
        deltas.truncate(MAX_DELTAS);
        Comparison {
            a: a.report.clone(),
            b: b.report.clone(),
            deltas,
        }
    }

    /// Name of the lower-risk candidate (ties go to `a`).
    pub fn preferred(&self) -> &str {
        if self.b.risk_score() < self.a.risk_score() {
            &self.b.app
        } else {
            &self.a.app
        }
    }

    /// Risk-score difference `b − a` (negative: b is safer).
    pub fn delta(&self) -> f64 {
        self.b.risk_score() - self.a.risk_score()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: risk {:.0}/100, predicted vulns {:.1}",
            self.a.app,
            self.a.risk_score(),
            self.a.predicted_vulnerabilities
        )?;
        writeln!(
            f,
            "{}: risk {:.0}/100, predicted vulns {:.1}",
            self.b.app,
            self.b.risk_score(),
            self.b.predicted_vulnerabilities
        )?;
        write!(f, "prefer `{}`", self.preferred())?;
        if !self.deltas.is_empty() {
            let riskier = if self.delta() >= 0.0 {
                &self.b.app
            } else {
                &self.a.app
            };
            write!(f, "\n`{riskier}` is riskier because:")?;
            for d in &self.deltas {
                // Print the credit shift towards the riskier candidate so
                // the sign reads "how much this property hurts it".
                let towards = if self.delta() >= 0.0 {
                    d.delta
                } else {
                    -d.delta
                };
                write!(f, "\n  {:<28} {towards:+.3}", d.feature)?;
            }
        }
        Ok(())
    }
}

/// Evaluate two candidate programs and compare, with attribution-backed
/// per-feature deltas. Routed through the compiled batched engine; the
/// reports (and hence [`Comparison::preferred`] / [`Comparison::delta`])
/// are bit-identical to the old boxed per-program path.
pub fn compare_programs(model: &TrainedModel, a: &Program, b: &Program) -> Comparison {
    compare_programs_compiled(&model.compile(), a, b, 1)
}

/// [`compare_programs`] against an already-compiled model: both programs
/// are extracted and explained in one batch over `jobs` workers.
pub fn compare_programs_compiled(
    model: &CompiledModel,
    a: &Program,
    b: &Program,
    jobs: usize,
) -> Comparison {
    let testbed = Testbed::new();
    let apps = vec![
        (a.name.clone(), testbed.extract(a)),
        (b.name.clone(), testbed.extract(b)),
    ];
    let explained = model.explain_batch(&apps, jobs);
    Comparison::from_explanations(&explained[0], &explained[1])
}

/// The version-gate verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskChange {
    Lowered,
    Unchanged,
    Raised,
}

/// Result of evaluating a code change.
#[derive(Debug, Clone)]
pub struct VersionDelta {
    pub before: SecurityReport,
    pub after: SecurityReport,
    /// Score delta (after − before).
    pub score_delta: f64,
    pub verdict: RiskChange,
}

impl fmt::Display for VersionDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self.verdict {
            RiskChange::Lowered => "LOWERED",
            RiskChange::Unchanged => "UNCHANGED",
            RiskChange::Raised => "RAISED",
        };
        write!(
            f,
            "risk {word}: {:.1} → {:.1} ({:+.1})",
            self.before.risk_score(),
            self.after.risk_score(),
            self.score_delta
        )
    }
}

/// The shared gate verdict: deltas within ±1 risk point count as
/// unchanged (measurement noise). `gate`, `watch`, and [`version_delta`]
/// all classify through here so a CI failure means the same thing
/// everywhere.
pub fn classify_delta(score_delta: f64) -> RiskChange {
    if score_delta > 1.0 {
        RiskChange::Raised
    } else if score_delta < -1.0 {
        RiskChange::Lowered
    } else {
        RiskChange::Unchanged
    }
}

/// Evaluate a code change: `before` vs `after` versions of one application.
pub fn version_delta(model: &TrainedModel, before: &Program, after: &Program) -> VersionDelta {
    let before_report = model.evaluate(before);
    let after_report = model.evaluate(after);
    delta_from_reports(before_report, after_report)
}

/// [`version_delta`] against an already-compiled model (the CI-gate path:
/// load a `.clvy` file instead of retraining): both versions are extracted
/// and scored in one batch over `jobs` workers.
pub fn version_delta_compiled(
    model: &CompiledModel,
    before: &Program,
    after: &Program,
    jobs: usize,
) -> VersionDelta {
    let testbed = Testbed::new();
    let apps = vec![
        (before.name.clone(), testbed.extract(before)),
        (after.name.clone(), testbed.extract(after)),
    ];
    let mut reports = model.evaluate_batch(&apps, jobs).into_iter();
    let before_report = reports.next().expect("before report");
    let after_report = reports.next().expect("after report");
    delta_from_reports(before_report, after_report)
}

/// Assemble a [`VersionDelta`] from two finished reports — also the
/// `watch` daemon's entry point, which re-scores incrementally and only
/// has reports in hand.
pub fn delta_from_reports(before: SecurityReport, after: SecurityReport) -> VersionDelta {
    let score_delta = after.risk_score() - before.risk_score();
    VersionDelta {
        before,
        after,
        score_delta,
        verdict: classify_delta(score_delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_model;
    use minilang::{parse_program, Dialect};

    fn model() -> &'static TrainedModel {
        shared_model()
    }

    fn program(name: &str, src: &str) -> Program {
        parse_program(name, Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    const RISKY: &str = "@endpoint(network) @priv(root)
        fn handle(req: str, n: int) {
            let buf: str[16];
            strcpy(buf, req);
            system(req);
            printf(req);
            buf[n] = req;
        }";

    const SAFE: &str = "@endpoint(network)
        fn handle(req: str, n: int) {
            if n < 0 || n > 15 { return; }
            if strlen(req) > 15 { return; }
            let buf: str[16];
            strncpy(buf, req, 15);
            log_msg(\"handled\");
        }";

    #[test]
    fn prefers_the_safer_library() {
        let m = model();
        let risky = program("libfast", RISKY);
        let safe = program("libsafe", SAFE);
        let cmp = compare_programs(m, &risky, &safe);
        assert_eq!(cmp.preferred(), "libsafe", "\n{cmp}");
        assert!(cmp.delta() < 0.0);
        // Symmetric call agrees.
        let cmp2 = compare_programs(m, &safe, &risky);
        assert_eq!(cmp2.preferred(), "libsafe");
    }

    #[test]
    fn hardening_change_lowers_risk() {
        let m = model();
        let before = program("app", RISKY);
        let after = program("app", SAFE);
        let delta = version_delta(m, &before, &after);
        assert_eq!(delta.verdict, RiskChange::Lowered, "\n{delta}");
        assert!(delta.score_delta < 0.0);
    }

    #[test]
    fn identity_change_is_unchanged() {
        let m = model();
        let v = program("app", SAFE);
        let delta = version_delta(m, &v, &v);
        assert_eq!(delta.verdict, RiskChange::Unchanged);
        assert_eq!(delta.score_delta, 0.0);
    }

    #[test]
    fn regression_change_raises_risk() {
        let m = model();
        let delta = version_delta(m, &program("app", SAFE), &program("app", RISKY));
        assert_eq!(delta.verdict, RiskChange::Raised, "\n{delta}");
    }

    #[test]
    fn display_formats() {
        let m = model();
        let cmp = compare_programs(m, &program("a", SAFE), &program("b", RISKY));
        assert!(cmp.to_string().contains("prefer"));
        let delta = version_delta(m, &program("a", SAFE), &program("a", RISKY));
        assert!(delta.to_string().contains("RAISED"));
    }

    #[test]
    fn comparison_carries_attribution_deltas() {
        let m = model();
        let cmp = compare_programs(m, &program("a", SAFE), &program("b", RISKY));
        assert!(!cmp.deltas.is_empty(), "distinct programs must differ");
        assert!(cmp.deltas.len() <= 10);
        // Ranked by |delta| descending, and each delta is exact b − a.
        for pair in cmp.deltas.windows(2) {
            assert!(pair[0].delta.abs() >= pair[1].delta.abs());
        }
        for d in &cmp.deltas {
            assert_eq!(d.delta.to_bits(), (d.b - d.a).to_bits());
        }
        assert!(cmp.to_string().contains("riskier because"));
        // Identical inputs produce no deltas.
        let same = compare_programs(m, &program("x", SAFE), &program("x", SAFE));
        assert!(same.deltas.is_empty());
        assert!(!same.to_string().contains("riskier because"));
    }

    #[test]
    fn compiled_gate_matches_trained_gate() {
        let m = model();
        let compiled = m.compile();
        let before = program("app", SAFE);
        let after = program("app", RISKY);
        let trained = version_delta(m, &before, &after);
        let loaded = version_delta_compiled(&compiled, &before, &after, 2);
        assert_eq!(trained.verdict, loaded.verdict);
        assert_eq!(trained.score_delta.to_bits(), loaded.score_delta.to_bits());
        assert_eq!(
            trained.before.risk_score().to_bits(),
            loaded.before.risk_score().to_bits()
        );
    }

    #[test]
    fn classify_delta_thresholds() {
        assert_eq!(classify_delta(1.5), RiskChange::Raised);
        assert_eq!(classify_delta(1.0), RiskChange::Unchanged);
        assert_eq!(classify_delta(0.0), RiskChange::Unchanged);
        assert_eq!(classify_delta(-1.0), RiskChange::Unchanged);
        assert_eq!(classify_delta(-1.2), RiskChange::Lowered);
    }

    #[test]
    fn compiled_route_matches_trained_route() {
        let m = model();
        let compiled = m.compile();
        let a = program("a", SAFE);
        let b = program("b", RISKY);
        let via_model = compare_programs(m, &a, &b);
        let via_compiled = compare_programs_compiled(&compiled, &a, &b, 4);
        assert_eq!(via_model.preferred(), via_compiled.preferred());
        assert_eq!(via_model.delta().to_bits(), via_compiled.delta().to_bits());
        assert_eq!(via_model.deltas, via_compiled.deltas);
        // And the reports equal the boxed per-program reference bitwise.
        let boxed = m.evaluate(&a);
        assert_eq!(
            boxed.risk_score().to_bits(),
            via_compiled.a.risk_score().to_bits()
        );
    }
}
