//! Dynamic-trace features — the paper's proposed improvement (§5.3).
//!
//! *"One potential improvement is to collect dynamic traces; dynamic
//! properties of a program may further yield additional insights or
//! accuracy. For ease of deployment and integration with current
//! development tools, we focus on static analysis."*
//!
//! This module implements the improvement the paper deferred: every
//! endpoint function is executed concretely (via `minilang::interp`) with
//! attacker-controlled inputs, and the observed runtime behaviour becomes a
//! `dyn.*` feature family:
//!
//! * `dyn.oob_writes` — out-of-bounds writes that *actually happened*;
//! * `dyn.tainted_sink_calls` — attacker data that *actually reached* a
//!   dangerous sink (no static over-approximation);
//! * coverage and loop statistics that proxy input-handling complexity.
//!
//! The static testbed stays the default (matching the paper's deployment
//! argument); [`dynamic_features`] is opt-in via
//! [`extended_feature_vector`] and evaluated by the `exp_dynamic` bench.

use minilang::ast::Program;
use minilang::{interp, InterpConfig};
use static_analysis::FeatureVector;

/// Aggregated dynamic observations over a program's endpoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicSummary {
    /// Endpoints executed.
    pub endpoints_run: usize,
    pub statements: u64,
    pub oob_writes: u64,
    pub tainted_sink_calls: u64,
    pub uninitialized_reads: u64,
    pub max_loop_iterations: u64,
    /// Distinct functions covered across all endpoint runs.
    pub functions_covered: usize,
    /// Endpoints whose run exhausted the fuel budget (possible hangs).
    pub fuel_exhausted: usize,
    /// Mean branch bias across runs (0.5 = balanced).
    pub mean_branch_bias: f64,
}

/// Execute every endpoint with attacker inputs and aggregate the traces.
/// Programs without endpoints fall back to running every root function
/// (the library case: all public API functions are entry points).
pub fn run_endpoints(program: &Program, config: &InterpConfig) -> DynamicSummary {
    let mut entry_names: Vec<&str> = program
        .functions()
        .filter(|f| !f.endpoint_channels().is_empty())
        .map(|f| f.name.as_str())
        .collect();
    if entry_names.is_empty() {
        let callgraph = static_analysis::callgraph::CallGraph::build(program);
        let stats_roots: Vec<&str> = {
            // Roots: functions no one calls.
            let mut called: Vec<&str> = Vec::new();
            for f in &callgraph.functions {
                for callee in callgraph.callees(f) {
                    called.push(callee);
                }
            }
            program
                .functions()
                .map(|f| f.name.as_str())
                .filter(|n| !called.contains(n))
                .take(8)
                .collect()
        };
        entry_names = stats_roots;
    }

    let mut summary = DynamicSummary::default();
    let mut covered: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut bias_sum = 0.0;
    for name in &entry_names {
        let trace = interp::run_function(program, name, config);
        summary.endpoints_run += 1;
        summary.statements += trace.statements;
        summary.oob_writes += trace.oob_writes;
        summary.tainted_sink_calls += trace.tainted_sink_calls;
        summary.uninitialized_reads += trace.uninitialized_reads;
        summary.max_loop_iterations = summary.max_loop_iterations.max(trace.max_loop_iterations);
        summary.fuel_exhausted += trace.fuel_exhausted as usize;
        bias_sum += trace.branch_bias();
        covered.extend(trace.functions_called);
    }
    summary.functions_covered = covered.len();
    summary.mean_branch_bias = if summary.endpoints_run == 0 {
        0.5
    } else {
        bias_sum / summary.endpoints_run as f64
    };
    summary
}

/// The `dyn.*` feature family.
pub fn dynamic_features(program: &Program) -> FeatureVector {
    let summary = run_endpoints(program, &InterpConfig::default());
    let mut fv = FeatureVector::new();
    fv.set("dyn.endpoints_run", summary.endpoints_run as f64);
    fv.set("dyn.statements", summary.statements as f64);
    fv.set("dyn.oob_writes", summary.oob_writes as f64);
    fv.set("dyn.tainted_sink_calls", summary.tainted_sink_calls as f64);
    fv.set(
        "dyn.uninitialized_reads",
        summary.uninitialized_reads as f64,
    );
    fv.set(
        "dyn.max_loop_iterations",
        summary.max_loop_iterations as f64,
    );
    fv.set("dyn.functions_covered", summary.functions_covered as f64);
    fv.set("dyn.fuel_exhausted", summary.fuel_exhausted as f64);
    fv.set("dyn.branch_bias", summary.mean_branch_bias);
    let coverage = if program.function_count() == 0 {
        0.0
    } else {
        summary.functions_covered as f64 / program.function_count() as f64
    };
    fv.set("dyn.function_coverage", coverage);
    fv
}

/// The static testbed vector extended with the `dyn.*` family.
pub fn extended_feature_vector(program: &Program) -> FeatureVector {
    let mut fv = crate::testbed::Testbed::new().extract(program);
    fv.merge(&dynamic_features(program));
    fv
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program(src: &str) -> Program {
        parse_program("t", Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    #[test]
    fn endpoint_with_overflow_shows_dynamic_evidence() {
        let p = program(
            "@endpoint(network)
             fn handle(req: str) { let b: str[16]; strcpy(b, req); system(req); }",
        );
        let fv = dynamic_features(&p);
        assert!(fv.get_or_zero("dyn.oob_writes") >= 1.0);
        assert!(fv.get_or_zero("dyn.tainted_sink_calls") >= 1.0);
        assert_eq!(fv.get_or_zero("dyn.endpoints_run"), 1.0);
    }

    #[test]
    fn hardened_endpoint_is_dynamically_clean() {
        let p = program(
            "@endpoint(network)
             fn handle(req: str) {
                 if strlen(req) > 15 { return; }
                 let b: str[16];
                 strncpy(b, req, 15);
                 log_msg(b);
             }",
        );
        let fv = dynamic_features(&p);
        assert_eq!(fv.get_or_zero("dyn.oob_writes"), 0.0);
        assert_eq!(fv.get_or_zero("dyn.tainted_sink_calls"), 0.0);
    }

    #[test]
    fn library_without_endpoints_runs_roots() {
        let p = program(
            "fn api_entry(x: int) -> int { return helper(x); }
             fn helper(x: int) -> int { return x * 2; }",
        );
        let s = run_endpoints(&p, &InterpConfig::default());
        assert!(s.endpoints_run >= 1);
        assert!(s.functions_covered >= 2);
    }

    #[test]
    fn coverage_is_a_fraction() {
        let p = program(
            "@endpoint(network) fn handle(req: str) { worker(); }
             fn worker() { }
             fn never_called() { }",
        );
        let fv = dynamic_features(&p);
        let cov = fv.get_or_zero("dyn.function_coverage");
        assert!((0.0..=1.0).contains(&cov));
        assert!((cov - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn extended_vector_includes_both_families() {
        let p = program("@endpoint(network) fn handle(req: str) { log_msg(req); }");
        let fv = extended_feature_vector(&p);
        assert!(!fv.with_prefix("dyn.").is_empty());
        assert!(!fv.with_prefix("taint.").is_empty());
        assert!(fv.len() >= 80);
    }

    #[test]
    fn dynamic_features_are_deterministic() {
        let p = program(
            "@endpoint(network) fn handle(req: str, n: int) {
                 let acc: int = 0;
                 for i = 0; i < 9; i += 1 { acc += i; }
                 printf(\"%d\", acc);
             }",
        );
        assert_eq!(dynamic_features(&p), dynamic_features(&p));
    }
}
