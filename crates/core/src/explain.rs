//! The explanation engine (§5.3, DESIGN.md §12).
//!
//! The paper's deliverable is a *report*, not a probability: per-feature
//! weights are surfaced "so the developer can see which code properties
//! drive the predicted risk". This module upgrades that from static
//! model weights to **exact per-prediction attributions**: every model
//! in the compiled battery decomposes each score into a baseline plus
//! per-feature credits through [`secml::attribution`], with the bitwise
//! invariant `baseline + Σ contributions == score` and predictions
//! bit-identical to [`CompiledModel::evaluate_batch`]. On top sit
//! LEOPARD-style **function-level hotspots** (PAPERS.md): functions are
//! binned by decision complexity and ranked inside each bin by direct
//! vulnerability evidence (taint flows, out-of-bounds accesses,
//! uninitialized uses…), pointing auditors at the code that drives the
//! program-level prediction.
//!
//! [`CompiledModel::explain_batch`] is the batched entry point — it
//! shares the scoring engine's row preparation and runs every model's
//! blocked attribution kernel over the whole corpus, so explaining a
//! corpus costs about two scoring passes, not a per-row scalar walk.
//! [`CompiledModel::explain_features`] is the scalar reference path the
//! batched engine must match bit-for-bit.

use crate::hypothesis::Hypothesis;
use crate::metric::{assemble_report, SecurityReport};
use crate::score::CompiledModel;
use crate::testbed::Testbed;
use crate::train::SeverityBand;
use minilang::ast::Program;
use secml::dataset::ColMatrix;
use secml::{CompiledClassifier, CompiledRegressor, RowAttribution};
use static_analysis::{AnalysisContext, FeatureVector, FunctionContext};
use std::fmt;

/// One model's decomposed output for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelExplanation {
    /// What this model predicts: a hypothesis name (`cvss_gt_7`, …),
    /// `count`, or `severity <band>`.
    pub target: String,
    /// Score-space expectation of the empty query (model prior).
    pub baseline: f64,
    /// The decomposed score (pre-link margin for logistic/NB models).
    pub score: f64,
    /// The model's prediction, bit-identical to the scoring engine.
    pub prediction: f64,
    /// Per-feature credits aligned with [`Explanation::features`];
    /// `baseline + Σ contributions == score` bitwise.
    pub contributions: Vec<f64>,
}

/// A risky function surfaced by the LEOPARD-style ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    pub function: String,
    /// Direct vulnerability evidence score (unitless; higher is worse).
    pub score: f64,
    /// Decision-point cyclomatic complexity — the binning metric.
    pub complexity: usize,
    /// Complexity bin (`⌊log2(complexity + 1)⌋`): hotspots cover every
    /// populated bin, so simple-but-dirty functions still surface.
    pub bin: usize,
    /// Dominant evidence signals, largest first.
    pub signals: Vec<(String, f64)>,
}

/// The full explanation for one application: the ordinary report, every
/// model's exact attribution, and (when a program was available) the
/// function-level hotspots.
#[derive(Debug, Clone)]
pub struct Explanation {
    pub report: SecurityReport,
    /// Kept-feature names, in the contribution vectors' column order.
    pub features: Vec<String>,
    /// One entry per battery model: hypotheses in battery order, then
    /// the count model, then the severity-band models.
    pub models: Vec<ModelExplanation>,
    /// Ranked function hotspots; empty when only a feature vector was
    /// available (no program to analyze).
    pub hotspots: Vec<Hotspot>,
}

impl Explanation {
    /// The explanation for a named target, if present.
    pub fn model(&self, target: &str) -> Option<&ModelExplanation> {
        self.models.iter().find(|m| m.target == target)
    }

    /// Per-feature *risk* credit: the count model's contributions plus
    /// the high-severity hypothesis' margin credits — the two signals
    /// `risk_score` weighs heaviest. The absolute scale mixes log-count
    /// and log-odds units; comparisons use it for *ranking* deltas, not
    /// as a calibrated quantity.
    pub fn risk_contributions(&self) -> Vec<f64> {
        let mut credits = vec![0.0f64; self.features.len()];
        for target in ["count", &Hypothesis::AnyHighSeverity.name()] {
            if let Some(m) = self.model(target) {
                for (c, &v) in credits.iter_mut().zip(&m.contributions) {
                    *c += v;
                }
            }
        }
        credits
    }

    /// Feature names with their risk credits, largest |credit| first
    /// (ties broken by name for determinism).
    pub fn top_risk_features(&self, k: usize) -> Vec<(String, f64)> {
        let mut ranked: Vec<(String, f64)> = self
            .features
            .iter()
            .cloned()
            .zip(self.risk_contributions())
            .collect();
        ranked.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.report)?;
        writeln!(f, "  risk-driving properties (exact attribution):")?;
        for (name, credit) in self.top_risk_features(5) {
            writeln!(f, "    {name:<28} {credit:+.3}")?;
        }
        if !self.hotspots.is_empty() {
            writeln!(f, "  function hotspots:")?;
            for h in &self.hotspots {
                let signals: Vec<String> = h
                    .signals
                    .iter()
                    .take(3)
                    .map(|(name, v)| format!("{name} {v:+.2}"))
                    .collect();
                writeln!(
                    f,
                    "    {:<24} score {:.2} (complexity {}{})",
                    h.function,
                    h.score,
                    h.complexity,
                    if signals.is_empty() {
                        String::new()
                    } else {
                        format!("; {}", signals.join(", "))
                    }
                )?;
            }
        }
        Ok(())
    }
}

impl CompiledModel {
    /// Explain a whole corpus of `(app_name, feature_vector)` pairs, in
    /// input order. Row preparation and report assembly are shared with
    /// [`evaluate_batch`](CompiledModel::evaluate_batch); every model's
    /// blocked attribution kernel then replaces its scoring kernel, and
    /// the reports are rebuilt from the attribution predictions — which
    /// are bit-identical to the scoring kernels' outputs, so an
    /// explained report equals the scored report exactly, for any
    /// worker count.
    pub fn explain_batch(&self, apps: &[(String, FeatureVector)], jobs: usize) -> Vec<Explanation> {
        let jobs = if apps.len() < crate::score::PARALLEL_MIN_ROWS {
            // Same small-batch clamp as `evaluate_batch`: fan-out loses
            // below this row count, and outputs are jobs-invariant.
            1
        } else if jobs == 0 {
            pipeline::default_workers()
        } else {
            jobs
        };
        let rows = self.prepared_rows(apps, jobs);
        let matrix = ColMatrix::from_rows(&rows);

        enum Task<'a> {
            Classify(&'a CompiledClassifier),
            Regress(&'a CompiledRegressor),
        }
        let mut tasks: Vec<Task> = self
            .hypotheses
            .iter()
            .map(|(_, m)| Task::Classify(m))
            .collect();
        tasks.push(Task::Regress(&self.count_model));
        tasks.extend(self.severity_models.iter().map(|(_, m)| Task::Regress(m)));
        let attributions: Vec<Vec<RowAttribution>> =
            pipeline::parallel_map(jobs, &tasks, |_, task| match task {
                Task::Classify(model) => model.attribute_batch(&matrix),
                Task::Regress(model) => model.attribute_batch(&matrix),
            });

        pipeline::parallel_map(jobs, apps, |i, (name, fv)| {
            self.assemble_explanation(name.clone(), fv, &rows[i], |t| &attributions[t][i])
        })
    }

    /// The scalar reference: explain one pre-extracted feature vector
    /// through the per-row attribution walks. Bit-identical to the
    /// corresponding [`explain_batch`](CompiledModel::explain_batch)
    /// entry.
    pub fn explain_features(&self, app: String, fv: &FeatureVector) -> Explanation {
        let row = self.prepare_row(fv);
        let mut attributions: Vec<RowAttribution> = self
            .hypotheses
            .iter()
            .map(|(_, m)| m.attribute_row(&row))
            .collect();
        attributions.push(self.count_model.attribute_row(&row));
        attributions.extend(
            self.severity_models
                .iter()
                .map(|(_, m)| m.attribute_row(&row)),
        );
        self.assemble_explanation(app, fv, &row, |t| &attributions[t])
    }

    /// Explain a program: extract features, explain them, and attach the
    /// top-`top_k` function hotspots.
    pub fn explain_program(&self, program: &Program, top_k: usize, jobs: usize) -> Explanation {
        let fv = Testbed::new().extract(program);
        let mut explanation = self
            .explain_batch(&[(program.name.clone(), fv)], jobs)
            .pop()
            .expect("one app in, one explanation out");
        explanation.hotspots = rank_hotspots(program, top_k);
        explanation
    }

    /// Shared assembly: task index `t` runs over hypotheses (battery
    /// order), then the count model, then severity bands — the same
    /// order `evaluate_batch` fans out.
    fn assemble_explanation<'a>(
        &self,
        name: String,
        fv: &FeatureVector,
        row: &[f64],
        att: impl Fn(usize) -> &'a RowAttribution,
    ) -> Explanation {
        let n_hyp = self.hypotheses.len();
        let hypotheses: Vec<(Hypothesis, f64)> = self
            .hypotheses
            .iter()
            .enumerate()
            .map(|(t, (h, _))| (*h, att(t).prediction))
            .collect();
        // Same back-transforms as `evaluate_batch`; the attribution
        // predictions are bit-identical to the scoring kernels', so the
        // assembled report is too.
        let predicted = 10f64.powf(att(n_hyp).prediction).max(0.0);
        let severity: Vec<(SeverityBand, f64)> = self
            .severity_models
            .iter()
            .enumerate()
            .map(|(s, (band, _))| {
                (
                    *band,
                    (10f64.powf(att(n_hyp + 1 + s).prediction) - 1.0).max(0.0),
                )
            })
            .collect();

        let mut models = Vec::with_capacity(n_hyp + 1 + self.severity_models.len());
        for (t, (h, _)) in self.hypotheses.iter().enumerate() {
            models.push(model_explanation(h.name(), att(t)));
        }
        models.push(model_explanation("count".to_string(), att(n_hyp)));
        for (s, (band, _)) in self.severity_models.iter().enumerate() {
            models.push(model_explanation(
                format!("severity {}", band.name()),
                att(n_hyp + 1 + s),
            ));
        }

        let report = assemble_report(
            name,
            fv,
            row,
            &self.feature_names,
            &self.risk_weights,
            hypotheses,
            predicted,
            severity,
        );
        Explanation {
            report,
            features: self.feature_names.clone(),
            models,
            hotspots: Vec::new(),
        }
    }
}

fn model_explanation(target: String, att: &RowAttribution) -> ModelExplanation {
    ModelExplanation {
        target,
        baseline: att.baseline,
        score: att.score,
        prediction: att.prediction,
        contributions: att.contributions.clone(),
    }
}

/// Evidence weights for the hotspot score: direct witnesses of
/// exploitable structure dominate (exposed taint, out-of-bounds writes),
/// softer signals (dead stores, capped path search) tie-break.
const HOTSPOT_SIGNALS: &[(&str, f64)] = &[
    ("taint.exposed_flows", 1.0),
    ("taint.flows", 0.6),
    ("bounds.out_of_bounds", 0.5),
    ("dataflow.uninitialized_uses", 0.3),
    ("bounds.unknown", 0.15),
    ("dataflow.dead_stores", 0.1),
    ("paths.capped", 0.1),
    ("dead_code", 0.1),
];

fn function_signals(fc: &FunctionContext, flows: usize, exposed: usize) -> Vec<(String, f64)> {
    let raw: &[(&str, f64)] = &[
        ("taint.exposed_flows", exposed as f64),
        ("taint.flows", flows as f64),
        ("bounds.out_of_bounds", fc.bounds.out_of_bounds as f64),
        (
            "dataflow.uninitialized_uses",
            fc.dataflow.possibly_uninitialized_uses as f64,
        ),
        ("bounds.unknown", fc.bounds.unknown as f64),
        ("dataflow.dead_stores", fc.dataflow.dead_stores as f64),
        ("paths.capped", fc.paths.capped as usize as f64),
        ("dead_code", fc.has_dead_code as usize as f64),
    ];
    let mut signals: Vec<(String, f64)> = raw
        .iter()
        .filter(|(_, v)| *v > 0.0)
        .map(|(name, v)| {
            let weight = HOTSPOT_SIGNALS
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, w)| *w)
                .expect("signal is registered");
            (name.to_string(), weight * v)
        })
        .collect();
    signals.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    signals
}

/// Rank a program's functions LEOPARD-style: bin by decision complexity,
/// score each function by its direct vulnerability evidence, take the
/// top function of every populated bin (complex bins first), then fill
/// remaining slots by global score. Deterministic: ties break by score
/// descending, then function name ascending.
pub fn rank_hotspots(program: &Program, top_k: usize) -> Vec<Hotspot> {
    let cx = AnalysisContext::build(program);
    rank_hotspots_cx(&cx, top_k)
}

/// [`rank_hotspots`] over an already-built analysis context.
pub fn rank_hotspots_cx(cx: &AnalysisContext, top_k: usize) -> Vec<Hotspot> {
    // Per-function taint flow counts from the shared interprocedural pass.
    let mut spots: Vec<Hotspot> = cx
        .functions
        .iter()
        .map(|fc| {
            let name = &fc.function.name;
            let flows = cx.taint.flows.iter().filter(|f| &f.function == name);
            let (mut total, mut exposed) = (0usize, 0usize);
            for flow in flows {
                total += 1;
                exposed += flow.via_parameters as usize;
            }
            let signals = function_signals(fc, total, exposed);
            let score: f64 = signals.iter().map(|(_, v)| v).sum();
            let complexity = fc.decision_complexity;
            Hotspot {
                function: name.clone(),
                score,
                complexity,
                bin: (complexity + 1).ilog2() as usize,
                signals,
            }
        })
        .filter(|h| h.score > 0.0)
        .collect();
    spots.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.function.cmp(&b.function))
    });

    // LEOPARD coverage: the top function of each populated bin first
    // (most complex bins first), then the global score order.
    let mut picked: Vec<Hotspot> = Vec::new();
    let mut bins_seen: Vec<usize> = Vec::new();
    let mut leaders: Vec<&Hotspot> = Vec::new();
    for spot in &spots {
        if !bins_seen.contains(&spot.bin) {
            bins_seen.push(spot.bin);
            leaders.push(spot);
        }
    }
    leaders.sort_by(|a, b| {
        b.bin
            .cmp(&a.bin)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.function.cmp(&b.function))
    });
    for leader in leaders {
        if picked.len() < top_k {
            picked.push(leader.clone());
        }
    }
    for spot in &spots {
        if picked.len() >= top_k {
            break;
        }
        if !picked.iter().any(|p| p.function == spot.function) {
            picked.push(spot.clone());
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use crate::testutil::{shared_corpus, shared_model};
    use minilang::{parse_program, Dialect};
    use secml::attribution::fold;

    fn corpus_features() -> Vec<(String, FeatureVector)> {
        let corpus = shared_corpus();
        corpus
            .apps
            .iter()
            .take(6)
            .map(|app| (app.spec.name.clone(), Testbed::new().extract(&app.program)))
            .collect()
    }

    #[test]
    fn explanations_decompose_every_model_exactly() {
        let compiled = shared_model().compile();
        let apps = corpus_features();
        let explained = compiled.explain_batch(&apps, 1);
        assert_eq!(explained.len(), apps.len());
        for e in &explained {
            assert_eq!(
                e.models.len(),
                compiled.n_hypotheses() + 1 + e.report.severity_counts.len()
            );
            for m in &e.models {
                assert_eq!(m.contributions.len(), e.features.len(), "{}", m.target);
                assert_eq!(
                    fold(m.baseline, &m.contributions).to_bits(),
                    m.score.to_bits(),
                    "{} does not fold to its score",
                    m.target
                );
            }
        }
    }

    #[test]
    fn explained_reports_equal_scored_reports_bitwise() {
        let compiled = shared_model().compile();
        let apps = corpus_features();
        let scored = compiled.evaluate_batch(&apps, 2);
        let explained = compiled.explain_batch(&apps, 2);
        for (s, e) in scored.iter().zip(&explained) {
            assert_eq!(s.app, e.report.app);
            assert_eq!(
                s.predicted_vulnerabilities.to_bits(),
                e.report.predicted_vulnerabilities.to_bits()
            );
            for ((h1, p1), (h2, p2)) in s.hypotheses.iter().zip(&e.report.hypotheses) {
                assert_eq!(h1, h2);
                assert_eq!(p1.to_bits(), p2.to_bits());
            }
            assert_eq!(s.risk_score().to_bits(), e.report.risk_score().to_bits());
        }
    }

    #[test]
    fn batch_matches_scalar_reference_bitwise() {
        let compiled = shared_model().compile();
        let apps = corpus_features();
        let batch = compiled.explain_batch(&apps, 4);
        for ((name, fv), b) in apps.iter().zip(&batch) {
            let scalar = compiled.explain_features(name.clone(), fv);
            assert_eq!(scalar.features, b.features);
            assert_eq!(scalar.models, b.models);
        }
    }

    #[test]
    fn hotspots_surface_the_risky_function() {
        let program = parse_program(
            "app",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(network)
                 fn risky(req: str, n: int) {
                     let buf: str[8];
                     strcpy(buf, req);
                     buf[n] = req;
                     system(req);
                 }
                 fn tidy(x: int) {
                     let y: int = x + 1;
                     log_msg(y);
                 }"
                .into(),
            )],
        )
        .unwrap();
        let hotspots = rank_hotspots(&program, 5);
        assert!(!hotspots.is_empty());
        assert_eq!(hotspots[0].function, "risky");
        assert!(hotspots[0].score > 0.0);
        assert!(!hotspots[0].signals.is_empty());
        // The tidy function has no evidence and must not appear.
        assert!(hotspots.iter().all(|h| h.function != "tidy"));
    }

    #[test]
    fn explain_program_attaches_hotspots_and_renders() {
        let corpus = shared_corpus();
        let compiled = shared_model().compile();
        let e = compiled.explain_program(&corpus.apps[0].program, 3, 1);
        assert!(e.hotspots.len() <= 3);
        let text = e.to_string();
        assert!(text.contains("risk-driving properties"));
    }
}
