//! Corpus-scale feature extraction through the pipeline engine.
//!
//! Every sweep over many applications — training, experiments, benches,
//! the CLI — goes through [`extract_corpus`] instead of calling
//! [`Testbed::extract`] in a loop: the pipeline fans programs across
//! worker threads, serves unchanged programs from the content-addressed
//! feature cache, survives a panicking collector, and reports per-stage
//! timings and throughput.

use crate::testbed::Testbed;
use corpus::{Corpus, GeneratedApp};
use pipeline::{JobSpec, Pipeline, PipelineConfig, PipelineReport};
use static_analysis::FeatureVector;

/// Features for a set of applications, in input order, plus the run
/// report.
#[derive(Debug, Clone)]
pub struct CorpusFeatures {
    /// `(application name, feature vector)` in the order requested.
    pub features: Vec<(String, FeatureVector)>,
    pub report: PipelineReport,
}

impl CorpusFeatures {
    /// Look up one application's vector by name.
    pub fn get(&self, name: &str) -> Option<&FeatureVector> {
        self.features
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, fv)| fv)
    }
}

/// One pipeline job per application.
pub fn corpus_jobs<'a>(apps: &[&'a GeneratedApp]) -> Vec<JobSpec<'a>> {
    apps.iter()
        .map(|app| JobSpec::new(&app.program, &app.files))
        .collect()
}

/// Extract the full testbed vector for every app in the corpus.
pub fn extract_corpus(corpus: &Corpus, config: PipelineConfig) -> CorpusFeatures {
    extract_apps(corpus.apps.iter(), config)
}

/// Extract the full testbed vector for any selection of applications.
pub fn extract_apps<'a>(
    apps: impl IntoIterator<Item = &'a GeneratedApp>,
    config: PipelineConfig,
) -> CorpusFeatures {
    let mut engine = Pipeline::with_config(Testbed::new(), config);
    extract_apps_with(&mut engine, apps)
}

/// Extract through a caller-owned engine — reusing one engine across
/// batches keeps its in-memory cache warm (the incremental path for
/// iterative experiments).
pub fn extract_apps_with<'a>(
    engine: &mut Pipeline<Testbed>,
    apps: impl IntoIterator<Item = &'a GeneratedApp>,
) -> CorpusFeatures {
    let apps: Vec<&GeneratedApp> = apps.into_iter().collect();
    let jobs = corpus_jobs(&apps);
    let batch = engine.run(&jobs);
    CorpusFeatures {
        features: batch
            .outputs
            .into_iter()
            .map(|o| (o.name, o.features))
            .collect(),
        report: batch.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::CacheMode;

    #[test]
    fn pipeline_matches_direct_testbed_extraction() {
        let corpus = crate::testutil::shared_corpus();
        let testbed = Testbed::new();
        let out = extract_corpus(
            corpus,
            PipelineConfig::default().jobs(4).cache(CacheMode::Off),
        );
        assert_eq!(out.features.len(), corpus.apps.len());
        assert!(out.report.errors.is_empty());
        for (app, (name, fv)) in corpus.apps.iter().zip(&out.features) {
            assert_eq!(&app.spec.name, name);
            assert_eq!(&testbed.extract(&app.program), fv);
        }
    }

    #[test]
    fn warm_engine_serves_from_cache() {
        let corpus = crate::testutil::shared_corpus();
        let mut engine = Pipeline::new(Testbed::new());
        let cold = extract_apps_with(&mut engine, &corpus.apps);
        let warm = extract_apps_with(&mut engine, &corpus.apps);
        assert_eq!(cold.report.cache_hits, 0);
        assert_eq!(warm.report.cache_hits, corpus.apps.len());
        assert_eq!(cold.features, warm.features);
    }
}
