//! File-granularity vulnerable-file prediction (the Shin et al. study [61]).
//!
//! §4: *"They are able to predict 80 % of the vulnerable files, by taking
//! into account most basic properties of code files such as LoC, number of
//! functions, number of declarations, lines of preprocessed code, number of
//! branches, and number of input and output arguments to a function."*
//!
//! The same study runs here at module granularity: each source file of the
//! corpus becomes one row with exactly that basic feature family, labelled
//! by whether the file contains a seeded vulnerability; a classifier is
//! cross-validated and its recall at a matched inspection budget reported.

use corpus::Corpus;
use secml::eval::{roc_auc, stratified_folds};
use secml::forest::{ForestConfig, RandomForest};
use secml::preprocess::Standardizer;
use secml::Classifier;
use static_analysis::{counts, cyclomatic, loc};

/// One file row.
#[derive(Debug, Clone)]
pub struct FileRow {
    pub app: String,
    pub path: String,
    pub features: Vec<f64>,
    pub vulnerable: bool,
}

/// The Shin-style basic feature names, in column order.
pub const FILE_FEATURES: [&str; 9] = [
    "loc",
    "comment_lines",
    "functions",
    "declarations",
    "branches",
    "loops",
    "parameters",
    "returns",
    "cyclomatic_total",
];

/// Build the file-level dataset from a corpus.
pub fn file_dataset(corpus: &Corpus) -> Vec<FileRow> {
    let mut rows = Vec::new();
    for app in &corpus.apps {
        for module in &app.program.modules {
            let lc = loc::count_module(module);
            let sc = counts::module_counts(module);
            let cc = cyclomatic::module_complexity(module);
            let vulnerable = app.seeded.iter().any(|s| s.module == module.path);
            rows.push(FileRow {
                app: app.spec.name.clone(),
                path: module.path.clone(),
                features: vec![
                    lc.code as f64,
                    lc.comment as f64,
                    sc.functions as f64,
                    sc.declarations as f64,
                    sc.branches as f64,
                    sc.loops as f64,
                    sc.parameters as f64,
                    sc.returns as f64,
                    cc.total as f64,
                ],
                vulnerable,
            });
        }
    }
    rows
}

/// Study outcome.
#[derive(Debug, Clone, Copy)]
pub struct FileStudyResult {
    pub files: usize,
    pub vulnerable_files: usize,
    /// Cross-validated ROC-AUC of the file classifier.
    pub auc: f64,
    /// Recall when inspecting the top-ranked `budget_fraction` of files.
    pub recall_at_budget: f64,
    /// Fraction of files inspected.
    pub budget_fraction: f64,
}

/// Run the Shin replication: k-fold CV with held-out scoring, then measure
/// what fraction of vulnerable files is caught when developers inspect the
/// highest-risk `budget_fraction` of files.
pub fn run_file_study(corpus: &Corpus, budget_fraction: f64) -> FileStudyResult {
    let rows = file_dataset(corpus);
    let labels: Vec<usize> = rows.iter().map(|r| r.vulnerable as usize).collect();
    let mut x: Vec<Vec<f64>> = rows.iter().map(|r| r.features.clone()).collect();
    let standardizer = Standardizer::fit(&x);
    standardizer.transform(&mut x);

    // Held-out scores via stratified folds.
    let mut scores = vec![0.0f64; rows.len()];
    for fold in stratified_folds(&labels, 5) {
        let in_fold: std::collections::HashSet<usize> = fold.iter().copied().collect();
        let train_idx: Vec<usize> = (0..rows.len()).filter(|i| !in_fold.contains(i)).collect();
        let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| x[i].clone()).collect();
        let ty: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let mut model = RandomForest::with_config(ForestConfig {
            n_trees: 25,
            ..Default::default()
        });
        model.fit(&tx, &ty);
        for &i in &fold {
            scores[i] = model.predict_proba(&x[i]);
        }
    }

    // Inspection budget: rank by score, take the top fraction.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let budget = ((rows.len() as f64 * budget_fraction).ceil() as usize).min(rows.len());
    let caught = order[..budget].iter().filter(|&&i| labels[i] == 1).count();
    let vulnerable_files = labels.iter().sum::<usize>();

    FileStudyResult {
        files: rows.len(),
        vulnerable_files,
        auc: roc_auc(&labels, &scores),
        recall_at_budget: if vulnerable_files == 0 {
            0.0
        } else {
            caught as f64 / vulnerable_files as f64
        },
        budget_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn corpus() -> &'static Corpus {
        crate::testutil::shared_corpus()
    }

    #[test]
    fn dataset_has_one_row_per_file() {
        let c = corpus();
        let rows = file_dataset(c);
        let total_modules: usize = c.apps.iter().map(|a| a.program.modules.len()).sum();
        assert_eq!(rows.len(), total_modules);
        assert!(rows.iter().all(|r| r.features.len() == FILE_FEATURES.len()));
        assert!(rows.iter().any(|r| r.vulnerable));
        assert!(rows.iter().any(|r| !r.vulnerable));
    }

    #[test]
    fn labels_match_seeds() {
        let c = corpus();
        let rows = file_dataset(c);
        for app in &c.apps {
            for seed in &app.seeded {
                let row = rows
                    .iter()
                    .find(|r| r.app == app.spec.name && r.path == seed.module)
                    .expect("seeded module has a row");
                assert!(row.vulnerable);
            }
        }
    }

    #[test]
    fn classifier_beats_chance() {
        let result = run_file_study(corpus(), 0.3);
        assert!(
            result.auc > 0.55,
            "AUC {} is no better than chance",
            result.auc
        );
        assert!(result.files > 20);
    }

    #[test]
    fn recall_grows_with_budget() {
        let c = corpus();
        let small = run_file_study(c, 0.1);
        let large = run_file_study(c, 0.8);
        assert!(large.recall_at_budget >= small.recall_at_budget);
        assert!(
            large.recall_at_budget > 0.7,
            "recall {}",
            large.recall_at_budget
        );
    }

    #[test]
    fn full_budget_catches_everything() {
        let result = run_file_study(corpus(), 1.0);
        assert_eq!(result.recall_at_budget, 1.0);
    }
}
