//! The hypothesis battery (§5.2).
//!
//! *"We use machine learning to train a series of hypotheses on the sample
//! applications: For example, how many high-severity vulnerabilities exist
//! in an application (i.e., CVSS > 7)? Does an application contain any
//! vulnerabilities that are accessible from the network (i.e., Attack
//! Vectors = N)? Does an application suffer any stack-based buffer overflow
//! (i.e., CWE = 121)?"*
//!
//! Each [`Hypothesis`] is a binary question answered from an application's
//! CVE history ([`cvedb::AppHistory`]); the trainer fits one classifier per
//! hypothesis.

use cvedb::{AppHistory, Cwe, CweCategory};
use std::fmt;

/// A binary question about an application's vulnerability history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hypothesis {
    /// Any vulnerability with CVSS > 7 (the paper's worked example H1).
    AnyHighSeverity,
    /// Any vulnerability with attack vector = network (H2).
    AnyNetworkAttackable,
    /// Any vulnerability of the given weakness class (H3 is CWE-121).
    AnyCwe(Cwe),
    /// Any vulnerability in the given weakness category.
    AnyCategory(CweCategory),
    /// Strictly more than `n` total reported vulnerabilities.
    MoreThan(usize),
    /// Mean CVSS score above the threshold (tenths, to stay `Eq`).
    MeanScoreAbove(u32),
}

impl Hypothesis {
    /// Stable short name for tables and reports.
    pub fn name(&self) -> String {
        match self {
            Hypothesis::AnyHighSeverity => "cvss_gt_7".to_string(),
            Hypothesis::AnyNetworkAttackable => "av_network".to_string(),
            Hypothesis::AnyCwe(cwe) => format!("cwe_{}", cwe.id()),
            Hypothesis::AnyCategory(cat) => format!("cat_{}", cat.name()),
            Hypothesis::MoreThan(n) => format!("more_than_{n}"),
            Hypothesis::MeanScoreAbove(tenths) => format!("mean_score_gt_{tenths}"),
        }
    }

    /// Human-readable question, quoting the paper's phrasing where it has one.
    pub fn question(&self) -> String {
        match self {
            Hypothesis::AnyHighSeverity => {
                "does the application have any high-severity vulnerability (CVSS > 7)?".into()
            }
            Hypothesis::AnyNetworkAttackable => {
                "is any vulnerability accessible from the network (AV = N)?".into()
            }
            Hypothesis::AnyCwe(cwe) => {
                format!("does the application suffer any {} ({})?", cwe.name(), cwe)
            }
            Hypothesis::AnyCategory(cat) => {
                format!("any vulnerability in the {cat} category?")
            }
            Hypothesis::MoreThan(n) => format!("more than {n} reported vulnerabilities?"),
            Hypothesis::MeanScoreAbove(tenths) => {
                format!("mean CVSS score above {:.1}?", *tenths as f64 / 10.0)
            }
        }
    }

    /// The ground-truth label for one application history.
    pub fn label(&self, history: &AppHistory) -> usize {
        let truth = match self {
            Hypothesis::AnyHighSeverity => history.high_severity > 0,
            Hypothesis::AnyNetworkAttackable => history.network_attackable > 0,
            Hypothesis::AnyCwe(cwe) => history.cwe_count(*cwe) > 0,
            Hypothesis::AnyCategory(cat) => history.category_count(*cat) > 0,
            Hypothesis::MoreThan(n) => history.total > *n,
            Hypothesis::MeanScoreAbove(tenths) => history.mean_score > *tenths as f64 / 10.0,
        };
        truth as usize
    }
}

impl fmt::Display for Hypothesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The standard battery: the paper's three worked examples plus per-category
/// questions and count/severity bins.
pub fn standard_battery() -> Vec<Hypothesis> {
    let mut battery = vec![
        Hypothesis::AnyHighSeverity,
        Hypothesis::AnyNetworkAttackable,
        Hypothesis::AnyCwe(Cwe::StackBufferOverflow),
        Hypothesis::AnyCwe(Cwe::FormatString),
        Hypothesis::AnyCwe(Cwe::CommandInjection),
        Hypothesis::AnyCwe(Cwe::ImproperInputValidation),
        Hypothesis::MoreThan(10),
        Hypothesis::MeanScoreAbove(70),
    ];
    for cat in CweCategory::ALL {
        battery.push(Hypothesis::AnyCategory(cat));
    }
    battery
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvedb::{CveDatabase, CveId, CveRecord, Date};

    fn history(vectors: &[(&str, Cwe)]) -> AppHistory {
        let mut db = CveDatabase::new();
        for (i, (vector, cwe)) in vectors.iter().enumerate() {
            db.insert(CveRecord {
                id: CveId::new(2016, i as u32 + 1),
                app: "app".into(),
                published: Date::new(2016, 1 + (i as u8 % 12), 1).unwrap(),
                cwe: *cwe,
                cvss3: Some(vector.parse().unwrap()),
                cvss2: None,
                description: String::new(),
            });
        }
        db.history("app").unwrap()
    }

    const CRIT: &str = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"; // 9.8
    const LOCAL_LOW: &str = "CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"; // low

    #[test]
    fn worked_examples_label_correctly() {
        let h = history(&[
            (CRIT, Cwe::StackBufferOverflow),
            (LOCAL_LOW, Cwe::InfoExposure),
        ]);
        assert_eq!(Hypothesis::AnyHighSeverity.label(&h), 1);
        assert_eq!(Hypothesis::AnyNetworkAttackable.label(&h), 1);
        assert_eq!(Hypothesis::AnyCwe(Cwe::StackBufferOverflow).label(&h), 1);
        assert_eq!(Hypothesis::AnyCwe(Cwe::FormatString).label(&h), 0);
        assert_eq!(
            Hypothesis::AnyCategory(CweCategory::MemorySafety).label(&h),
            1
        );
        assert_eq!(
            Hypothesis::AnyCategory(CweCategory::Concurrency).label(&h),
            0
        );
    }

    #[test]
    fn clean_history_labels_zero() {
        let h = history(&[(LOCAL_LOW, Cwe::InfoExposure)]);
        assert_eq!(Hypothesis::AnyHighSeverity.label(&h), 0);
        assert_eq!(Hypothesis::AnyNetworkAttackable.label(&h), 0);
        assert_eq!(Hypothesis::MoreThan(10).label(&h), 0);
    }

    #[test]
    fn count_and_mean_thresholds() {
        let many: Vec<(&str, Cwe)> = (0..12).map(|_| (CRIT, Cwe::FormatString)).collect();
        let h = history(&many);
        assert_eq!(Hypothesis::MoreThan(10).label(&h), 1);
        assert_eq!(Hypothesis::MoreThan(12).label(&h), 0);
        assert_eq!(Hypothesis::MeanScoreAbove(70).label(&h), 1);
        assert_eq!(Hypothesis::MeanScoreAbove(99).label(&h), 0);
    }

    #[test]
    fn names_are_stable_and_unique() {
        let battery = standard_battery();
        let mut names: Vec<String> = battery.iter().map(|h| h.name()).collect();
        assert!(names.contains(&"cvss_gt_7".to_string()));
        assert!(names.contains(&"av_network".to_string()));
        assert!(names.contains(&"cwe_121".to_string()));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), battery.len());
    }

    #[test]
    fn questions_mention_the_key_terms() {
        assert!(Hypothesis::AnyHighSeverity.question().contains("CVSS > 7"));
        assert!(Hypothesis::AnyNetworkAttackable
            .question()
            .contains("AV = N"));
        assert!(Hypothesis::AnyCwe(Cwe::StackBufferOverflow)
            .question()
            .contains("CWE-121"));
    }
}
