//! Incremental function-level extraction.
//!
//! The pipeline's content-addressed cache (`pipeline::cache`) is
//! whole-program: touch one function and the program's single entry is
//! gone. Real codebases change one function at a time — the paper's
//! continuous-evaluation use (gating code changes in CI) re-scores after
//! exactly such edits — so this module pushes the cache down to
//! **per-function fingerprints**:
//!
//! * each function is keyed by FNV-1a over its raw source slice, salted
//!   with the collector-set fingerprint, schema versions, dialects, start
//!   column and the program's global-variable names (everything a
//!   function's analysis results can observe besides its own text);
//! * the cached value is the function's [`FnPayload`] — the dataflow /
//!   interval / bounds / path fixpoints that dominate extraction cost —
//!   plus a memo of its interprocedural taint passes ([`IntraResult`]s
//!   keyed by the summary digest of its callees);
//! * on re-extraction only invalidated entries are rebuilt; the
//!   cross-function phases (taint fixpoint, attack-surface features)
//!   re-run over the cached summaries with callgraph-edge invalidation
//!   for free — a changed callee changes its callers' summary digests, so
//!   stale memo entries simply stop matching.
//!
//! The merged [`FeatureVector`] is **bit-identical** to a from-scratch
//! build: the cheap structural half of every function context
//! ([`FnStructure`]) is rebuilt from the current AST each time, cached
//! payloads are pure functions of the fingerprinted inputs, and the final
//! merge goes through literally the same `Testbed::run_families` path.
//! `tests/tests/incremental_engine.rs` asserts this under seeded random
//! edits; the `incremental_throughput` bench races it against scratch.

use crate::testbed::Testbed;
use minilang::ast::{Function, Module, Program};
use minilang::{Dialect, Span};
use pipeline::fn_cache::FnStore;
use pipeline::fnv::Fnv1a;
use pipeline::Extractor as _;
use static_analysis::context::{
    standard_path_config, AnalysisContext, FnPayload, FnStructure, FunctionContext, ProgramSymbols,
};
use static_analysis::taint::{self, IntraMemo, IntraResult};
use static_analysis::FeatureVector;
use std::sync::{Arc, Mutex};

/// Version of the incremental entry layout. Participates in every
/// function key, so bumping it invalidates all resident entries at once.
/// Bump whenever [`FnPayload`], the taint memo, or the fingerprint scheme
/// changes shape or meaning.
pub const INCR_SCHEMA_VERSION: u64 = 1;

/// Retained taint memo entries per function. Phase 1 of the fixpoint
/// probes two (clean/dirty) per summary-digest generation and the later
/// phases one or two more; stable programs settle on a handful of
/// distinct keys, so a small cap bounds memory without hurting hit rate.
const TAINT_MEMO_CAP: usize = 16;

/// What one [`IncrementalTestbed::extract_stats`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrReport {
    /// Functions in the program.
    pub functions: usize,
    /// Functions served from resident entries (fixpoints skipped).
    pub hits: u64,
    /// Functions with no resident entry.
    pub misses: u64,
    /// Functions fully re-analyzed this call (== `misses`: every miss is
    /// rebuilt and cached; kept separate because the serve counters
    /// report them as distinct facts).
    pub rebuilt: u64,
}

/// One resident per-function entry: the owned expensive analysis results
/// plus the cross-extraction taint memo. Shared (`Arc`) between the store
/// and in-flight extractions.
#[derive(Debug)]
struct FnEntry {
    payload: FnPayload,
    /// Memoized intraprocedural taint passes. Spans inside each result
    /// are absolute for the function position recorded in its `anchor`;
    /// they are rebased to the function's current position on every hit.
    taint_memo: Mutex<Vec<TaintMemoEntry>>,
}

#[derive(Debug)]
struct TaintMemoEntry {
    params_tainted: bool,
    digest: u64,
    /// The function's span when this result was captured.
    anchor: Span,
    result: IntraResult,
}

/// A [`Testbed`] with a resident per-function entry store: repeat
/// extractions of edited programs only re-analyze changed functions.
/// Intended to live across many extractions (a serve shard, the `watch`
/// daemon, an editor loop); for one-shot batch work the plain pipeline
/// cache is the right tool.
pub struct IncrementalTestbed {
    testbed: Testbed,
    /// Worker threads for per-function context construction (1 = inline,
    /// 0 = one per core). Vectors are identical for any value.
    fn_jobs: usize,
    store: FnStore<FnEntry>,
}

impl Default for IncrementalTestbed {
    fn default() -> Self {
        IncrementalTestbed {
            testbed: Testbed::new(),
            fn_jobs: 1,
            store: FnStore::new(0),
        }
    }
}

impl IncrementalTestbed {
    /// The standard collector set with a default-capacity entry store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fan per-function rebuilds out over `jobs` worker threads (0 = one
    /// per core). Cached entries make this matter less, but a cold first
    /// extraction is exactly as parallel as `Testbed::with_fn_jobs`.
    pub fn with_fn_jobs(mut self, jobs: usize) -> Self {
        self.fn_jobs = jobs;
        self
    }

    /// Bound the entry store to `capacity` functions (0 = default).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.store = FnStore::new(capacity);
        self
    }

    /// The wrapped testbed (collector set, timings).
    pub fn testbed(&self) -> &Testbed {
        &self.testbed
    }

    /// Resident per-function entries.
    pub fn resident_entries(&self) -> usize {
        self.store.len()
    }

    /// Extract, reusing every resident entry whose fingerprint matches.
    pub fn extract(&mut self, program: &Program) -> FeatureVector {
        self.extract_stats(program).0
    }

    /// [`extract`](IncrementalTestbed::extract) plus the hit/miss
    /// accounting for this call.
    pub fn extract_stats(&mut self, program: &Program) -> (FeatureVector, IncrReport) {
        let salt = self.salt(program);
        let symbols = ProgramSymbols::intern(program);

        // Probe the store sequentially (it needs `&mut`), collecting the
        // per-function job list in `program.functions()` order.
        let funcs: Vec<(&Module, &Function)> = program
            .modules
            .iter()
            .flat_map(|m| m.functions.iter().map(move |f| (m, f)))
            .collect();
        self.store.take_counters();
        let cached: Vec<Option<Arc<FnEntry>>> = funcs
            .iter()
            .map(|&(m, f)| self.store.get(function_key(salt, m, f)))
            .collect();
        let counters = self.store.take_counters();

        // Rebuild: cheap structure for everyone, fixpoints only for
        // misses. Entries are independent, so this fans out like
        // `Testbed::with_fn_jobs` — order-preserving merge keeps the
        // vector bit-identical for any worker count.
        let indices: Vec<usize> = (0..funcs.len()).collect();
        let build = |i: usize| -> FunctionContext<'_> {
            let (_, f) = funcs[i];
            let structure = FnStructure::build(f, &symbols);
            match &cached[i] {
                Some(entry) => structure.assemble(entry.payload.clone()),
                None => {
                    let payload = structure.compute_payload(&standard_path_config());
                    structure.assemble(payload)
                }
            }
        };
        let functions: Vec<FunctionContext<'_>> = if self.fn_jobs == 1 {
            indices.iter().map(|&i| build(i)).collect()
        } else {
            let workers = if self.fn_jobs == 0 {
                pipeline::default_workers()
            } else {
                self.fn_jobs
            };
            pipeline::parallel_map(workers, &indices, |_, &i| build(i))
        };

        // Cache the rebuilt payloads and line every function up with its
        // (new or resident) entry for the taint memo.
        let entries: Vec<Arc<FnEntry>> = funcs
            .iter()
            .zip(&cached)
            .zip(&functions)
            .map(|((&(m, f), slot), fcx)| match slot {
                Some(entry) => Arc::clone(entry),
                None => {
                    let entry = Arc::new(FnEntry {
                        payload: fcx.payload(),
                        taint_memo: Mutex::new(Vec::new()),
                    });
                    self.store
                        .insert(function_key(salt, m, f), Arc::clone(&entry));
                    entry
                }
            })
            .collect();

        // The interprocedural fixpoint re-runs every extraction (it is
        // where cross-function invalidation lives), but its per-function
        // passes are memoized on the entries.
        let memo = SessionMemo {
            entries: &entries,
            spans: funcs.iter().map(|&(_, f)| f.span).collect(),
        };
        let taint = taint::analyze_contexts_memo(program, &functions, &memo);

        let cx = AnalysisContext::assemble(program, symbols, functions, taint);
        let fv = self.testbed.run_families(program, &cx);
        let report = IncrReport {
            functions: funcs.len(),
            hits: counters.hits,
            misses: counters.misses,
            rebuilt: counters.misses,
        };
        (fv, report)
    }

    /// The program-wide key salt: everything outside a function's own
    /// text that its cached results can observe. Global *names* suffice
    /// for the globals part — per-function analyses see globals only as
    /// a name-membership set (`FnStructure`'s `global_set`), never their
    /// initializers.
    fn salt(&self, program: &Program) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(INCR_SCHEMA_VERSION);
        h.write_u64(self.testbed.fingerprint());
        h.write_u64(dialect_code(program.dialect));
        for g in program.modules.iter().flat_map(|m| m.globals.iter()) {
            h.write_str(&g.name);
        }
        h.finish()
    }
}

/// Fingerprint of one function: the raw source slice its AST was parsed
/// from (annotations sit *outside* the span, so they are hashed from
/// their parsed form), the module dialect that drove the parse, and the
/// start column (spans on the function's first line embed it, and cached
/// taint spans are rebased assuming it is unchanged).
fn function_key(salt: u64, module: &Module, f: &Function) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(salt);
    h.write_u64(dialect_code(module.dialect));
    let text = module
        .source
        .get(f.span.start..f.span.end)
        .unwrap_or_default();
    h.write_u64((f.span.end - f.span.start) as u64);
    h.write_str(text);
    h.write_u64(f.span.col as u64);
    for a in &f.annotations {
        h.write_str(&format!("{a:?}"));
    }
    h.finish()
}

fn dialect_code(d: Dialect) -> u64 {
    match d {
        Dialect::C => 1,
        Dialect::Cpp => 2,
        Dialect::Python => 3,
        Dialect::Java => 4,
    }
}

/// The [`IntraMemo`] for one extraction: per-function entries aligned to
/// the context slice, plus each function's *current* span so cached spans
/// can be rebased. A function whose text is unchanged but which moved
/// within its file shifts every internal span by a constant byte/line
/// delta (columns are pinned by keying the start column), so translating
/// the cached sink spans reproduces a fresh run exactly.
struct SessionMemo<'a> {
    entries: &'a [Arc<FnEntry>],
    spans: Vec<Span>,
}

impl IntraMemo for SessionMemo<'_> {
    fn get(&self, idx: usize, params_tainted: bool, digest: u64) -> Option<IntraResult> {
        let memo = self.entries[idx].taint_memo.lock().unwrap();
        let hit = memo
            .iter()
            .find(|e| e.params_tainted == params_tainted && e.digest == digest)?;
        Some(rebase(&hit.result, hit.anchor, self.spans[idx]))
    }

    fn put(&self, idx: usize, params_tainted: bool, digest: u64, result: &IntraResult) {
        let mut memo = self.entries[idx].taint_memo.lock().unwrap();
        if memo.len() >= TAINT_MEMO_CAP {
            memo.remove(0);
        }
        memo.push(TaintMemoEntry {
            params_tainted,
            digest,
            anchor: self.spans[idx],
            result: result.clone(),
        });
    }
}

/// Translate a cached result from the function position it was captured
/// at (`anchor`) to the function's current position.
fn rebase(result: &IntraResult, anchor: Span, current: Span) -> IntraResult {
    let mut out = result.clone();
    if anchor.start == current.start && anchor.line == current.line {
        return out;
    }
    let delta_byte = current.start as i64 - anchor.start as i64;
    let delta_line = current.line as i64 - anchor.line as i64;
    for (_, span, _) in &mut out.sink_hits {
        span.start = (span.start as i64 + delta_byte) as usize;
        span.end = (span.end as i64 + delta_byte) as usize;
        span.line = (span.line as i64 + delta_line) as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program(src: &str) -> Program {
        parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    const BASE: &str = "@endpoint(network)
fn handle(req: str) { helper(req); }
fn helper(s: str) { exec(s); }
fn pure(a: int, b: int) -> int { return a + b; }";

    #[test]
    fn cold_extraction_matches_scratch() {
        let p = program(BASE);
        let scratch = Testbed::new().extract(&p);
        let mut engine = IncrementalTestbed::new();
        let (fv, report) = engine.extract_stats(&p);
        assert_eq!(fv, scratch);
        assert_eq!(report.functions, 3);
        assert_eq!(report.hits, 0);
        assert_eq!(report.misses, 3);
    }

    #[test]
    fn warm_repeat_hits_every_function() {
        let p = program(BASE);
        let mut engine = IncrementalTestbed::new();
        let cold = engine.extract(&p);
        let (warm, report) = engine.extract_stats(&p);
        assert_eq!(cold, warm);
        assert_eq!(report.hits, 3);
        assert_eq!(report.rebuilt, 0);
    }

    #[test]
    fn edit_rebuilds_only_the_changed_function() {
        let mut engine = IncrementalTestbed::new();
        engine.extract(&program(BASE));
        let edited = program(&BASE.replace("return a + b;", "return a * b;"));
        let (fv, report) = engine.extract_stats(&edited);
        assert_eq!(report.hits, 2);
        assert_eq!(report.rebuilt, 1);
        assert_eq!(fv, Testbed::new().extract(&edited));
    }

    #[test]
    fn cross_function_taint_edit_stays_exact() {
        let mut engine = IncrementalTestbed::new();
        engine.extract(&program(BASE));
        // Make `helper` sink-free: its summary changes, so `handle`'s
        // cached taint passes must be invalidated via the digest even
        // though `handle`'s text (and payload entry) is untouched.
        let edited = program(&BASE.replace("exec(s);", "log_msg(s);"));
        let (fv, report) = engine.extract_stats(&edited);
        assert_eq!(report.rebuilt, 1, "only helper's entry is invalid");
        assert_eq!(fv, Testbed::new().extract(&edited));
    }

    #[test]
    fn code_motion_rebases_taint_spans() {
        let mut engine = IncrementalTestbed::new();
        engine.extract(&program(BASE));
        // Prepend a global: every function moves down, nothing else
        // changes. Flow spans must track the new positions exactly.
        let moved = program(&format!("global limit: int = 3;\n\n{BASE}"));
        let (fv, report) = engine.extract_stats(&moved);
        // The salt changed (new global name), so entries miss wholesale —
        // but the point of this test is exactness after motion, which the
        // taint memo path must also survive:
        let mut engine2 = IncrementalTestbed::new();
        engine2.extract(&program(&format!("global limit: int = 3;\n{BASE}")));
        let (fv2, _) = engine2.extract_stats(&moved);
        assert_eq!(fv, Testbed::new().extract(&moved));
        assert_eq!(fv2, fv);
        assert_eq!(report.functions, 3);
    }

    #[test]
    fn global_rename_invalidates_wholesale() {
        let src = "global cap: int = 4;
fn f(i: int) -> int { if i < cap { return 1; } return 0; }";
        let mut engine = IncrementalTestbed::new();
        engine.extract(&program(src));
        let renamed = program(
            &src.replace("global cap", "global top")
                .replace("< cap", "< top"),
        );
        let (fv, report) = engine.extract_stats(&renamed);
        assert_eq!(report.hits, 0, "salt covers global names");
        assert_eq!(fv, Testbed::new().extract(&renamed));
    }

    #[test]
    fn fn_jobs_do_not_change_the_vector() {
        let p = program(BASE);
        let sequential = IncrementalTestbed::new().extract(&p);
        let parallel = IncrementalTestbed::new().with_fn_jobs(4).extract(&p);
        assert_eq!(sequential, parallel);
    }
}
