//! Clairvoyant — a predictive security-metric framework.
//!
//! Reproduction of *"A Clairvoyant Approach to Evaluating Software
//! (In)Security"* (Jain, Tsai & Porter, HotOS '17). The paper proposes a
//! "grand, unified model" that predicts the risk, severity and
//! classification of future vulnerabilities in a program by correlating
//! statically-collected code properties with CVE-database ground truth via
//! machine learning.
//!
//! The pipeline (the paper's Figure 4):
//!
//! ```text
//!  CVE database ──select apps──▶ labels (CVSS>7? AV:N? CWE-121? …)
//!  applications ──[testbed]────▶ feature vectors (LoC, complexity, …)
//!                      │
//!                      ▼
//!        secml training with stratified cross-validation
//!                      │
//!                      ▼
//!            TrainedModel (inspectable weights)
//!                      │
//!                      ▼
//!   SecurityReport for any new codebase: predicted vulnerability count,
//!   per-hypothesis risk, top contributing code properties, action hints
//! ```
//!
//! # Quick start
//!
//! ```no_run
//! use clairvoyant::prelude::*;
//!
//! // 1. Generate the training corpus (offline stand-in for CVE + GitHub).
//! let corpus = Corpus::generate(&CorpusConfig::small(12, 42));
//!
//! // 2. Train the unified model.
//! let model = Trainer::new().train(&corpus);
//!
//! // 3. Evaluate any program.
//! let app = &corpus.apps[0].program;
//! let report = model.evaluate(app);
//! println!("{report}");
//! ```

pub mod ablation;
pub mod compare;
pub mod dynamic;
pub mod explain;
pub mod extract;
pub mod files;
pub mod hypothesis;
pub mod incremental;
pub mod longitudinal;
pub mod metric;
pub mod report;
pub mod score;
pub mod studies;
pub mod survey;
pub mod system;
pub mod testbed;
pub mod train;

pub use compare::{
    classify_delta, compare_programs, compare_programs_compiled, delta_from_reports, version_delta,
    version_delta_compiled, Comparison, FeatureDelta, RiskChange, VersionDelta,
};
pub use explain::{rank_hotspots, Explanation, Hotspot, ModelExplanation};
pub use extract::{extract_corpus, CorpusFeatures};
pub use hypothesis::{standard_battery, Hypothesis};
pub use incremental::{IncrReport, IncrementalTestbed};
pub use longitudinal::{EpochOutcome, LongitudinalConfig, LongitudinalReport};
pub use metric::SecurityReport;
// Re-export the engine types so downstream users configure extraction
// without naming the pipeline crate.
pub use pipeline::{CacheMode, PipelineConfig, PipelineReport};
pub use score::{CompiledModel, PreparedBatch};
pub use system::{
    evaluate_system, evaluate_system_compiled, Component, Containment, Exposure, SystemReport,
    SystemSpec,
};
pub use testbed::Testbed;
pub use train::{Learner, TrainedModel, Trainer, TrainingReport};

/// Convenient re-exports for examples and benches.
pub mod prelude {
    pub use crate::compare::{compare_programs, compare_programs_compiled, version_delta};
    pub use crate::explain::{rank_hotspots, Explanation, Hotspot, ModelExplanation};
    pub use crate::extract::{extract_corpus, CorpusFeatures};
    pub use crate::hypothesis::{standard_battery, Hypothesis};
    pub use crate::metric::SecurityReport;
    pub use crate::score::{CompiledModel, PreparedBatch};
    pub use crate::testbed::Testbed;
    pub use crate::train::{Learner, TrainedModel, Trainer, TrainerConfig};
    pub use corpus::{Corpus, CorpusConfig};
    pub use minilang::{parse_program, Dialect};
    pub use pipeline::{CacheMode, PipelineConfig, PipelineReport};
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared, lazily-built test fixtures: corpus generation plus training
    //! is the expensive part of this crate's tests, so every test module
    //! reuses one mid-size corpus and one trained model.

    use crate::train::{TrainedModel, Trainer, TrainerConfig};
    use corpus::{Corpus, CorpusConfig};
    use std::sync::OnceLock;

    pub fn shared_corpus() -> &'static Corpus {
        static CORPUS: OnceLock<Corpus> = OnceLock::new();
        CORPUS.get_or_init(|| {
            let mut config = CorpusConfig::small(24, 20177);
            config.language_mix = [18, 2, 2, 2];
            config.max_kloc = 2.0;
            Corpus::generate(&config)
        })
    }

    pub fn shared_model() -> &'static TrainedModel {
        static MODEL: OnceLock<TrainedModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            Trainer::with_config(TrainerConfig {
                top_k_features: Some(14),
                ..Default::default()
            })
            .train(shared_corpus())
        })
    }
}
