//! Longitudinal replay: the retrain → hot-redeploy loop.
//!
//! The ROADMAP's scale-out item: the clairvoyant metric only pays off if
//! it can be *re-estimated* as the application population evolves. This
//! driver replays simulated epochs over a [`corpus::LongitudinalStream`]:
//!
//! 1. **Extract** — each epoch's changed apps run through the incremental
//!    engine ([`crate::IncrementalTestbed`]); untouched apps keep their
//!    cached dense feature rows and CVE trajectories, so the per-epoch
//!    cost is proportional to churn, not population size.
//! 2. **Retrain** — a sliding ground-truth window (the most recent
//!    `window_years` of revealed CVE records) is re-selected and the
//!    model retrained through [`Trainer::train_streaming`], spilling its
//!    working matrices to disk when `out_of_core` is set.
//! 3. **Measure drift** — the previous epoch's model is scored on the
//!    *new* epoch's labels (AUC + Brier on the high-severity hypothesis)
//!    next to the refreshed model; the gap is the cost of serving stale.
//! 4. **Hot-redeploy** — the refreshed model is compiled to `CLVY` bytes,
//!    written under the work dir, and handed to the `deploy` hook, which
//!    a serving fleet implements with the existing `reload` op.
//!
//! Everything is deterministic: the same config produces byte-identical
//! models, fingerprints and drift numbers (see
//! [`LongitudinalReport::drift_json`], the CI equality gate).

use crate::hypothesis::Hypothesis;
use crate::incremental::IncrementalTestbed;
use crate::train::{TrainedModel, Trainer, TrainerConfig};
use corpus::{LongitudinalStream, StreamConfig};
use cvedb::CveDatabase;
use cvedb::CveRecord;
use secml::eval::{brier_score, roc_auc};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Configuration for [`replay`].
#[derive(Debug, Clone)]
pub struct LongitudinalConfig {
    /// The evolving population.
    pub stream: StreamConfig,
    /// Number of epochs to replay.
    pub epochs: usize,
    /// Sliding ground-truth window: each epoch trains on records revealed
    /// within the last `window_years` years up to its cutoff. Must stay
    /// comfortably above the selection rule's 5-year history floor.
    pub window_years: i32,
    /// Trainer settings (selection criteria, learner, feature filter…).
    pub trainer: TrainerConfig,
    /// Where per-epoch `CLVY` models and spill matrices are written.
    pub work_dir: PathBuf,
    /// Spill training matrices to disk instead of holding them in RAM.
    pub out_of_core: bool,
}

impl Default for LongitudinalConfig {
    fn default() -> LongitudinalConfig {
        LongitudinalConfig {
            stream: StreamConfig::default(),
            epochs: 3,
            window_years: 10,
            trainer: TrainerConfig::default(),
            work_dir: std::env::temp_dir().join("clairvoyant-longitudinal"),
            out_of_core: true,
        }
    }
}

/// What one replayed epoch produced.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    pub epoch: usize,
    /// Ground-truth cutoff year for this epoch.
    pub cutoff_year: i32,
    /// Apps (re)synthesized and (re)extracted this epoch.
    pub apps_changed: usize,
    /// Incremental-engine function cache counters for this epoch.
    pub fn_cache_hits: u64,
    pub fn_cache_misses: u64,
    /// Apps passing ground-truth selection (= training rows).
    pub trained_apps: usize,
    /// Kept features after selection.
    pub n_features: usize,
    /// Where the epoch's `CLVY` model was written.
    pub model_path: PathBuf,
    /// FNV-1a fingerprint of the model bytes — matches the serve
    /// daemon's reported fingerprint after a reload of this file.
    pub fingerprint: String,
    /// Previous epoch's model scored on THIS epoch's high-severity
    /// labels (None at epoch 0) — the drift being measured.
    pub stale_auc: Option<f64>,
    pub stale_brier: Option<f64>,
    /// The refreshed model on the same labels.
    pub fresh_auc: f64,
    pub fresh_brier: f64,
    pub extract_ms: u128,
    pub retrain_ms: u128,
}

/// The full replay outcome.
#[derive(Debug, Clone)]
pub struct LongitudinalReport {
    /// Population size.
    pub apps: usize,
    pub epochs: Vec<EpochOutcome>,
}

impl LongitudinalReport {
    /// A deterministic JSON rendering of everything except timings and
    /// file paths — two replays of the same config must produce equal
    /// strings (the CI drift-report equality gate).
    pub fn drift_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"apps\":{},\"epochs\":[", self.apps);
        for (i, e) in self.epochs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"epoch\":{},\"cutoff_year\":{},\"apps_changed\":{},\"trained_apps\":{},\
                 \"n_features\":{},\"fingerprint\":\"{}\",\"stale_auc\":{},\"stale_brier\":{},\
                 \"fresh_auc\":{:.12},\"fresh_brier\":{:.12}}}",
                e.epoch,
                e.cutoff_year,
                e.apps_changed,
                e.trained_apps,
                e.n_features,
                e.fingerprint,
                e.stale_auc
                    .map_or("null".to_string(), |v| format!("{v:.12}")),
                e.stale_brier
                    .map_or("null".to_string(), |v| format!("{v:.12}")),
                e.fresh_auc,
                e.fresh_brier,
            );
        }
        s.push_str("]}");
        s
    }
}

/// Per-app replay cache: one entry per population index, refreshed only
/// when the app's last-changed epoch moves.
struct AppCache {
    last_changed: usize,
    name: String,
    /// Raw dense feature row in schema order (pre-transform).
    dense: Vec<f64>,
    /// Full CVE trajectory (no cutoff); filtered per epoch.
    records: Vec<CveRecord>,
}

/// An epoch's trained model plus the training-time base rate used when
/// the high-severity hypothesis was degenerate.
struct EpochModel {
    model: TrainedModel,
    base_rate: f64,
}

impl EpochModel {
    /// AUC + Brier of this model on the given labelled dense rows.
    fn score(&self, rows: &[&[f64]], labels: &[usize]) -> (f64, f64) {
        let probs: Vec<f64> = rows
            .iter()
            .map(|dense| {
                let row = self.model.prepare_dense_row(dense);
                self.model
                    .hypothesis_probability(Hypothesis::AnyHighSeverity, &row)
                    .unwrap_or(self.base_rate)
            })
            .collect();
        (roc_auc(labels, &probs), brier_score(labels, &probs))
    }
}

/// Replay `config.epochs` epochs; `deploy(epoch, clvy_path)` is invoked
/// after each epoch's model is written (a serve fleet passes a
/// `reload`-issuing hook; offline callers pass `|_, _| Ok(())`).
pub fn replay(
    config: &LongitudinalConfig,
    mut deploy: impl FnMut(usize, &Path) -> Result<(), String>,
) -> io::Result<LongitudinalReport> {
    std::fs::create_dir_all(&config.work_dir)?;
    let stream = LongitudinalStream::new(config.stream.clone());
    let apps = config.stream.apps;
    let mut engine = IncrementalTestbed::new();
    let mut cache: Vec<Option<AppCache>> = (0..apps).map(|_| None).collect();
    let mut schema: Vec<String> = Vec::new();
    let mut prev: Option<EpochModel> = None;
    let mut epochs_out = Vec::new();

    for epoch in 0..config.epochs {
        let t_extract = Instant::now();
        let cutoff = stream.cutoff_year(epoch);
        let floor = cutoff - config.window_years + 1;
        let mut apps_changed = 0usize;
        let (mut hits, mut misses) = (0u64, 0u64);
        let mut db = CveDatabase::new();
        for (i, slot) in cache.iter_mut().enumerate() {
            let last_changed = stream.last_changed(i, epoch);
            let stale = slot.as_ref().is_none_or(|c| c.last_changed != last_changed);
            if stale {
                apps_changed += 1;
                let (app, records) = stream.materialize(i, last_changed);
                let (fv, incr) = engine.extract_stats(&app.program);
                hits += incr.hits;
                misses += incr.misses;
                if schema.is_empty() {
                    schema = fv.iter().map(|(k, _)| k.to_string()).collect();
                    schema.sort();
                }
                let mut dense = Vec::new();
                fv.fill_dense(&schema, &mut dense);
                *slot = Some(AppCache {
                    last_changed,
                    name: app.spec.name,
                    dense,
                    records,
                });
            }
            let entry = slot.as_ref().expect("cache filled above");
            for r in &entry.records {
                if r.published.year >= floor && r.published.year <= cutoff {
                    db.insert(r.clone());
                }
            }
        }
        let extract_ms = t_extract.elapsed().as_millis();

        // Sliding-window ground truth → training rows aligned to it.
        let histories = db.select(&config.trainer.selection);
        assert!(
            !histories.is_empty(),
            "epoch {epoch}: no app passed selection — widen window_years"
        );
        let by_name: BTreeMap<&str, usize> = cache
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (c.name.as_str(), i)))
            .collect();
        let dense_of = |app: &str| -> &[f64] {
            cache[by_name[app]]
                .as_ref()
                .expect("selected app is cached")
                .dense
                .as_slice()
        };

        let t_retrain = Instant::now();
        let trainer = Trainer::with_config(config.trainer.clone());
        let spill_dir = config
            .out_of_core
            .then(|| config.work_dir.join(format!("spill-{epoch}")));
        let model = trainer.train_streaming(
            &schema,
            histories.iter().map(|h| dense_of(&h.app).to_vec()),
            &histories,
            spill_dir.as_deref(),
        )?;
        let retrain_ms = t_retrain.elapsed().as_millis();

        // Drift: stale vs fresh on this epoch's labels.
        let labels: Vec<usize> = histories
            .iter()
            .map(|h| Hypothesis::AnyHighSeverity.label(h))
            .collect();
        let base_rate = labels.iter().sum::<usize>() as f64 / labels.len() as f64;
        let rows: Vec<&[f64]> = histories.iter().map(|h| dense_of(&h.app)).collect();
        let fresh = EpochModel { model, base_rate };
        let (fresh_auc, fresh_brier) = fresh.score(&rows, &labels);
        let (stale_auc, stale_brier) = match &prev {
            Some(p) => {
                let (a, b) = p.score(&rows, &labels);
                (Some(a), Some(b))
            }
            None => (None, None),
        };

        // Persist the compiled model and hand it to the fleet.
        let bytes = fresh.model.compile().to_bytes();
        let fingerprint = format!("{:016x}", pipeline::fnv::hash_bytes(&bytes));
        let model_path = config.work_dir.join(format!("epoch-{epoch}.clvy"));
        std::fs::write(&model_path, &bytes)?;
        deploy(epoch, &model_path).map_err(io::Error::other)?;

        epochs_out.push(EpochOutcome {
            epoch,
            cutoff_year: cutoff,
            apps_changed,
            fn_cache_hits: hits,
            fn_cache_misses: misses,
            trained_apps: histories.len(),
            n_features: fresh.model.feature_names.len(),
            model_path,
            fingerprint,
            stale_auc,
            stale_brier,
            fresh_auc,
            fresh_brier,
            extract_ms,
            retrain_ms,
        });
        prev = Some(fresh);
        if let Some(dir) = spill_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    Ok(LongitudinalReport {
        apps,
        epochs: epochs_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(tag: &str) -> LongitudinalConfig {
        LongitudinalConfig {
            stream: StreamConfig {
                apps: 24,
                ..StreamConfig::default()
            },
            epochs: 3,
            work_dir: std::env::temp_dir().join(format!(
                "clairvoyant-longi-test-{}-{tag}",
                std::process::id()
            )),
            ..LongitudinalConfig::default()
        }
    }

    #[test]
    fn replay_is_deterministic_and_incremental() {
        let mut deployed = Vec::new();
        let config = tiny_config("a");
        let report = replay(&config, |e, p| {
            deployed.push((e, p.to_path_buf()));
            Ok(())
        })
        .unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(deployed.len(), 3);
        // Epoch 0 extracts everything; later epochs only churn.
        assert_eq!(report.epochs[0].apps_changed, 24);
        assert!(report.epochs[1].apps_changed < 24);
        for e in &report.epochs {
            assert!(e.trained_apps > 0);
            assert!(e.fingerprint.len() == 16);
            assert!(e.model_path.exists());
            assert!((0.0..=1.0).contains(&e.fresh_auc));
        }
        assert!(report.epochs[1].stale_auc.is_some());
        assert!(report.epochs[0].stale_auc.is_none());

        // Same config ⇒ identical drift report and model bytes.
        let config_b = LongitudinalConfig {
            work_dir: std::env::temp_dir()
                .join(format!("clairvoyant-longi-test-{}-b", std::process::id())),
            ..tiny_config("a")
        };
        let report_b = replay(&config_b, |_, _| Ok(())).unwrap();
        assert_eq!(report.drift_json(), report_b.drift_json());
        for (x, y) in report.epochs.iter().zip(&report_b.epochs) {
            assert_eq!(
                std::fs::read(&x.model_path).unwrap(),
                std::fs::read(&y.model_path).unwrap(),
                "epoch {} models differ across replays",
                x.epoch
            );
        }
    }

    #[test]
    fn out_of_core_matches_in_ram_models() {
        let mut a = tiny_config("ram");
        a.out_of_core = false;
        let mut b = tiny_config("ooc");
        b.out_of_core = true;
        let ra = replay(&a, |_, _| Ok(())).unwrap();
        let rb = replay(&b, |_, _| Ok(())).unwrap();
        assert_eq!(ra.drift_json(), rb.drift_json());
        for (x, y) in ra.epochs.iter().zip(&rb.epochs) {
            assert_eq!(x.fingerprint, y.fingerprint, "epoch {}", x.epoch);
        }
    }

    #[test]
    fn deploy_errors_propagate() {
        let config = tiny_config("err");
        let err = replay(&config, |_, _| Err("fleet unreachable".into())).unwrap_err();
        assert!(err.to_string().contains("fleet unreachable"));
    }
}
