//! Using the metric (§5.3).
//!
//! *"The outcome of the training phase is a classifier, which predicts the
//! number, severity, classification, and impact of vulnerabilities, for any
//! application. … Properties that heavily contribute to a given result can
//! be flagged for developer attention."* A [`SecurityReport`] is that
//! output: predicted count, per-hypothesis risks, the top contributing
//! code properties, and the actionable hints the paper sketches (bounds
//! checking for buffer-overflow risk, firewalling for network risk).

use crate::hypothesis::Hypothesis;
use crate::testbed::Testbed;
use crate::train::{SeverityBand, TrainedModel};
use cvedb::Cwe;
use minilang::ast::Program;
use std::fmt;

/// One feature's contribution to the predicted risk.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    pub feature: String,
    /// Standardized feature value for this program.
    pub value: f64,
    /// Model weight.
    pub weight: f64,
    /// `weight × value` — the signed contribution.
    pub contribution: f64,
}

/// A developer-facing action hint derived from the dominant risk signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hint {
    pub advice: String,
    /// The signal that triggered it.
    pub because: String,
}

/// The §5.3 evaluation result for one program.
#[derive(Debug, Clone)]
pub struct SecurityReport {
    pub app: String,
    /// Predicted number of (eventually reported) vulnerabilities.
    pub predicted_vulnerabilities: f64,
    /// Probability of ever seeing a CVSS > 7 report.
    pub high_severity_risk: Option<f64>,
    /// Probability of a network-reachable vulnerability.
    pub network_risk: Option<f64>,
    /// Predicted report counts per severity band (high/critical, medium,
    /// low) — the "number, severity" part of the §5.3 output.
    pub severity_counts: Vec<(SeverityBand, f64)>,
    /// All hypothesis probabilities, in battery order.
    pub hypotheses: Vec<(Hypothesis, f64)>,
    /// Direct structural risk in [0, 1], computed from the program's own
    /// exposed taint flows, bug-finder reports, attack-graph reachability
    /// and attack surface (model-free, so it responds to micro-level code
    /// changes the corpus-trained models may be too coarse to see).
    pub structural_risk: f64,
    /// Features contributing most to the risk, largest |contribution| first.
    pub attributions: Vec<Attribution>,
    /// Actionable advice.
    pub hints: Vec<Hint>,
}

impl SecurityReport {
    /// A coarse scalar "risk score" (0–100) blending the learned
    /// predictions (count, severity) with the direct structural signals.
    pub fn risk_score(&self) -> f64 {
        let count_part = (self.predicted_vulnerabilities.max(0.0) + 1.0)
            .log10()
            .min(3.0)
            / 3.0;
        let sev_part = self.high_severity_risk.unwrap_or(0.5);
        (40.0 * count_part + 25.0 * sev_part + 35.0 * self.structural_risk).clamp(0.0, 100.0)
    }

    /// Probability for a specific CWE hypothesis, when trained.
    pub fn cwe_risk(&self, cwe: Cwe) -> Option<f64> {
        self.hypotheses
            .iter()
            .find(|(h, _)| matches!(h, Hypothesis::AnyCwe(c) if *c == cwe))
            .map(|(_, p)| *p)
    }
}

impl fmt::Display for SecurityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "security report for `{}`", self.app)?;
        writeln!(
            f,
            "  predicted vulnerabilities: {:.1}",
            self.predicted_vulnerabilities
        )?;
        if let Some(p) = self.high_severity_risk {
            writeln!(f, "  high-severity risk (CVSS>7): {:.0}%", p * 100.0)?;
        }
        if let Some(p) = self.network_risk {
            writeln!(f, "  network-attack risk (AV:N): {:.0}%", p * 100.0)?;
        }
        if !self.severity_counts.is_empty() {
            let mix: Vec<String> = self
                .severity_counts
                .iter()
                .map(|(band, n)| format!("{} {:.1}", band.name(), n))
                .collect();
            writeln!(f, "  predicted severity mix: {}", mix.join(", "))?;
        }
        writeln!(f, "  risk score: {:.0}/100", self.risk_score())?;
        if !self.attributions.is_empty() {
            writeln!(f, "  top contributing properties:")?;
            for a in self.attributions.iter().take(5) {
                writeln!(
                    f,
                    "    {:<28} contribution {:+.3}",
                    a.feature, a.contribution
                )?;
            }
        }
        for hint in &self.hints {
            writeln!(f, "  hint: {} (because {})", hint.advice, hint.because)?;
        }
        Ok(())
    }
}

/// Evaluate `program` with a trained model.
pub fn evaluate(model: &TrainedModel, program: &Program) -> SecurityReport {
    let fv = Testbed::new().extract(program);
    evaluate_features(model, program.name.clone(), &fv)
}

/// Score a pre-extracted feature vector through the boxed per-row models.
/// This is the reference path the batched engine
/// ([`CompiledModel::evaluate_batch`](crate::score::CompiledModel::evaluate_batch))
/// must match bit-for-bit.
pub fn evaluate_features(
    model: &TrainedModel,
    app: String,
    fv: &static_analysis::FeatureVector,
) -> SecurityReport {
    let row = model.prepare_row(fv);
    let hypotheses = model.all_hypotheses(&row);
    let predicted = model.predicted_count(&row);
    let severity = model.predicted_severity_counts(&row);
    assemble_report(
        app,
        fv,
        &row,
        &model.feature_names,
        &model.risk_weights,
        hypotheses,
        predicted,
        severity,
    )
}

/// Assemble a [`SecurityReport`] from precomputed model outputs. Shared by
/// the boxed per-row path above and the batched scoring engine in
/// [`crate::score`], so the two report shapes cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    app: String,
    fv: &static_analysis::FeatureVector,
    row: &[f64],
    feature_names: &[String],
    risk_weights: &[f64],
    hypotheses: Vec<(Hypothesis, f64)>,
    predicted_vulnerabilities: f64,
    severity_counts: Vec<(SeverityBand, f64)>,
) -> SecurityReport {
    let lookup = |target: Hypothesis| {
        hypotheses
            .iter()
            .find(|(h, _)| *h == target)
            .map(|(_, p)| *p)
    };
    let high_severity_risk = lookup(Hypothesis::AnyHighSeverity);
    let network_risk = lookup(Hypothesis::AnyNetworkAttackable);

    // Attributions from the inspectable risk weights: rank column
    // indices and materialize (clone the names of) only the kept top
    // 10. Selection + a 10-element sort replaces sorting the whole
    // schema (the old stable sort was the hottest part of report
    // assembly). The comparator — |contribution| descending, column
    // index ascending — is a total order, and on ties the stable sort
    // kept indices ascending too, so the ranked prefix is identical.
    let n = feature_names.len().min(row.len()).min(risk_weights.len());
    let mut ranked: Vec<usize> = (0..n).collect();
    let by_rank = |&a: &usize, &b: &usize| {
        (risk_weights[b] * row[b])
            .abs()
            .partial_cmp(&(risk_weights[a] * row[a]).abs())
            .expect("finite contributions")
            .then(a.cmp(&b))
    };
    if n > 10 {
        ranked.select_nth_unstable_by(9, by_rank);
        ranked.truncate(10);
    }
    ranked.sort_by(by_rank);
    let attributions: Vec<Attribution> = ranked
        .into_iter()
        .map(|i| Attribution {
            feature: feature_names[i].clone(),
            value: row[i],
            weight: risk_weights[i],
            contribution: risk_weights[i] * row[i],
        })
        .collect();

    let hints = derive_hints(fv, &hypotheses);

    SecurityReport {
        app,
        predicted_vulnerabilities,
        high_severity_risk,
        network_risk,
        severity_counts,
        hypotheses,
        structural_risk: structural_risk(fv),
        attributions,
        hints,
    }
}

/// Model-free risk from the raw feature vector: saturating sum of the
/// signals that directly witness exploitable structure.
pub fn structural_risk(fv: &static_analysis::FeatureVector) -> f64 {
    let raw = 0.6 * fv.get_or_zero("taint.exposed_flows")
        + 0.25 * fv.get_or_zero("taint.flows")
        + 0.4 * fv.get_or_zero("bugfind.errors")
        + 0.1 * fv.get_or_zero("bugfind.warnings")
        + 0.5 * fv.get_or_zero("bounds.out_of_bounds")
        + 0.8 * fv.get_or_zero("attackgraph.goal_reachable")
        + 0.05 * fv.get_or_zero("rasq.quotient");
    // Normalize per function so big-but-clean programs are not penalized
    // for size alone.
    let functions = fv.get_or_zero("counts.functions").max(1.0);
    let density = raw / functions.sqrt();
    1.0 - (-density / 1.5).exp()
}

/// §5.3's examples, mechanized: map dominant signals to advice.
fn derive_hints(
    fv: &static_analysis::FeatureVector,
    hypotheses: &[(Hypothesis, f64)],
) -> Vec<Hint> {
    let mut hints = Vec::new();
    let prob = |target: &Hypothesis| {
        hypotheses
            .iter()
            .find(|(h, _)| h == target)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    };
    if prob(&Hypothesis::AnyCwe(Cwe::StackBufferOverflow)) > 0.5
        || fv.get_or_zero("bounds.unproved_ratio") > 0.5
    {
        hints.push(Hint {
            advice: "apply bounds checking to buffer writes".into(),
            because: "high stack-buffer-overflow risk".into(),
        });
    }
    if prob(&Hypothesis::AnyNetworkAttackable) > 0.5 {
        hints.push(Hint {
            advice: "place the application behind a firewall or intrusion-protection system".into(),
            because: "a network attack is predicted".into(),
        });
    }
    if fv.get_or_zero("taint.exposed_flows") > 0.0 {
        hints.push(Hint {
            advice: "validate attacker-reachable inputs before use".into(),
            because: format!(
                "{} tainted source-to-sink flows are reachable from interfaces",
                fv.get_or_zero("taint.exposed_flows")
            ),
        });
    }
    if fv.get_or_zero("smells.sparse_comments") > 0.0 {
        hints.push(Hint {
            advice: "raise review coverage on the undocumented modules".into(),
            because: "comment density is below the review threshold".into(),
        });
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{shared_corpus, shared_model};
    use corpus::Corpus;
    use minilang::{parse_program, Dialect};

    fn trained() -> (&'static Corpus, &'static TrainedModel) {
        (shared_corpus(), shared_model())
    }

    #[test]
    fn report_has_all_sections() {
        let (corpus, model) = trained();
        let report = model.evaluate(&corpus.apps[0].program);
        assert_eq!(report.app, corpus.apps[0].spec.name);
        assert!(report.predicted_vulnerabilities.is_finite());
        assert!(!report.attributions.is_empty());
        assert!(report.attributions.len() <= 10);
        let text = report.to_string();
        assert!(text.contains("predicted vulnerabilities"));
        assert!(text.contains("risk score"));
    }

    #[test]
    fn attributions_sorted_by_magnitude() {
        let (corpus, model) = trained();
        let report = model.evaluate(&corpus.apps[1].program);
        for w in report.attributions.windows(2) {
            assert!(w[0].contribution.abs() >= w[1].contribution.abs());
        }
    }

    #[test]
    fn risky_program_gets_buffer_hint() {
        let (_, model) = trained();
        let p = parse_program(
            "risky",
            Dialect::C,
            &[(
                "m.c".into(),
                "@endpoint(network)
                 fn handle(req: str, n: int) {
                     let buf: str[16];
                     strcpy(buf, req);
                     buf[n] = req;
                 }"
                .into(),
            )],
        )
        .unwrap();
        let report = model.evaluate(&p);
        assert!(
            report
                .hints
                .iter()
                .any(|h| h.advice.contains("bounds checking")),
            "hints: {:?}",
            report.hints
        );
        assert!(report
            .hints
            .iter()
            .any(|h| h.advice.contains("validate attacker-reachable inputs")));
    }

    #[test]
    fn risk_score_bounds() {
        let (corpus, model) = trained();
        for app in corpus.apps.iter().take(3) {
            let r = model.evaluate(&app.program);
            let score = r.risk_score();
            assert!((0.0..=100.0).contains(&score), "{score}");
        }
    }

    #[test]
    fn cwe_risk_lookup() {
        let (corpus, model) = trained();
        let report = model.evaluate(&corpus.apps[0].program);
        // The battery always includes CWE-121; probability present iff the
        // hypothesis was trainable on this corpus.
        let p = report.cwe_risk(Cwe::StackBufferOverflow);
        if let Some(p) = p {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(report
            .cwe_risk(Cwe::MemoryLeak)
            .is_none_or(|p| (0.0..=1.0).contains(&p)));
    }
}
