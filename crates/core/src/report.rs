//! Plain JSON serialization for reports.
//!
//! CI integrations (the §5.3 workflow) want machine-readable output. To
//! keep the dependency set inside the allowed offline list we ship a small
//! JSON writer instead of pulling `serde_json`; the value model covers
//! everything the reports need.

use crate::compare::Comparison;
use crate::explain::Explanation;
use crate::metric::SecurityReport;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
        out.write_char('"')?;
        // Copy maximal runs of plain text in one `write_str`; every byte
        // that needs escaping is ASCII, so a byte scan finds the run
        // boundaries without breaking UTF-8 sequences.
        let bytes = s.as_bytes();
        let mut from = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' || b == b'\\' || b < 0x20 {
                out.write_str(&s[from..i])?;
                match b {
                    b'"' => out.write_str("\\\"")?,
                    b'\\' => out.write_str("\\\\")?,
                    b'\n' => out.write_str("\\n")?,
                    b'\r' => out.write_str("\\r")?,
                    b'\t' => out.write_str("\\t")?,
                    _ => write!(out, "\\u{b:04x}")?,
                }
                from = i + 1;
            }
        }
        out.write_str(&s[from..])?;
        out.write_char('"')
    }

    /// Serialize into any [`fmt::Write`] sink — the hot serving path
    /// streams responses straight into a reused byte buffer through
    /// this, with no intermediate `String`.
    pub fn write_into(&self, out: &mut impl fmt::Write) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    // Integers print without a trailing `.0`.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(out, "{}", *n as i64)
                    } else {
                        write!(out, "{n}")
                    }
                } else {
                    out.write_str("null")
                }
            }
            Json::String(s) => Self::write_escaped(s, out),
            Json::Array(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.write_into(out)?;
                }
                out.write_char(']')
            }
            Json::Object(map) => {
                out.write_char('{')?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    Self::write_escaped(k, out)?;
                    out.write_char(':')?;
                    v.write_into(out)?;
                }
                out.write_char('}')
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_into(f)
    }
}

/// Serialize a [`SecurityReport`] to a JSON string.
pub fn security_report_json(report: &SecurityReport) -> String {
    security_report_value(report).to_string()
}

/// Mirror of the `Json::Number` formatting rules, for the streaming
/// report writer below.
fn write_num(n: f64, out: &mut impl fmt::Write) -> fmt::Result {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            write!(out, "{}", n as i64)
        } else {
            write!(out, "{n}")
        }
    } else {
        out.write_str("null")
    }
}

fn write_opt_num(n: Option<f64>, out: &mut impl fmt::Write) -> fmt::Result {
    match n {
        Some(v) => write_num(v, out),
        None => out.write_str("null"),
    }
}

/// Stream a [`SecurityReport`] directly into `out`, byte-identical to
/// serializing [`security_report_value`] but without materializing the
/// intermediate [`Json`] tree (a few hundred small allocations per
/// report). The scoring daemon renders every `score` response through
/// this, so the keys are written in the exact sorted order the
/// `BTreeMap`-backed tree would produce —
/// `streamed_report_matches_tree_serialization` pins the equivalence.
pub fn write_security_report(report: &SecurityReport, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_str("{\"app\":")?;
    Json::write_escaped(&report.app, out)?;
    out.write_str(",\"attributions\":[")?;
    for (i, a) in report.attributions.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_str("{\"contribution\":")?;
        write_num(a.contribution, out)?;
        out.write_str(",\"feature\":")?;
        Json::write_escaped(&a.feature, out)?;
        out.write_str(",\"value\":")?;
        write_num(a.value, out)?;
        out.write_str(",\"weight\":")?;
        write_num(a.weight, out)?;
        out.write_char('}')?;
    }
    out.write_str("],\"high_severity_risk\":")?;
    write_opt_num(report.high_severity_risk, out)?;
    out.write_str(",\"hints\":[")?;
    for (i, h) in report.hints.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_str("{\"advice\":")?;
        Json::write_escaped(&h.advice, out)?;
        out.write_str(",\"because\":")?;
        Json::write_escaped(&h.because, out)?;
        out.write_char('}')?;
    }
    out.write_str("],\"hypotheses\":[")?;
    for (i, (h, p)) in report.hypotheses.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_str("{\"hypothesis\":")?;
        Json::write_escaped(&h.name(), out)?;
        out.write_str(",\"probability\":")?;
        write_num(*p, out)?;
        out.write_str(",\"question\":")?;
        Json::write_escaped(&h.question(), out)?;
        out.write_char('}')?;
    }
    out.write_str("],\"network_risk\":")?;
    write_opt_num(report.network_risk, out)?;
    out.write_str(",\"predicted_vulnerabilities\":")?;
    write_num(report.predicted_vulnerabilities, out)?;
    out.write_str(",\"risk_score\":")?;
    write_num(report.risk_score(), out)?;
    out.write_str(",\"severity_counts\":[")?;
    for (i, (band, n)) in report.severity_counts.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_str("{\"band\":")?;
        Json::write_escaped(band.name(), out)?;
        out.write_str(",\"predicted\":")?;
        write_num(*n, out)?;
        out.write_char('}')?;
    }
    out.write_str("],\"structural_risk\":")?;
    write_num(report.structural_risk, out)?;
    out.write_char('}')
}

/// Build the [`Json`] value for a [`SecurityReport`] — callers that embed
/// reports in larger documents (the scoring daemon's `score` responses)
/// compose this instead of re-parsing the serialized string.
pub fn security_report_value(report: &SecurityReport) -> Json {
    let hypotheses: Vec<Json> = report
        .hypotheses
        .iter()
        .map(|(h, p)| {
            Json::object(vec![
                ("hypothesis", Json::String(h.name())),
                ("question", Json::String(h.question())),
                ("probability", Json::Number(*p)),
            ])
        })
        .collect();
    let attributions: Vec<Json> = report
        .attributions
        .iter()
        .map(|a| {
            Json::object(vec![
                ("feature", Json::String(a.feature.clone())),
                ("weight", Json::Number(a.weight)),
                ("value", Json::Number(a.value)),
                ("contribution", Json::Number(a.contribution)),
            ])
        })
        .collect();
    let hints: Vec<Json> = report
        .hints
        .iter()
        .map(|h| {
            Json::object(vec![
                ("advice", Json::String(h.advice.clone())),
                ("because", Json::String(h.because.clone())),
            ])
        })
        .collect();
    Json::object(vec![
        ("app", Json::String(report.app.clone())),
        (
            "predicted_vulnerabilities",
            Json::Number(report.predicted_vulnerabilities),
        ),
        (
            "high_severity_risk",
            report
                .high_severity_risk
                .map(Json::Number)
                .unwrap_or(Json::Null),
        ),
        (
            "network_risk",
            report.network_risk.map(Json::Number).unwrap_or(Json::Null),
        ),
        (
            "severity_counts",
            Json::Array(
                report
                    .severity_counts
                    .iter()
                    .map(|(band, n)| {
                        Json::object(vec![
                            ("band", Json::String(band.name().to_string())),
                            ("predicted", Json::Number(*n)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("structural_risk", Json::Number(report.structural_risk)),
        ("risk_score", Json::Number(report.risk_score())),
        ("hypotheses", Json::Array(hypotheses)),
        ("attributions", Json::Array(attributions)),
        ("hints", Json::Array(hints)),
    ])
}

/// Serialize an [`Explanation`] to a JSON string.
pub fn explanation_json(explanation: &Explanation) -> String {
    explanation_value(explanation).to_string()
}

/// Build the [`Json`] value for an [`Explanation`]: the embedded report,
/// the feature-name column order, every model's exact decomposition, and
/// any function hotspots. The serving daemon's `explain` responses embed
/// this same value, so wire output equals offline output exactly.
pub fn explanation_value(explanation: &Explanation) -> Json {
    let models: Vec<Json> = explanation
        .models
        .iter()
        .map(|m| {
            Json::object(vec![
                ("target", Json::String(m.target.clone())),
                ("baseline", Json::Number(m.baseline)),
                ("score", Json::Number(m.score)),
                ("prediction", Json::Number(m.prediction)),
                (
                    "contributions",
                    Json::Array(m.contributions.iter().map(|&c| Json::Number(c)).collect()),
                ),
            ])
        })
        .collect();
    let hotspots: Vec<Json> = explanation
        .hotspots
        .iter()
        .map(|h| {
            Json::object(vec![
                ("function", Json::String(h.function.clone())),
                ("score", Json::Number(h.score)),
                ("complexity", Json::Number(h.complexity as f64)),
                ("bin", Json::Number(h.bin as f64)),
                (
                    "signals",
                    Json::Array(
                        h.signals
                            .iter()
                            .map(|(name, v)| {
                                Json::object(vec![
                                    ("signal", Json::String(name.clone())),
                                    ("value", Json::Number(*v)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let top: Vec<Json> = explanation
        .top_risk_features(5)
        .into_iter()
        .map(|(feature, credit)| {
            Json::object(vec![
                ("feature", Json::String(feature)),
                ("risk_credit", Json::Number(credit)),
            ])
        })
        .collect();
    Json::object(vec![
        ("report", security_report_value(&explanation.report)),
        (
            "features",
            Json::Array(
                explanation
                    .features
                    .iter()
                    .map(|f| Json::String(f.clone()))
                    .collect(),
            ),
        ),
        ("models", Json::Array(models)),
        ("hotspots", Json::Array(hotspots)),
        ("top_risk_features", Json::Array(top)),
    ])
}

/// Serialize a [`Comparison`] to a JSON string.
pub fn comparison_json(comparison: &Comparison) -> String {
    comparison_value(comparison).to_string()
}

/// Build the [`Json`] value for a [`Comparison`] — both reports, the
/// verdict, and the attribution-backed per-feature deltas.
pub fn comparison_value(comparison: &Comparison) -> Json {
    let deltas: Vec<Json> = comparison
        .deltas
        .iter()
        .map(|d| {
            Json::object(vec![
                ("feature", Json::String(d.feature.clone())),
                ("a", Json::Number(d.a)),
                ("b", Json::Number(d.b)),
                ("delta", Json::Number(d.delta)),
            ])
        })
        .collect();
    Json::object(vec![
        ("a", security_report_value(&comparison.a)),
        ("b", security_report_value(&comparison.b)),
        (
            "preferred",
            Json::String(comparison.preferred().to_string()),
        ),
        ("delta", Json::Number(comparison.delta())),
        ("deltas", Json::Array(deltas)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_values() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.25).to_string(), "3.25");
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::String("a\"b".into()).to_string(), r#""a\"b""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(
            Json::String("x\n\t\u{1}".into()).to_string(),
            "\"x\\n\\t\\u0001\""
        );
    }

    #[test]
    fn arrays_and_objects() {
        let v = Json::object(vec![
            ("b", Json::Array(vec![Json::Number(1.0), Json::Number(2.0)])),
            ("a", Json::Bool(false)),
        ]);
        // BTreeMap: keys come out sorted.
        assert_eq!(v.to_string(), r#"{"a":false,"b":[1,2]}"#);
    }

    #[test]
    fn report_serializes() {
        use crate::metric::{Attribution, Hint};
        let report = SecurityReport {
            app: "demo".into(),
            predicted_vulnerabilities: 4.2,
            high_severity_risk: Some(0.75),
            network_risk: None,
            hypotheses: vec![(crate::hypothesis::Hypothesis::AnyHighSeverity, 0.75)],
            severity_counts: vec![(crate::train::SeverityBand::Medium, 2.5)],
            structural_risk: 0.4,
            attributions: vec![Attribution {
                feature: "taint.flows".into(),
                value: 1.5,
                weight: 0.8,
                contribution: 1.2,
            }],
            hints: vec![Hint {
                advice: "fix it".into(),
                because: "risk".into(),
            }],
        };
        let json = security_report_json(&report);
        assert!(json.contains(r#""app":"demo""#));
        assert!(json.contains(r#""network_risk":null"#));
        assert!(json.contains(r#""hypothesis":"cvss_gt_7""#));
        assert!(json.contains(r#""advice":"fix it""#));
        // Must be structurally valid enough to round-trip braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn streamed_report_matches_tree_serialization() {
        use crate::metric::{Attribution, Hint};
        // Exercise every branch the streaming writer special-cases:
        // Some/None optionals, strings needing escapes, integral and
        // fractional numbers, empty and populated lists.
        let mut report = SecurityReport {
            app: "demo \"quoted\"\n".into(),
            predicted_vulnerabilities: 4.0,
            high_severity_risk: Some(0.7500001),
            network_risk: None,
            hypotheses: vec![
                (crate::hypothesis::Hypothesis::AnyHighSeverity, 0.75),
                (crate::hypothesis::Hypothesis::AnyNetworkAttackable, 0.25),
            ],
            severity_counts: vec![
                (crate::train::SeverityBand::Medium, 2.5),
                (crate::train::SeverityBand::HighOrCritical, 0.0),
            ],
            structural_risk: 0.4,
            attributions: vec![Attribution {
                feature: "taint.flows".into(),
                value: -1.5,
                weight: 0.30000000000000004,
                contribution: -0.45,
            }],
            hints: vec![Hint {
                advice: "fix \\ it".into(),
                because: "risk".into(),
            }],
        };
        for r in [&report.clone(), {
            report.attributions.clear();
            report.hints.clear();
            report.high_severity_risk = None;
            report.network_risk = Some(f64::NAN);
            &report.clone()
        }] {
            let mut streamed = String::new();
            write_security_report(r, &mut streamed).unwrap();
            assert_eq!(streamed, security_report_value(r).to_string());
        }
    }

    #[test]
    fn explanation_and_comparison_serialize() {
        let report = SecurityReport {
            app: "demo".into(),
            predicted_vulnerabilities: 1.0,
            high_severity_risk: None,
            network_risk: None,
            hypotheses: vec![],
            severity_counts: vec![],
            structural_risk: 0.0,
            attributions: vec![],
            hints: vec![],
        };
        let explanation = crate::explain::Explanation {
            report: report.clone(),
            features: vec!["taint.flows".into()],
            models: vec![crate::explain::ModelExplanation {
                target: "count".into(),
                baseline: 0.5,
                score: 0.75,
                prediction: 4.25,
                contributions: vec![0.25],
            }],
            hotspots: vec![crate::explain::Hotspot {
                function: "handle".into(),
                score: 1.5,
                complexity: 3,
                bin: 2,
                signals: vec![("taint.flows".into(), 1.5)],
            }],
        };
        let json = explanation_json(&explanation);
        assert!(json.contains(r#""target":"count""#));
        assert!(json.contains(r#""contributions":[0.25]"#));
        assert!(json.contains(r#""function":"handle""#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let comparison = Comparison {
            a: report.clone(),
            b: report,
            deltas: vec![crate::compare::FeatureDelta {
                feature: "taint.flows".into(),
                a: 0.1,
                b: 0.4,
                delta: 0.30000000000000004,
            }],
        };
        let json = comparison_json(&comparison);
        assert!(json.contains(r#""preferred":"demo""#));
        // Shortest-roundtrip float printing preserves exact bits.
        assert!(json.contains(r#""delta":0.30000000000000004"#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
