//! Plain JSON serialization for reports.
//!
//! CI integrations (the §5.3 workflow) want machine-readable output. To
//! keep the dependency set inside the allowed offline list we ship a small
//! JSON writer instead of pulling `serde_json`; the value model covers
//! everything the reports need.

use crate::compare::Comparison;
use crate::explain::Explanation;
use crate::metric::SecurityReport;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    // Integers print without a trailing `.0`.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => Self::write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Serialize a [`SecurityReport`] to a JSON string.
pub fn security_report_json(report: &SecurityReport) -> String {
    security_report_value(report).to_string()
}

/// Build the [`Json`] value for a [`SecurityReport`] — callers that embed
/// reports in larger documents (the scoring daemon's `score` responses)
/// compose this instead of re-parsing the serialized string.
pub fn security_report_value(report: &SecurityReport) -> Json {
    let hypotheses: Vec<Json> = report
        .hypotheses
        .iter()
        .map(|(h, p)| {
            Json::object(vec![
                ("hypothesis", Json::String(h.name())),
                ("question", Json::String(h.question())),
                ("probability", Json::Number(*p)),
            ])
        })
        .collect();
    let attributions: Vec<Json> = report
        .attributions
        .iter()
        .map(|a| {
            Json::object(vec![
                ("feature", Json::String(a.feature.clone())),
                ("weight", Json::Number(a.weight)),
                ("value", Json::Number(a.value)),
                ("contribution", Json::Number(a.contribution)),
            ])
        })
        .collect();
    let hints: Vec<Json> = report
        .hints
        .iter()
        .map(|h| {
            Json::object(vec![
                ("advice", Json::String(h.advice.clone())),
                ("because", Json::String(h.because.clone())),
            ])
        })
        .collect();
    Json::object(vec![
        ("app", Json::String(report.app.clone())),
        (
            "predicted_vulnerabilities",
            Json::Number(report.predicted_vulnerabilities),
        ),
        (
            "high_severity_risk",
            report
                .high_severity_risk
                .map(Json::Number)
                .unwrap_or(Json::Null),
        ),
        (
            "network_risk",
            report.network_risk.map(Json::Number).unwrap_or(Json::Null),
        ),
        (
            "severity_counts",
            Json::Array(
                report
                    .severity_counts
                    .iter()
                    .map(|(band, n)| {
                        Json::object(vec![
                            ("band", Json::String(band.name().to_string())),
                            ("predicted", Json::Number(*n)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("structural_risk", Json::Number(report.structural_risk)),
        ("risk_score", Json::Number(report.risk_score())),
        ("hypotheses", Json::Array(hypotheses)),
        ("attributions", Json::Array(attributions)),
        ("hints", Json::Array(hints)),
    ])
}

/// Serialize an [`Explanation`] to a JSON string.
pub fn explanation_json(explanation: &Explanation) -> String {
    explanation_value(explanation).to_string()
}

/// Build the [`Json`] value for an [`Explanation`]: the embedded report,
/// the feature-name column order, every model's exact decomposition, and
/// any function hotspots. The serving daemon's `explain` responses embed
/// this same value, so wire output equals offline output exactly.
pub fn explanation_value(explanation: &Explanation) -> Json {
    let models: Vec<Json> = explanation
        .models
        .iter()
        .map(|m| {
            Json::object(vec![
                ("target", Json::String(m.target.clone())),
                ("baseline", Json::Number(m.baseline)),
                ("score", Json::Number(m.score)),
                ("prediction", Json::Number(m.prediction)),
                (
                    "contributions",
                    Json::Array(m.contributions.iter().map(|&c| Json::Number(c)).collect()),
                ),
            ])
        })
        .collect();
    let hotspots: Vec<Json> = explanation
        .hotspots
        .iter()
        .map(|h| {
            Json::object(vec![
                ("function", Json::String(h.function.clone())),
                ("score", Json::Number(h.score)),
                ("complexity", Json::Number(h.complexity as f64)),
                ("bin", Json::Number(h.bin as f64)),
                (
                    "signals",
                    Json::Array(
                        h.signals
                            .iter()
                            .map(|(name, v)| {
                                Json::object(vec![
                                    ("signal", Json::String(name.clone())),
                                    ("value", Json::Number(*v)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let top: Vec<Json> = explanation
        .top_risk_features(5)
        .into_iter()
        .map(|(feature, credit)| {
            Json::object(vec![
                ("feature", Json::String(feature)),
                ("risk_credit", Json::Number(credit)),
            ])
        })
        .collect();
    Json::object(vec![
        ("report", security_report_value(&explanation.report)),
        (
            "features",
            Json::Array(
                explanation
                    .features
                    .iter()
                    .map(|f| Json::String(f.clone()))
                    .collect(),
            ),
        ),
        ("models", Json::Array(models)),
        ("hotspots", Json::Array(hotspots)),
        ("top_risk_features", Json::Array(top)),
    ])
}

/// Serialize a [`Comparison`] to a JSON string.
pub fn comparison_json(comparison: &Comparison) -> String {
    comparison_value(comparison).to_string()
}

/// Build the [`Json`] value for a [`Comparison`] — both reports, the
/// verdict, and the attribution-backed per-feature deltas.
pub fn comparison_value(comparison: &Comparison) -> Json {
    let deltas: Vec<Json> = comparison
        .deltas
        .iter()
        .map(|d| {
            Json::object(vec![
                ("feature", Json::String(d.feature.clone())),
                ("a", Json::Number(d.a)),
                ("b", Json::Number(d.b)),
                ("delta", Json::Number(d.delta)),
            ])
        })
        .collect();
    Json::object(vec![
        ("a", security_report_value(&comparison.a)),
        ("b", security_report_value(&comparison.b)),
        (
            "preferred",
            Json::String(comparison.preferred().to_string()),
        ),
        ("delta", Json::Number(comparison.delta())),
        ("deltas", Json::Array(deltas)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_values() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.25).to_string(), "3.25");
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::String("a\"b".into()).to_string(), r#""a\"b""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(
            Json::String("x\n\t\u{1}".into()).to_string(),
            "\"x\\n\\t\\u0001\""
        );
    }

    #[test]
    fn arrays_and_objects() {
        let v = Json::object(vec![
            ("b", Json::Array(vec![Json::Number(1.0), Json::Number(2.0)])),
            ("a", Json::Bool(false)),
        ]);
        // BTreeMap: keys come out sorted.
        assert_eq!(v.to_string(), r#"{"a":false,"b":[1,2]}"#);
    }

    #[test]
    fn report_serializes() {
        use crate::metric::{Attribution, Hint};
        let report = SecurityReport {
            app: "demo".into(),
            predicted_vulnerabilities: 4.2,
            high_severity_risk: Some(0.75),
            network_risk: None,
            hypotheses: vec![(crate::hypothesis::Hypothesis::AnyHighSeverity, 0.75)],
            severity_counts: vec![(crate::train::SeverityBand::Medium, 2.5)],
            structural_risk: 0.4,
            attributions: vec![Attribution {
                feature: "taint.flows".into(),
                value: 1.5,
                weight: 0.8,
                contribution: 1.2,
            }],
            hints: vec![Hint {
                advice: "fix it".into(),
                because: "risk".into(),
            }],
        };
        let json = security_report_json(&report);
        assert!(json.contains(r#""app":"demo""#));
        assert!(json.contains(r#""network_risk":null"#));
        assert!(json.contains(r#""hypothesis":"cvss_gt_7""#));
        assert!(json.contains(r#""advice":"fix it""#));
        // Must be structurally valid enough to round-trip braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn explanation_and_comparison_serialize() {
        let report = SecurityReport {
            app: "demo".into(),
            predicted_vulnerabilities: 1.0,
            high_severity_risk: None,
            network_risk: None,
            hypotheses: vec![],
            severity_counts: vec![],
            structural_risk: 0.0,
            attributions: vec![],
            hints: vec![],
        };
        let explanation = crate::explain::Explanation {
            report: report.clone(),
            features: vec!["taint.flows".into()],
            models: vec![crate::explain::ModelExplanation {
                target: "count".into(),
                baseline: 0.5,
                score: 0.75,
                prediction: 4.25,
                contributions: vec![0.25],
            }],
            hotspots: vec![crate::explain::Hotspot {
                function: "handle".into(),
                score: 1.5,
                complexity: 3,
                bin: 2,
                signals: vec![("taint.flows".into(), 1.5)],
            }],
        };
        let json = explanation_json(&explanation);
        assert!(json.contains(r#""target":"count""#));
        assert!(json.contains(r#""contributions":[0.25]"#));
        assert!(json.contains(r#""function":"handle""#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let comparison = Comparison {
            a: report.clone(),
            b: report,
            deltas: vec![crate::compare::FeatureDelta {
                feature: "taint.flows".into(),
                a: 0.1,
                b: 0.4,
                delta: 0.30000000000000004,
            }],
        };
        let json = comparison_json(&comparison);
        assert!(json.contains(r#""preferred":"demo""#));
        // Shortest-roundtrip float printing preserves exact bits.
        assert!(json.contains(r#""delta":0.30000000000000004"#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
