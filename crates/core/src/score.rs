//! High-throughput risk scoring: the compiled serving path.
//!
//! Training produces a [`TrainedModel`] of boxed per-row models;
//! [`TrainedModel::compile`] lowers the whole battery into a
//! [`CompiledModel`] of flattened `secml` models ([`CompiledClassifier`] /
//! [`CompiledRegressor`]). [`CompiledModel::evaluate_batch`] then scores a
//! whole corpus at once: feature rows are prepared into one reused
//! scratch buffer (no per-app allocation), assembled into a single
//! columnar [`ColMatrix`], and every model in the battery scores the full
//! matrix with its blocked `predict_batch` kernel, fanned out over the
//! pipeline work-stealing pool. Reports are bit-identical to the boxed
//! per-row path ([`crate::metric::evaluate_features`]) for any worker
//! count.
//!
//! Compiled models also persist: [`CompiledModel::save`] /
//! [`CompiledModel::load`] write a versioned, serde-free binary format
//! (`CLVY` magic; see DESIGN.md §10), so one training run can feed many
//! scoring runs — the CLI `score` subcommand is built on this.

use crate::hypothesis::{standard_battery, Hypothesis};
use crate::metric::{assemble_report, SecurityReport};
use crate::train::SeverityBand;
use secml::bytes::{ByteReader, ByteWriter};
use secml::dataset::ColMatrix;
use secml::preprocess::Standardizer;
use secml::{CompiledClassifier, CompiledRegressor};
use static_analysis::FeatureVector;
use std::path::Path;

/// File magic for persisted compiled models.
const MAGIC: &[u8; 4] = b"CLVY";
/// Bump on any layout change; readers reject unknown versions.
const VERSION: u32 = 1;

/// Batches below this many apps run sequentially even when `jobs > 1`:
/// pool fan-out (task dispatch, cross-core cache traffic, per-chunk
/// scratch) costs more than it saves on small corpora — the measured
/// inversion in `results/BENCH_INFER.json` had 4 workers *slower* than
/// 1 at 117 rows. Outputs are bit-identical either way (the worker-count
/// invariance the tests prove), so the clamp is purely a scheduling
/// decision. Shared by [`CompiledModel::evaluate_batch`] and the
/// explanation engine ([`crate::explain`]).
pub(crate) const PARALLEL_MIN_ROWS: usize = 128;

/// A trained battery compiled for batched scoring and persistence.
pub struct CompiledModel {
    /// Names of the kept features, in column order.
    pub feature_names: Vec<String>,
    pub(crate) log_transform: bool,
    pub(crate) standardizer: Standardizer,
    pub(crate) kept: Vec<usize>,
    pub(crate) all_feature_names: Vec<String>,
    pub(crate) hypotheses: Vec<(Hypothesis, CompiledClassifier)>,
    pub(crate) count_model: CompiledRegressor,
    pub(crate) severity_models: Vec<(SeverityBand, CompiledRegressor)>,
    pub(crate) risk_weights: Vec<f64>,
}

/// A corpus prepared for battery scoring: the transformed model-input
/// rows and their columnar stacking. Build once with
/// [`CompiledModel::prepare_batch`], score (repeatedly) with
/// [`CompiledModel::score_battery`].
pub struct PreparedBatch {
    pub(crate) rows: Vec<Vec<f64>>,
    pub(crate) matrix: ColMatrix,
}

impl PreparedBatch {
    /// Number of prepared rows (apps).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Transform a raw feature vector into a model input row, reusing the
/// caller's scratch buffers instead of allocating per app. `full` holds
/// the complete schema-width row; `out` receives the kept columns.
pub(crate) fn prepare_row_into(
    all_feature_names: &[String],
    log_transform: bool,
    standardizer: &Standardizer,
    kept: &[usize],
    fv: &FeatureVector,
    full: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    // One linear merge over the sorted map instead of a lookup per
    // schema column; identical values either way.
    fv.fill_dense(all_feature_names, full);
    if log_transform {
        for v in full.iter_mut() {
            *v = v.signum() * v.abs().ln_1p();
        }
    }
    standardizer.transform_row(full);
    out.clear();
    out.extend(kept.iter().map(|&i| full[i]));
}

impl CompiledModel {
    /// Transform a raw feature vector into the model's input row.
    pub fn prepare_row(&self, fv: &FeatureVector) -> Vec<f64> {
        let mut full = Vec::new();
        let mut out = Vec::new();
        prepare_row_into(
            &self.all_feature_names,
            self.log_transform,
            &self.standardizer,
            &self.kept,
            fv,
            &mut full,
            &mut out,
        );
        out
    }

    pub fn n_hypotheses(&self) -> usize {
        self.hypotheses.len()
    }

    /// Lower every tree-shaped model in the battery to its quantized,
    /// feature-pruned, depth-unrolled kernel (`secml::kernel`) — the
    /// "codegen" stage. A load/reload-time step, not a wire-format
    /// change: `CLVY` bytes are untouched, and scoring stays bitwise
    /// identical (the compiled programs make provably the same decisions
    /// as the interpreter). Returns the number of models whose compiled
    /// kernel is active; models that hit the exactness fallback keep the
    /// interpreter and are simply not counted.
    pub fn optimize(&self) -> usize {
        let classifiers = self.hypotheses.iter().map(|(_, m)| m.optimize());
        let regressors = std::iter::once(&self.count_model)
            .chain(self.severity_models.iter().map(|(_, m)| m))
            .map(|m| m.optimize());
        let active = classifiers.chain(regressors).filter(|&ok| ok).count();
        // Link the battery's kernels to one shared quantization so a
        // scoring call ranks the batch matrix once, not once per model.
        secml::link_battery(
            self.hypotheses.iter().map(|(_, m)| m),
            std::iter::once(&self.count_model).chain(self.severity_models.iter().map(|(_, m)| m)),
        );
        active
    }

    /// Prepare every app's model-input row, fanned out over `jobs`
    /// workers in contiguous chunks through one reused scratch pair per
    /// chunk (satellite of the batching work: the old path allocated a
    /// schema-width vector per app). Chunks are flattened in order, so
    /// the row layout does not depend on `jobs`. Shared by
    /// [`evaluate_batch`](CompiledModel::evaluate_batch) and the
    /// explanation engine ([`crate::explain`]).
    pub(crate) fn prepared_rows(
        &self,
        apps: &[(String, FeatureVector)],
        jobs: usize,
    ) -> Vec<Vec<f64>> {
        let chunk_len = apps.len().div_ceil(jobs.max(1)).max(1);
        let chunks: Vec<&[(String, FeatureVector)]> = apps.chunks(chunk_len).collect();
        pipeline::parallel_map(jobs, &chunks, |_, chunk| {
            let mut full = Vec::new();
            let mut rows = Vec::with_capacity(chunk.len());
            for (_, fv) in *chunk {
                let mut row = Vec::with_capacity(self.kept.len());
                prepare_row_into(
                    &self.all_feature_names,
                    self.log_transform,
                    &self.standardizer,
                    &self.kept,
                    fv,
                    &mut full,
                    &mut row,
                );
                rows.push(row);
            }
            rows
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Prepare a corpus once for (possibly repeated) battery scoring:
    /// rows transformed in contiguous per-worker chunks, stacked into
    /// the single columnar matrix every model consumes. Splitting this
    /// from [`score_battery`](CompiledModel::score_battery) lets a
    /// caller amortize feature prep across models, ablations or repeat
    /// scoring runs; [`evaluate_batch`](CompiledModel::evaluate_batch)
    /// is exactly the two stages plus report assembly.
    pub fn prepare_batch(&self, apps: &[(String, FeatureVector)], jobs: usize) -> PreparedBatch {
        let rows = self.prepared_rows(apps, self.clamp_jobs(apps.len(), jobs));
        let matrix = ColMatrix::from_rows(&rows);
        PreparedBatch { rows, matrix }
    }

    /// The pure inference stage: every model in the battery (hypothesis
    /// classifiers, count regressor, severity regressors — in that
    /// order) scores the entire prepared matrix with its flattened
    /// batch kernel, fanned out over `jobs` pool workers. One
    /// prediction vector per model, rows in corpus order.
    pub fn score_battery(&self, batch: &PreparedBatch, jobs: usize) -> Vec<Vec<f64>> {
        let jobs = self.clamp_jobs(batch.rows.len(), jobs);
        enum Task<'a> {
            Classify(&'a CompiledClassifier),
            Regress(&'a CompiledRegressor),
        }
        let mut tasks: Vec<Task> = self
            .hypotheses
            .iter()
            .map(|(_, m)| Task::Classify(m))
            .collect();
        tasks.push(Task::Regress(&self.count_model));
        tasks.extend(self.severity_models.iter().map(|(_, m)| Task::Regress(m)));
        pipeline::parallel_map(jobs, &tasks, |_, task| match task {
            Task::Classify(model) => model.predict_batch(&batch.matrix),
            Task::Regress(model) => model.predict_batch(&batch.matrix),
        })
    }

    /// Small batches run sequentially regardless of `jobs`; see
    /// [`PARALLEL_MIN_ROWS`].
    fn clamp_jobs(&self, rows: usize, jobs: usize) -> usize {
        if rows < PARALLEL_MIN_ROWS {
            1
        } else if jobs == 0 {
            pipeline::default_workers()
        } else {
            jobs
        }
    }

    /// Score a whole corpus of `(app_name, feature_vector)` pairs into
    /// security reports, in input order.
    ///
    /// [`prepare_batch`](CompiledModel::prepare_batch), then
    /// [`score_battery`](CompiledModel::score_battery), then per-app
    /// report assembly — all three stages fan out over `jobs` pool
    /// workers (0 = all cores). Output is bit-identical to calling
    /// [`crate::metric::evaluate_features`] per app, for any `jobs`.
    pub fn evaluate_batch(
        &self,
        apps: &[(String, FeatureVector)],
        jobs: usize,
    ) -> Vec<SecurityReport> {
        let batch = self.prepare_batch(apps, jobs);
        let predictions = self.score_battery(&batch, jobs);
        let n_hyp = self.hypotheses.len();
        let jobs = self.clamp_jobs(apps.len(), jobs);
        let rows = &batch.rows;

        // Per-app assembly is independent, so it rides the pool too.
        pipeline::parallel_map(jobs, apps, |i, (name, fv)| {
            let hypotheses: Vec<(Hypothesis, f64)> = self
                .hypotheses
                .iter()
                .zip(&predictions)
                .map(|((h, _), scores)| (*h, scores[i]))
                .collect();
            // Same back-transforms as the boxed `predicted_count` /
            // `predicted_severity_counts`.
            let predicted = 10f64.powf(predictions[n_hyp][i]).max(0.0);
            let severity: Vec<(SeverityBand, f64)> = self
                .severity_models
                .iter()
                .enumerate()
                .map(|(s, (band, _))| {
                    (
                        *band,
                        (10f64.powf(predictions[n_hyp + 1 + s][i]) - 1.0).max(0.0),
                    )
                })
                .collect();
            assemble_report(
                name.clone(),
                fv,
                &rows[i],
                &self.feature_names,
                &self.risk_weights,
                hypotheses,
                predicted,
                severity,
            )
        })
    }

    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        put_strings(&mut w, &self.feature_names);
        w.put_u8(self.log_transform as u8);
        w.put_f64s(&self.standardizer.means);
        w.put_f64s(&self.standardizer.stds);
        w.put_usize(self.kept.len());
        for &i in &self.kept {
            w.put_u64(i as u64);
        }
        put_strings(&mut w, &self.all_feature_names);
        w.put_usize(self.hypotheses.len());
        for (hypothesis, model) in &self.hypotheses {
            // Hypotheses serialize by their stable unique name, matched
            // against the standard battery at load time.
            w.put_str(&hypothesis.name());
            model.encode(&mut w);
        }
        self.count_model.encode(&mut w);
        w.put_usize(self.severity_models.len());
        for (band, model) in &self.severity_models {
            let tag = SeverityBand::ALL
                .iter()
                .position(|b| b == band)
                .expect("band is in ALL") as u8;
            w.put_u8(tag);
            model.encode(&mut w);
        }
        w.put_f64s(&self.risk_weights);
        w.into_bytes()
    }

    /// Deserialize from [`to_bytes`](CompiledModel::to_bytes) output.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompiledModel, String> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != MAGIC.as_slice() {
            return Err("not a compiled clairvoyant model (bad magic)".into());
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(format!(
                "unsupported model version {version} (this build reads {VERSION})"
            ));
        }
        let feature_names = get_strings(&mut r)?;
        let log_transform = r.get_u8()? != 0;
        let standardizer = Standardizer {
            means: r.get_f64s()?,
            stds: r.get_f64s()?,
        };
        let n_kept = r.get_usize()?;
        let mut kept = Vec::with_capacity(n_kept.min(1 << 20));
        for _ in 0..n_kept {
            kept.push(
                usize::try_from(r.get_u64()?).map_err(|_| "kept index overflow".to_string())?,
            );
        }
        let all_feature_names = get_strings(&mut r)?;
        let battery = standard_battery();
        let n_hyp = r.get_usize()?;
        let mut hypotheses = Vec::with_capacity(n_hyp.min(1 << 10));
        for _ in 0..n_hyp {
            let name = r.get_str()?;
            let hypothesis = battery
                .iter()
                .find(|h| h.name() == name)
                .copied()
                .ok_or_else(|| format!("unknown hypothesis `{name}` in model file"))?;
            hypotheses.push((hypothesis, CompiledClassifier::decode(&mut r)?));
        }
        let count_model = CompiledRegressor::decode(&mut r)?;
        let n_sev = r.get_usize()?;
        let mut severity_models = Vec::with_capacity(n_sev.min(16));
        for _ in 0..n_sev {
            let tag = r.get_u8()? as usize;
            let band = *SeverityBand::ALL
                .get(tag)
                .ok_or_else(|| format!("unknown severity band tag {tag}"))?;
            severity_models.push((band, CompiledRegressor::decode(&mut r)?));
        }
        let risk_weights = r.get_f64s()?;
        Ok(CompiledModel {
            feature_names,
            log_transform,
            standardizer,
            kept,
            all_feature_names,
            hypotheses,
            count_model,
            severity_models,
            risk_weights,
        })
    }

    /// Write the model to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| format!("cannot write model to `{}`: {e}", path.display()))
    }

    /// Load a model previously written by [`save`](CompiledModel::save).
    pub fn load(path: &Path) -> Result<CompiledModel, String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read model from `{}`: {e}", path.display()))?;
        CompiledModel::from_bytes(&bytes)
    }
}

fn put_strings(w: &mut ByteWriter, strings: &[String]) {
    w.put_usize(strings.len());
    for s in strings {
        w.put_str(s);
    }
}

fn get_strings(r: &mut ByteReader) -> Result<Vec<String>, String> {
    let n = r.get_usize()?;
    if n > r.remaining() {
        return Err(format!("corrupt string count {n}"));
    }
    (0..n).map(|_| r.get_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use crate::testutil::{shared_corpus, shared_model};

    fn corpus_features() -> Vec<(String, FeatureVector)> {
        let corpus = shared_corpus();
        corpus
            .apps
            .iter()
            .take(6)
            .map(|app| (app.spec.name.clone(), Testbed::new().extract(&app.program)))
            .collect()
    }

    fn reports_bit_identical(a: &SecurityReport, b: &SecurityReport) {
        assert_eq!(a.app, b.app);
        assert_eq!(
            a.predicted_vulnerabilities.to_bits(),
            b.predicted_vulnerabilities.to_bits()
        );
        assert_eq!(
            a.high_severity_risk.map(f64::to_bits),
            b.high_severity_risk.map(f64::to_bits)
        );
        assert_eq!(
            a.network_risk.map(f64::to_bits),
            b.network_risk.map(f64::to_bits)
        );
        assert_eq!(a.hypotheses.len(), b.hypotheses.len());
        for ((h1, p1), (h2, p2)) in a.hypotheses.iter().zip(&b.hypotheses) {
            assert_eq!(h1, h2);
            assert_eq!(p1.to_bits(), p2.to_bits(), "{h1:?}");
        }
        for ((s1, n1), (s2, n2)) in a.severity_counts.iter().zip(&b.severity_counts) {
            assert_eq!(s1, s2);
            assert_eq!(n1.to_bits(), n2.to_bits());
        }
        assert_eq!(a.structural_risk.to_bits(), b.structural_risk.to_bits());
        assert_eq!(a.risk_score().to_bits(), b.risk_score().to_bits());
        assert_eq!(a.attributions, b.attributions);
        assert_eq!(a.hints, b.hints);
    }

    #[test]
    fn batch_reports_match_boxed_path_bitwise() {
        let model = shared_model();
        let compiled = model.compile();
        let apps = corpus_features();
        let batch = compiled.evaluate_batch(&apps, 1);
        assert_eq!(batch.len(), apps.len());
        for ((name, fv), report) in apps.iter().zip(&batch) {
            let boxed = crate::metric::evaluate_features(model, name.clone(), fv);
            reports_bit_identical(&boxed, report);
        }
    }

    #[test]
    fn worker_count_does_not_change_reports() {
        let model = shared_model();
        let compiled = model.compile();
        let apps = corpus_features();
        let one = compiled.evaluate_batch(&apps, 1);
        let four = compiled.evaluate_batch(&apps, 4);
        for (a, b) in one.iter().zip(&four) {
            reports_bit_identical(a, b);
        }
    }

    #[test]
    fn worker_fanout_above_the_clamp_is_bit_identical() {
        // Small corpora are clamped to one worker, so tile past
        // PARALLEL_MIN_ROWS to exercise real pool fan-out in all three
        // stages — and prove it still changes nothing.
        let compiled = shared_model().compile();
        let seed = corpus_features();
        let apps: Vec<(String, FeatureVector)> = (0..PARALLEL_MIN_ROWS + 5)
            .map(|i| {
                let (name, fv) = &seed[i % seed.len()];
                (format!("{name}-{i}"), fv.clone())
            })
            .collect();
        let one = compiled.evaluate_batch(&apps, 1);
        let four = compiled.evaluate_batch(&apps, 4);
        for (a, b) in one.iter().zip(&four) {
            reports_bit_identical(a, b);
        }
    }

    #[test]
    fn optimized_battery_reports_are_bit_identical() {
        let model = shared_model();
        let compiled = model.compile();
        let optimized = model.compile();
        assert!(optimized.optimize() > 0, "battery compiles some kernels");
        let apps = corpus_features();
        let interp = compiled.evaluate_batch(&apps, 1);
        let kernel = optimized.evaluate_batch(&apps, 1);
        for (a, b) in interp.iter().zip(&kernel) {
            reports_bit_identical(a, b);
        }
        // And against the boxed scalar reference, transitively.
        for ((name, fv), report) in apps.iter().zip(&kernel) {
            let boxed = crate::metric::evaluate_features(model, name.clone(), fv);
            reports_bit_identical(&boxed, report);
        }
    }

    #[test]
    fn byte_roundtrip_preserves_predictions() {
        let model = shared_model();
        let compiled = model.compile();
        let bytes = compiled.to_bytes();
        let loaded = CompiledModel::from_bytes(&bytes).expect("roundtrip");
        let apps = corpus_features();
        let before = compiled.evaluate_batch(&apps, 2);
        let after = loaded.evaluate_batch(&apps, 2);
        for (a, b) in before.iter().zip(&after) {
            reports_bit_identical(a, b);
        }
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(CompiledModel::from_bytes(b"nope").is_err());
        assert!(CompiledModel::from_bytes(b"CLVY\xFF\xFF\xFF\xFF").is_err());
        let model = shared_model();
        let bytes = model.compile().to_bytes();
        assert!(CompiledModel::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn load_returns_errors_not_panics_on_bad_files() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        // Missing file: an error naming the path, not a panic.
        let missing = dir.join(format!("clairvoyant-no-such-model-{pid}.clvy"));
        let err = CompiledModel::load(&missing).err().expect("missing file");
        assert!(err.contains("cannot read model"), "{err}");

        // Empty file: fails the magic check.
        let empty = dir.join(format!("clairvoyant-empty-model-{pid}.clvy"));
        std::fs::write(&empty, b"").unwrap();
        assert!(CompiledModel::load(&empty).is_err());

        // Truncated file: a real model cut mid-stream must error too.
        let bytes = shared_model().compile().to_bytes();
        let truncated = dir.join(format!("clairvoyant-truncated-model-{pid}.clvy"));
        std::fs::write(&truncated, &bytes[..bytes.len() - 9]).unwrap();
        assert!(CompiledModel::load(&truncated).is_err());

        std::fs::remove_file(&empty).ok();
        std::fs::remove_file(&truncated).ok();
    }
}
