//! The measurement studies of Figures 2 and 3.
//!
//! Figure 2 plots measured LoC (thousands, log scale) against CVE counts
//! for the 164 selected applications, colour-coded by primary language, and
//! fits `log10(#vuln) = 0.17 + 0.39·log10(kLoC)` with **R² = 24.66 %** —
//! the paper's headline evidence that LoC is a *weak* security metric.
//! Figure 3 repeats the exercise with cyclomatic complexity. This module
//! reruns both studies on a generated corpus using the real analyses.

use corpus::Corpus;
use cvedb::SelectionCriteria;
use minilang::Dialect;
use secml::linreg::{simple_regression, SimpleRegression};
use static_analysis::{cyclomatic, loc};
use std::fmt;

/// One scatter point of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyPoint {
    pub app: String,
    pub dialect: Dialect,
    /// Measured thousands of code lines (cloc-equivalent).
    pub kloc: f64,
    /// Total cyclomatic complexity (sum over functions).
    pub cyclomatic: usize,
    /// CVE count from the database.
    pub vulnerabilities: usize,
}

/// Results of one study (Fig 2 uses `regression_loc`, Fig 3 `regression_cc`).
#[derive(Debug, Clone)]
pub struct StudyResult {
    pub points: Vec<StudyPoint>,
    /// OLS of log10(vulns) on log10(kLoC).
    pub regression_loc: SimpleRegression,
    /// OLS of log10(vulns) on log10(cyclomatic).
    pub regression_cc: SimpleRegression,
    /// Apps per language, in `Dialect::ALL` order.
    pub language_counts: [usize; 4],
    /// Total vulnerabilities across selected apps (the paper's 5,975).
    pub total_vulnerabilities: usize,
}

impl StudyResult {
    /// Mean vulnerabilities per app for one language (None if no apps).
    pub fn mean_vulns_for(&self, dialect: Dialect) -> Option<f64> {
        let points: Vec<&StudyPoint> = self
            .points
            .iter()
            .filter(|p| p.dialect == dialect)
            .collect();
        if points.is_empty() {
            return None;
        }
        Some(points.iter().map(|p| p.vulnerabilities as f64).sum::<f64>() / points.len() as f64)
    }
}

impl fmt::Display for StudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} applications, {} vulnerabilities",
            self.points.len(),
            self.total_vulnerabilities
        )?;
        for (i, d) in Dialect::ALL.iter().enumerate() {
            writeln!(f, "  primarily {}: {}", d, self.language_counts[i])?;
        }
        writeln!(
            f,
            "LoC fit:        log10(v) = {:.2} + {:.2}·log10(kLoC), R² = {:.2}%",
            self.regression_loc.intercept,
            self.regression_loc.slope,
            self.regression_loc.r_squared * 100.0
        )?;
        write!(
            f,
            "complexity fit: log10(v) = {:.2} + {:.2}·log10(CC),   R² = {:.2}%",
            self.regression_cc.intercept,
            self.regression_cc.slope,
            self.regression_cc.r_squared * 100.0
        )
    }
}

/// Run the Figure 2/3 study over a corpus: measure each selected app with
/// the cloc-equivalent and the McCabe analysis, join with its CVE count,
/// and fit the log-log regressions.
pub fn run_study(corpus: &Corpus) -> StudyResult {
    let histories = corpus.db.select(&SelectionCriteria::default());
    let mut points = Vec::new();
    let mut language_counts = [0usize; 4];
    let mut total = 0usize;

    for h in &histories {
        let Some(app) = corpus.apps.iter().find(|a| a.spec.name == h.app) else {
            continue;
        };
        let counts = loc::count_program(&app.program);
        let cc = cyclomatic::program_complexity(&app.program);
        let idx = Dialect::ALL
            .iter()
            .position(|d| *d == app.spec.dialect)
            .expect("known dialect");
        language_counts[idx] += 1;
        total += h.total;
        points.push(StudyPoint {
            app: h.app.clone(),
            dialect: app.spec.dialect,
            kloc: counts.kloc(),
            cyclomatic: cc.total,
            vulnerabilities: h.total,
        });
    }

    let log_kloc: Vec<f64> = points.iter().map(|p| p.kloc.max(1e-3).log10()).collect();
    let log_cc: Vec<f64> = points
        .iter()
        .map(|p| (p.cyclomatic.max(1) as f64).log10())
        .collect();
    let log_v: Vec<f64> = points
        .iter()
        .map(|p| (p.vulnerabilities.max(1) as f64).log10())
        .collect();

    StudyResult {
        regression_loc: simple_regression(&log_kloc, &log_v),
        regression_cc: simple_regression(&log_cc, &log_v),
        language_counts,
        total_vulnerabilities: total,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    #[test]
    fn study_produces_points_for_selected_apps() {
        let corpus = Corpus::generate(&CorpusConfig::small(10, 5150));
        let study = run_study(&corpus);
        assert!(study.points.len() >= 9);
        assert!(study.total_vulnerabilities >= 2 * study.points.len());
        for p in &study.points {
            assert!(p.kloc > 0.0);
            assert!(p.cyclomatic > 0);
            assert!(p.vulnerabilities >= 2);
        }
    }

    #[test]
    fn loc_correlation_is_positive_but_weak() {
        // A mid-size corpus gives the calibrated regime room to show.
        let mut config = CorpusConfig::small(40, 99);
        config.language_mix = [30, 4, 3, 3];
        config.max_kloc = 4.0;
        let corpus = Corpus::generate(&config);
        let study = run_study(&corpus);
        let r2 = study.regression_loc.r_squared;
        assert!(
            study.regression_loc.slope > 0.0,
            "slope {}",
            study.regression_loc.slope
        );
        assert!(
            (0.02..0.75).contains(&r2),
            "R² should be weak-but-present, got {r2:.3}"
        );
    }

    #[test]
    fn display_formats_both_fits() {
        let corpus = Corpus::generate(&CorpusConfig::small(8, 7));
        let text = run_study(&corpus).to_string();
        assert!(text.contains("LoC fit"));
        assert!(text.contains("complexity fit"));
        assert!(text.contains("R²"));
    }

    #[test]
    fn language_counts_sum_to_points() {
        let corpus = Corpus::generate(&CorpusConfig::small(12, 3));
        let study = run_study(&corpus);
        let sum: usize = study.language_counts.iter().sum();
        assert_eq!(sum, study.points.len());
    }
}
