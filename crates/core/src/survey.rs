//! The Figure 1 driver: run the proceedings survey and format the chart
//! data (papers per venue using LoC / CVE counts / formal verification).

use corpus::survey::{self, SurveyResult, Venue};
use std::fmt;

/// Figure 1's three bars with per-venue stacking.
#[derive(Debug, Clone)]
pub struct Figure1 {
    pub result: SurveyResult,
    pub papers_surveyed: usize,
}

impl Figure1 {
    /// Generate the synthetic proceedings and run the survey classifier.
    pub fn produce(seed: u64) -> Figure1 {
        let papers = survey::generate_proceedings(seed);
        let result = survey::run_survey(&papers);
        Figure1 {
            result,
            papers_surveyed: papers.len(),
        }
    }
}

/// Column extractor over one `(venue, loc, cve, verified)` survey row.
type RowPick = fn(&(Venue, usize, usize, usize)) -> usize;

impl fmt::Display for Figure1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "survey of {} papers across 5 venues",
            self.papers_surveyed
        )?;
        writeln!(
            f,
            "{:<26} {:>5} {:>5} {:>5} {:>7} {:>8}",
            "evaluation method", "CCS", "PLDI", "SOSP", "ASPLOS", "EuroSys"
        )?;
        let col = |venue: Venue, pick: RowPick| {
            self.result
                .rows
                .iter()
                .find(|r| r.0 == venue)
                .map(pick)
                .unwrap_or(0)
        };
        let methods: [(&str, RowPick, usize); 3] = [
            (
                "Papers using Lines of Code",
                |r| r.1,
                self.result.total_loc(),
            ),
            (
                "Papers using # of CVE reports",
                |r| r.2,
                self.result.total_cve(),
            ),
            (
                "Papers formally verified",
                |r| r.3,
                self.result.total_verified(),
            ),
        ];
        for (label, pick, total) in methods {
            writeln!(
                f,
                "{label:<26} {:>5} {:>5} {:>5} {:>7} {:>8}   (total {total})",
                col(Venue::Ccs, pick),
                col(Venue::Pldi, pick),
                col(Venue::Sosp, pick),
                col(Venue::Asplos, pick),
                col(Venue::Eurosys, pick),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_totals() {
        let fig = Figure1::produce(17);
        assert_eq!(fig.result.total_loc(), 384);
        assert_eq!(fig.result.total_cve(), 116);
        assert_eq!(fig.result.total_verified(), 31);
        assert!(fig.papers_surveyed > 1000);
    }

    #[test]
    fn ordering_matches_figure() {
        // LoC ≫ CVE ≫ formally verified.
        let fig = Figure1::produce(18);
        assert!(fig.result.total_loc() > fig.result.total_cve());
        assert!(fig.result.total_cve() > fig.result.total_verified());
    }

    #[test]
    fn display_renders_table() {
        let text = Figure1::produce(19).to_string();
        assert!(text.contains("Lines of Code"));
        assert!(text.contains("CVE reports"));
        assert!(text.contains("total 384"));
        assert!(text.contains("total 31"));
    }
}
