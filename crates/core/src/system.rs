//! Whole-system evaluation — the paper's future-work question (§5.3).
//!
//! *"An important question for future work is: can we use the same approach
//! of evaluating application programs to evaluate whole systems? We expect
//! that total system security is dependent upon the weakest link, although
//! factors such as which applications are network-facing have a role as
//! well. Similarly, it is challenging to model areas of containment … A
//! goal for future work is to apply the metric to a VM or Docker image,
//! capturing the risk for not just the application, but its supporting
//! infrastructure."*
//!
//! This module implements that proposal: a [`SystemSpec`] is a set of
//! components (each a program evaluated with the trained per-application
//! metric) annotated with *exposure* (network-facing or internal) and
//! *containment* (none / container / VM). The system score is
//! weakest-link-driven, exposure-weighted, containment-discounted, and an
//! inter-component attack chain (front-end compromise → lateral movement →
//! privileged component) is assembled with the attack-graph machinery.

use crate::metric::SecurityReport;
use crate::score::CompiledModel;
use crate::testbed::Testbed;
use crate::train::TrainedModel;
use minilang::ast::{PrivLevel, Program};
use static_analysis::FeatureVector;
use std::fmt;

/// How a component can be reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exposure {
    /// Directly reachable from the network (the paper's "network-facing").
    NetworkFacing,
    /// Reachable only from other components.
    Internal,
    /// Supporting infrastructure (init systems, log daemons, sidecars).
    Infrastructure,
}

impl Exposure {
    /// Weight of this component's risk in the system aggregate.
    fn weight(self) -> f64 {
        match self {
            Exposure::NetworkFacing => 1.0,
            Exposure::Internal => 0.6,
            Exposure::Infrastructure => 0.45,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Exposure::NetworkFacing => "network-facing",
            Exposure::Internal => "internal",
            Exposure::Infrastructure => "infrastructure",
        }
    }
}

/// The containment boundary around a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    /// Shares the host with everything else.
    None,
    /// OS-level container (Docker): lateral movement dampened.
    Container,
    /// Hardware-virtualized boundary: strongly dampened.
    Vm,
}

impl Containment {
    /// Multiplier applied to this component's contribution to *lateral*
    /// (cross-component) risk.
    fn lateral_factor(self) -> f64 {
        match self {
            Containment::None => 1.0,
            Containment::Container => 0.6,
            Containment::Vm => 0.35,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Containment::None => "none",
            Containment::Container => "container",
            Containment::Vm => "vm",
        }
    }
}

/// One deployed component.
pub struct Component {
    pub name: String,
    pub program: Program,
    pub exposure: Exposure,
    pub containment: Containment,
}

/// A whole deployment (the "VM or Docker image" of §5.3).
pub struct SystemSpec {
    pub name: String,
    pub components: Vec<Component>,
}

/// Per-component evaluation inside a system report.
#[derive(Debug, Clone)]
pub struct ComponentReport {
    pub name: String,
    pub exposure: Exposure,
    pub containment: Containment,
    pub report: SecurityReport,
    /// Exposure-weighted, containment-aware contribution to system risk.
    pub weighted_risk: f64,
    /// Runs any `@priv(root)` code.
    pub privileged: bool,
}

/// The whole-system evaluation result.
#[derive(Debug, Clone)]
pub struct SystemReport {
    pub system: String,
    pub components: Vec<ComponentReport>,
    /// The weakest link (highest weighted risk).
    pub weakest: String,
    /// System risk score (0–100).
    pub score: f64,
    /// True when a compromised network-facing component can plausibly chain
    /// into a privileged component that is not behind a containment
    /// boundary.
    pub escalation_chain: Option<(String, String)>,
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system report for `{}`", self.system)?;
        for c in &self.components {
            writeln!(
                f,
                "  {:<18} {:<16} containment={:<10} risk {:>3.0} weighted {:>5.1}{}",
                c.name,
                c.exposure.name(),
                c.containment.name(),
                c.report.risk_score(),
                c.weighted_risk,
                if c.privileged { "  [runs as root]" } else { "" }
            )?;
        }
        writeln!(f, "  weakest link: {}", self.weakest)?;
        if let Some((from, to)) = &self.escalation_chain {
            writeln!(
                f,
                "  escalation chain: {from} → {to} (privileged, uncontained)"
            )?;
        }
        write!(f, "  system risk: {:.0}/100", self.score)
    }
}

/// Evaluate a whole system with the trained per-application metric.
///
/// Aggregation: `score = max(weighted component risks) + chain bonus`,
/// where the weakest-link max implements the paper's expectation and the
/// chain bonus captures network-facing → privileged lateral movement that
/// containment boundaries dampen.
pub fn evaluate_system(model: &TrainedModel, system: &SystemSpec) -> SystemReport {
    evaluate_system_jobs(model, system, 0)
}

/// [`evaluate_system`] with components evaluated on `jobs` workers
/// (0 = all cores). Components are independent and the report assembles
/// them in spec order, so the output is identical for any worker count.
pub fn evaluate_system_jobs(
    model: &TrainedModel,
    system: &SystemSpec,
    jobs: usize,
) -> SystemReport {
    let compiled = model.compile();
    // Codegen before scoring: bit-identical, so system reports cannot
    // tell the kernels from the interpreter.
    compiled.optimize();
    evaluate_system_compiled(&compiled, system, jobs)
}

/// [`evaluate_system_jobs`] against an already-compiled model (e.g. one
/// loaded from disk). Feature extraction fans out per component on the
/// pool, then the whole system is scored in one batched pass — the same
/// engine the CLI `score` subcommand uses. Reports are bit-identical to
/// the boxed per-component path for any worker count.
pub fn evaluate_system_compiled(
    model: &CompiledModel,
    system: &SystemSpec,
    jobs: usize,
) -> SystemReport {
    assert!(
        !system.components.is_empty(),
        "a system needs at least one component"
    );
    let jobs = if jobs == 0 {
        pipeline::default_workers()
    } else {
        jobs
    };
    // Extraction dominates the wall clock; one task per component. The
    // report keeps the program name (not the component name) as the app
    // label, matching `TrainedModel::evaluate`.
    let extracted: Vec<(String, FeatureVector)> =
        pipeline::parallel_map(jobs, &system.components, |_, c| {
            (c.program.name.clone(), Testbed::new().extract(&c.program))
        });
    let reports = model.evaluate_batch(&extracted, jobs);
    let mut components: Vec<ComponentReport> = system
        .components
        .iter()
        .zip(reports)
        .map(|(c, report)| {
            let privileged = c
                .program
                .functions()
                .any(|f| f.privilege() == PrivLevel::Root);
            let weighted_risk = report.risk_score() * c.exposure.weight();
            ComponentReport {
                name: c.name.clone(),
                exposure: c.exposure,
                containment: c.containment,
                report,
                weighted_risk,
                privileged,
            }
        })
        .collect();

    // Weakest link.
    let weakest = components
        .iter()
        .max_by(|a, b| {
            a.weighted_risk
                .partial_cmp(&b.weighted_risk)
                .expect("finite risks")
        })
        .expect("non-empty")
        .name
        .clone();

    // Escalation chain: risky network-facing entry + privileged target
    // whose containment does not break the chain.
    let mut escalation_chain = None;
    let mut chain_bonus = 0.0;
    let entry = components
        .iter()
        .filter(|c| c.exposure == Exposure::NetworkFacing)
        .max_by(|a, b| {
            a.report
                .risk_score()
                .partial_cmp(&b.report.risk_score())
                .expect("finite")
        });
    if let Some(entry) = entry {
        if entry.report.risk_score() > 40.0 {
            let target = components
                .iter()
                .filter(|c| c.name != entry.name && c.privileged)
                .max_by(|a, b| {
                    let la = a.report.risk_score() * a.containment.lateral_factor();
                    let lb = b.report.risk_score() * b.containment.lateral_factor();
                    la.partial_cmp(&lb).expect("finite")
                });
            if let Some(target) = target {
                let lateral = target.report.risk_score() * target.containment.lateral_factor();
                if lateral > 25.0 {
                    escalation_chain = Some((entry.name.clone(), target.name.clone()));
                    chain_bonus = 0.2 * lateral;
                }
            }
        }
    }

    let base = components
        .iter()
        .map(|c| c.weighted_risk)
        .fold(0.0f64, f64::max);
    let score = (base + chain_bonus).clamp(0.0, 100.0);
    components.sort_by(|a, b| {
        b.weighted_risk
            .partial_cmp(&a.weighted_risk)
            .expect("finite")
    });

    SystemReport {
        system: system.name.clone(),
        components,
        weakest,
        score,
        escalation_chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::shared_model;
    use minilang::{parse_program, Dialect};

    fn component(name: &str, src: &str, exposure: Exposure, containment: Containment) -> Component {
        Component {
            name: name.to_string(),
            program: parse_program(name, Dialect::C, &[("m.c".into(), src.into())]).unwrap(),
            exposure,
            containment,
        }
    }

    const RISKY_FRONT: &str = "@endpoint(network)
        fn handle(req: str) { let b: str[16]; strcpy(b, req); system(req); }";
    const SAFE_WORKER: &str = "fn work(n: int) -> int { if n < 0 { return 0; } return n * 2; }";
    const ROOT_AGENT: &str = "@endpoint(local) @priv(root)
        fn apply(cfg: str) { write_file(\"/etc\", cfg); exec(cfg); }";

    fn sys(containment: Containment) -> SystemSpec {
        SystemSpec {
            name: "stack".into(),
            components: vec![
                component(
                    "frontend",
                    RISKY_FRONT,
                    Exposure::NetworkFacing,
                    Containment::None,
                ),
                component("worker", SAFE_WORKER, Exposure::Internal, Containment::None),
                component("agent", ROOT_AGENT, Exposure::Infrastructure, containment),
            ],
        }
    }

    #[test]
    fn weakest_link_drives_the_score() {
        let model = shared_model();
        let report = evaluate_system(model, &sys(Containment::None));
        assert_eq!(report.weakest, "frontend");
        let front = report
            .components
            .iter()
            .find(|c| c.name == "frontend")
            .unwrap();
        assert!(report.score >= front.weighted_risk);
        assert!((0.0..=100.0).contains(&report.score));
    }

    #[test]
    fn escalation_chain_found_when_uncontained() {
        let model = shared_model();
        let report = evaluate_system(model, &sys(Containment::None));
        assert_eq!(
            report.escalation_chain,
            Some(("frontend".to_string(), "agent".to_string())),
            "\n{report}"
        );
    }

    #[test]
    fn vm_containment_lowers_system_risk() {
        let model = shared_model();
        let open = evaluate_system(model, &sys(Containment::None));
        let contained = evaluate_system(model, &sys(Containment::Vm));
        assert!(
            contained.score <= open.score,
            "VM containment must not raise risk: {} vs {}",
            contained.score,
            open.score
        );
    }

    #[test]
    fn single_component_system_matches_app_risk_weighting() {
        let model = shared_model();
        let system = SystemSpec {
            name: "solo".into(),
            components: vec![component(
                "app",
                SAFE_WORKER,
                Exposure::NetworkFacing,
                Containment::None,
            )],
        };
        let report = evaluate_system(model, &system);
        assert_eq!(report.weakest, "app");
        assert!(report.escalation_chain.is_none());
        let app = &report.components[0];
        assert!((report.score - app.weighted_risk).abs() < 1e-9);
    }

    #[test]
    fn internal_exposure_weighs_less_than_network() {
        let model = shared_model();
        let mk = |exposure| SystemSpec {
            name: "x".into(),
            components: vec![component("app", RISKY_FRONT, exposure, Containment::None)],
        };
        let net = evaluate_system(model, &mk(Exposure::NetworkFacing));
        let internal = evaluate_system(model, &mk(Exposure::Internal));
        assert!(net.score > internal.score);
    }

    #[test]
    fn display_renders_components_and_chain() {
        let model = shared_model();
        let text = evaluate_system(model, &sys(Containment::None)).to_string();
        assert!(text.contains("weakest link"));
        assert!(text.contains("frontend"));
        assert!(text.contains("system risk"));
        assert!(text.contains("[runs as root]"));
    }
}
