//! The automated testbed (§5.1).
//!
//! *"We also need an automated framework to collect all the code properties
//! from the sample applications."* The testbed runs every collector family
//! over a program and flattens the results into one [`FeatureVector`]:
//!
//! * the `static-analysis` standard registry (LoC, cyclomatic, Halstead,
//!   counts, call graph, data flow, taint, bounds, paths, smells, language);
//! * the `bugfind` meta-tool (per-rule report counts, severity mix,
//!   multi-tool agreement) — §4.2's "feed the bug reports or count of bug
//!   types into the machine learning engine";
//! * the `attack-graph` crate (RASQ quotient and per-vector counts, attack
//!   graph reachability/shortest-path metrics) — §4.1.

use attack_graph::{interaction_facts, AttackGraph, AttackSurface, VectorKind};
use bugfind::{DiagSeverity, MetaTool};
use minilang::ast::Program;
use static_analysis::{standard_registry, FeatureVector, Registry};

/// The full feature extractor.
pub struct Testbed {
    registry: Registry,
    metatool: MetaTool,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            registry: standard_registry(),
            metatool: MetaTool::new(),
        }
    }
}

impl Testbed {
    /// The standard testbed with every collector enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extract the full feature vector for one program.
    pub fn extract(&self, program: &Program) -> FeatureVector {
        let mut fv = self.registry.run(program);
        self.add_bugfind_features(program, &mut fv);
        self.add_attack_features(program, &mut fv);
        fv
    }

    fn add_bugfind_features(&self, program: &Program, fv: &mut FeatureVector) {
        let report = self.metatool.run(program);
        fv.set("bugfind.total", report.total() as f64);
        fv.set(
            "bugfind.errors",
            report.count_severity(DiagSeverity::Error) as f64,
        );
        fv.set(
            "bugfind.warnings",
            report.count_severity(DiagSeverity::Warning) as f64,
        );
        fv.set(
            "bugfind.notes",
            report.count_severity(DiagSeverity::Note) as f64,
        );
        fv.set("bugfind.multi_tool_sites", report.multi_tool_sites as f64);
        // Per-CWE hint counts for the classes the hypotheses ask about.
        for cwe in [20u32, 22, 121, 134, 190, 200, 367, 401, 416, 798] {
            fv.set(format!("bugfind.cwe_{cwe}"), report.count_cwe(cwe) as f64);
        }
        // Density: findings per function (size-independent signal).
        let functions = program.function_count().max(1) as f64;
        fv.set("bugfind.density", report.total() as f64 / functions);
    }

    fn add_attack_features(&self, program: &Program, fv: &mut FeatureVector) {
        let surface = AttackSurface::measure(program);
        fv.set("rasq.quotient", surface.quotient);
        let kinds = [
            (VectorKind::NetworkEndpoint, "rasq.network_endpoints"),
            (VectorKind::LocalEndpoint, "rasq.local_endpoints"),
            (VectorKind::FileEndpoint, "rasq.file_endpoints"),
            (VectorKind::InputChannel, "rasq.input_channels"),
            (VectorKind::ProcessSpawn, "rasq.process_spawns"),
            (VectorKind::PrivilegedCode, "rasq.privileged_functions"),
            (VectorKind::UnresolvedExtern, "rasq.unresolved_externs"),
        ];
        for (kind, name) in kinds {
            fv.set(name, surface.count(kind) as f64);
        }

        // Attack graph: exploit facts are the endpoints whose parameters can
        // reach a dangerous sink (the exposed taint flows).
        let taint = static_analysis::taint::analyze(program);
        let vulnerable: Vec<String> = taint
            .flows
            .iter()
            .filter(|f| f.via_parameters)
            .map(|f| f.function.clone())
            .collect();
        let graph = AttackGraph::from_facts(interaction_facts(program, &vulnerable));
        let metrics = graph.metrics();
        fv.set(
            "attackgraph.goal_reachable",
            metrics.goal_reachable as u8 as f64,
        );
        fv.set(
            "attackgraph.shortest_path",
            metrics.shortest_path_len.map(|n| n as f64).unwrap_or(0.0),
        );
        fv.set(
            "attackgraph.easiest_cost",
            metrics.easiest_path_cost.unwrap_or(10.0),
        );
        fv.set("attackgraph.paths", metrics.minimal_paths as f64);
        fv.set("attackgraph.exploits", metrics.exploit_count as f64);
    }
}

/// Version of the testbed's collector schema, part of every pipeline
/// cache key. Bump whenever a collector is added, removed, or changes
/// meaning — stale cached vectors are invalidated wholesale.
pub const TESTBED_SCHEMA_VERSION: u64 = 1;

impl pipeline::Extractor for Testbed {
    fn extract(&self, program: &Program) -> FeatureVector {
        Testbed::extract(self, program)
    }

    fn schema_version(&self) -> u64 {
        TESTBED_SCHEMA_VERSION
    }

    /// The schema-stable degraded vector: every feature name the testbed
    /// emits, all zero. Feature names are program-independent (asserted
    /// by `feature_names_are_stable_across_programs` below), so one
    /// probe extraction over a trivial program yields the full schema.
    fn degraded(&self) -> FeatureVector {
        static SCHEMA: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                let probe = minilang::parse_program(
                    "schema-probe",
                    minilang::Dialect::C,
                    &[("probe.c".to_string(), "fn probe() { }".to_string())],
                )
                .expect("trivial probe program parses");
                Testbed::new()
                    .extract(&probe)
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            })
            .iter()
            .map(|name| (name.clone(), 0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program(src: &str) -> Program {
        parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    #[test]
    fn extracts_all_feature_families() {
        let p = program(
            "@endpoint(network)
             fn handle(req: str) { let buf: str[32]; strcpy(buf, req); }
             fn util(n: int) -> int { return n * 2; }",
        );
        let fv = Testbed::new().extract(&p);
        for prefix in [
            "loc.",
            "cyclomatic.",
            "taint.",
            "bugfind.",
            "rasq.",
            "attackgraph.",
        ] {
            assert!(
                !fv.with_prefix(prefix).is_empty(),
                "missing family {prefix}"
            );
        }
        assert!(
            fv.len() >= 70,
            "expected a wide unified vector, got {}",
            fv.len()
        );
    }

    #[test]
    fn vulnerable_endpoint_makes_goal_reachable() {
        let p = program(
            "@endpoint(network) @priv(root)
             fn handle(req: str) { system(req); }",
        );
        let fv = Testbed::new().extract(&p);
        assert_eq!(fv.get("attackgraph.goal_reachable"), Some(1.0));
        assert!(fv.get("bugfind.total").unwrap() > 0.0);
        assert!(fv.get("rasq.quotient").unwrap() > 0.0);
    }

    #[test]
    fn clean_program_is_low_risk_across_families() {
        let p = program("fn pure(a: int, b: int) -> int { return a + b; }");
        let fv = Testbed::new().extract(&p);
        assert_eq!(fv.get("attackgraph.goal_reachable"), Some(0.0));
        assert_eq!(fv.get("bugfind.total"), Some(0.0));
        assert_eq!(fv.get("rasq.quotient"), Some(0.0));
        assert_eq!(fv.get("taint.flows"), Some(0.0));
    }

    #[test]
    fn feature_names_are_stable_across_programs() {
        let a = Testbed::new().extract(&program("fn f() { }"));
        let b = Testbed::new().extract(&program("@endpoint(network) fn g(q: str) { exec(q); }"));
        assert_eq!(
            a.names(),
            b.names(),
            "feature schema must not depend on program content"
        );
    }

    #[test]
    fn degraded_vector_matches_live_schema() {
        use pipeline::Extractor as _;
        let testbed = Testbed::new();
        let degraded = testbed.degraded();
        let live = testbed.extract(&program("fn f(s: str) { printf(s); }"));
        assert_eq!(
            degraded.names(),
            live.names(),
            "degraded vector must be schema-stable"
        );
        assert!(degraded.iter().all(|(_, v)| v == 0.0));
    }

    #[test]
    fn density_is_size_normalized() {
        let p = program("fn f(s: str) { printf(s); }");
        let fv = Testbed::new().extract(&p);
        assert_eq!(fv.get("bugfind.density"), Some(1.0));
    }
}
