//! The automated testbed (§5.1).
//!
//! *"We also need an automated framework to collect all the code properties
//! from the sample applications."* The testbed runs every collector family
//! over a program and flattens the results into one [`FeatureVector`]:
//!
//! * the `static-analysis` standard registry (LoC, cyclomatic, Halstead,
//!   counts, call graph, data flow, taint, bounds, paths, smells, language);
//! * the `bugfind` meta-tool (per-rule report counts, severity mix,
//!   multi-tool agreement) — §4.2's "feed the bug reports or count of bug
//!   types into the machine learning engine";
//! * the `attack-graph` crate (RASQ quotient and per-vector counts, attack
//!   graph reachability/shortest-path metrics) — §4.1.
//!
//! All three families share one [`AnalysisContext`] built once per
//! program: the registry collectors read its precomputed CFGs and bitset
//! fixpoints, the bug checkers reuse the same CFGs/intervals through
//! `MetaTool::run_ctx`, and the attack-graph exploit facts come from the
//! context's single interprocedural taint pass (the legacy path ran
//! `taint::analyze` three times per program). [`Testbed::extract_legacy`]
//! preserves that pre-fusion path for the equivalence property tests and
//! the `analysis_throughput` benchmark.

use attack_graph::{interaction_facts, AttackGraph, AttackSurface, VectorKind};
use bugfind::{DiagSeverity, MetaReport, MetaTool};
use minilang::ast::Program;
use static_analysis::context::{standard_path_config, AnalysisContext, FunctionContext};
use static_analysis::taint::TaintReport;
use static_analysis::{standard_registry, FeatureVector, Registry};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The full feature extractor.
pub struct Testbed {
    registry: Registry,
    metatool: MetaTool,
    /// Worker threads for per-function context construction (1 = inline,
    /// 0 = one per core). Vectors are identical for any value.
    fn_jobs: usize,
    /// Cumulative per-collector wall time in micros, drained into the
    /// pipeline report by [`pipeline::Extractor::take_collector_timings`].
    timings: Mutex<BTreeMap<String, u64>>,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            registry: standard_registry(),
            metatool: MetaTool::new(),
            fn_jobs: 1,
            timings: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Testbed {
    /// The standard testbed with every collector enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fan per-function context construction out over `jobs` worker
    /// threads (0 = one per core). Function contexts are independent
    /// once interning is done and merge back in program order, so the
    /// extracted vector is bit-identical for any worker count.
    pub fn with_fn_jobs(mut self, jobs: usize) -> Self {
        self.fn_jobs = jobs;
        self
    }

    /// Extract the full feature vector for one program.
    pub fn extract(&self, program: &Program) -> FeatureVector {
        let start = Instant::now();
        let cx = self.build_context(program);
        self.record("context", start.elapsed());
        self.run_families(program, &cx)
    }

    /// Run every collector family over a prebuilt context and merge the
    /// results. This is the whole of [`extract`](Testbed::extract) minus
    /// context construction — the incremental engine assembles its own
    /// context from cached per-function entries and joins back here, so
    /// the merged vector is produced by literally the same code path.
    pub(crate) fn run_families(
        &self,
        program: &Program,
        cx: &AnalysisContext<'_>,
    ) -> FeatureVector {
        let (mut fv, collectors) = self.registry.run_with_timings(cx);
        {
            let mut timings = self.timings.lock().unwrap();
            for (name, micros) in collectors {
                *timings.entry(name).or_insert(0) += micros;
            }
        }

        let start = Instant::now();
        let report = self.metatool.run_ctx(cx);
        Self::set_bugfind(&report, program, &mut fv);
        self.record("bugfind", start.elapsed());

        let start = Instant::now();
        Self::set_attack(program, &cx.taint, &mut fv);
        self.record("attackgraph", start.elapsed());
        fv
    }

    /// The pre-fusion extraction path: every analysis rebuilds its own
    /// CFGs, the fixpoints hash variable-name strings, and the
    /// interprocedural taint pass runs three times (taint features,
    /// attack features, path-traversal checker). Kept as the oracle the
    /// fused engine is raced against and asserted bit-identical to.
    pub fn extract_legacy(&self, program: &Program) -> FeatureVector {
        let mut fv = static_analysis::legacy_standard_vector(program);
        let report = self.metatool.run(program);
        Self::set_bugfind(&report, program, &mut fv);
        let taint = static_analysis::taint::analyze(program);
        Self::set_attack(program, &taint, &mut fv);
        fv
    }

    fn build_context<'p>(&self, program: &'p Program) -> AnalysisContext<'p> {
        if self.fn_jobs == 1 {
            return AnalysisContext::build(program);
        }
        let workers = if self.fn_jobs == 0 {
            pipeline::default_workers()
        } else {
            self.fn_jobs
        };
        AnalysisContext::build_with(program, |symbols, funcs| {
            pipeline::parallel_map(workers, funcs, |_, &f| {
                FunctionContext::build(f, symbols, &standard_path_config())
            })
        })
    }

    fn record(&self, name: &str, took: Duration) {
        *self
            .timings
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0) += took.as_micros() as u64;
    }

    fn set_bugfind(report: &MetaReport, program: &Program, fv: &mut FeatureVector) {
        fv.set("bugfind.total", report.total() as f64);
        fv.set(
            "bugfind.errors",
            report.count_severity(DiagSeverity::Error) as f64,
        );
        fv.set(
            "bugfind.warnings",
            report.count_severity(DiagSeverity::Warning) as f64,
        );
        fv.set(
            "bugfind.notes",
            report.count_severity(DiagSeverity::Note) as f64,
        );
        fv.set("bugfind.multi_tool_sites", report.multi_tool_sites as f64);
        // Per-CWE hint counts for the classes the hypotheses ask about.
        for cwe in [20u32, 22, 121, 134, 190, 200, 367, 401, 416, 798] {
            fv.set(format!("bugfind.cwe_{cwe}"), report.count_cwe(cwe) as f64);
        }
        // Density: findings per function (size-independent signal).
        let functions = program.function_count().max(1) as f64;
        fv.set("bugfind.density", report.total() as f64 / functions);
    }

    fn set_attack(program: &Program, taint: &TaintReport, fv: &mut FeatureVector) {
        let surface = AttackSurface::measure(program);
        fv.set("rasq.quotient", surface.quotient);
        let kinds = [
            (VectorKind::NetworkEndpoint, "rasq.network_endpoints"),
            (VectorKind::LocalEndpoint, "rasq.local_endpoints"),
            (VectorKind::FileEndpoint, "rasq.file_endpoints"),
            (VectorKind::InputChannel, "rasq.input_channels"),
            (VectorKind::ProcessSpawn, "rasq.process_spawns"),
            (VectorKind::PrivilegedCode, "rasq.privileged_functions"),
            (VectorKind::UnresolvedExtern, "rasq.unresolved_externs"),
        ];
        for (kind, name) in kinds {
            fv.set(name, surface.count(kind) as f64);
        }

        // Attack graph: exploit facts are the endpoints whose parameters can
        // reach a dangerous sink (the exposed taint flows).
        let vulnerable: Vec<String> = taint
            .flows
            .iter()
            .filter(|f| f.via_parameters)
            .map(|f| f.function.clone())
            .collect();
        let graph = AttackGraph::from_facts(interaction_facts(program, &vulnerable));
        let metrics = graph.metrics();
        fv.set(
            "attackgraph.goal_reachable",
            metrics.goal_reachable as u8 as f64,
        );
        fv.set(
            "attackgraph.shortest_path",
            metrics.shortest_path_len.map(|n| n as f64).unwrap_or(0.0),
        );
        fv.set(
            "attackgraph.easiest_cost",
            metrics.easiest_path_cost.unwrap_or(10.0),
        );
        fv.set("attackgraph.paths", metrics.minimal_paths as f64);
        fv.set("attackgraph.exploits", metrics.exploit_count as f64);
    }
}

/// Version of the testbed's collector schema, part of every pipeline
/// cache key. Bump whenever a collector is added, removed, or changes
/// meaning — stale cached vectors are invalidated wholesale.
/// (v2: single-pass `AnalysisContext` engine. v3: deterministic
/// program-order duplicate-code detection over per-statement digests.)
pub const TESTBED_SCHEMA_VERSION: u64 = 3;

impl pipeline::Extractor for Testbed {
    fn extract(&self, program: &Program) -> FeatureVector {
        Testbed::extract(self, program)
    }

    fn schema_version(&self) -> u64 {
        TESTBED_SCHEMA_VERSION
    }

    /// Digest of the collector set actually wired in (registry collector
    /// names + bugfind tool names + the schema version), so a cached
    /// vector is only reused by a testbed with the same collectors.
    fn fingerprint(&self) -> u64 {
        let mut h = pipeline::fnv::Fnv1a::new();
        h.write_u64(TESTBED_SCHEMA_VERSION);
        for name in self.registry.names() {
            h.write_str(name);
        }
        for name in self.metatool.tool_names() {
            h.write_str(name);
        }
        h.finish()
    }

    fn take_collector_timings(&self) -> Vec<(String, u64)> {
        let mut timings = self.timings.lock().unwrap();
        std::mem::take(&mut *timings).into_iter().collect()
    }

    /// The schema-stable degraded vector: every feature name the testbed
    /// emits, all zero. Feature names are program-independent (asserted
    /// by `feature_names_are_stable_across_programs` below), so one
    /// probe extraction over a trivial program yields the full schema.
    fn degraded(&self) -> FeatureVector {
        static SCHEMA: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
        SCHEMA
            .get_or_init(|| {
                let probe = minilang::parse_program(
                    "schema-probe",
                    minilang::Dialect::C,
                    &[("probe.c".to_string(), "fn probe() { }".to_string())],
                )
                .expect("trivial probe program parses");
                Testbed::new()
                    .extract(&probe)
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            })
            .iter()
            .map(|name| (name.clone(), 0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_program, Dialect};

    fn program(src: &str) -> Program {
        parse_program("app", Dialect::C, &[("m.c".into(), src.into())]).unwrap()
    }

    #[test]
    fn extracts_all_feature_families() {
        let p = program(
            "@endpoint(network)
             fn handle(req: str) { let buf: str[32]; strcpy(buf, req); }
             fn util(n: int) -> int { return n * 2; }",
        );
        let fv = Testbed::new().extract(&p);
        for prefix in [
            "loc.",
            "cyclomatic.",
            "taint.",
            "bugfind.",
            "rasq.",
            "attackgraph.",
        ] {
            assert!(
                !fv.with_prefix(prefix).is_empty(),
                "missing family {prefix}"
            );
        }
        assert!(
            fv.len() >= 70,
            "expected a wide unified vector, got {}",
            fv.len()
        );
    }

    #[test]
    fn vulnerable_endpoint_makes_goal_reachable() {
        let p = program(
            "@endpoint(network) @priv(root)
             fn handle(req: str) { system(req); }",
        );
        let fv = Testbed::new().extract(&p);
        assert_eq!(fv.get("attackgraph.goal_reachable"), Some(1.0));
        assert!(fv.get("bugfind.total").unwrap() > 0.0);
        assert!(fv.get("rasq.quotient").unwrap() > 0.0);
    }

    #[test]
    fn clean_program_is_low_risk_across_families() {
        let p = program("fn pure(a: int, b: int) -> int { return a + b; }");
        let fv = Testbed::new().extract(&p);
        assert_eq!(fv.get("attackgraph.goal_reachable"), Some(0.0));
        assert_eq!(fv.get("bugfind.total"), Some(0.0));
        assert_eq!(fv.get("rasq.quotient"), Some(0.0));
        assert_eq!(fv.get("taint.flows"), Some(0.0));
    }

    #[test]
    fn feature_names_are_stable_across_programs() {
        let a = Testbed::new().extract(&program("fn f() { }"));
        let b = Testbed::new().extract(&program("@endpoint(network) fn g(q: str) { exec(q); }"));
        assert_eq!(
            a.names(),
            b.names(),
            "feature schema must not depend on program content"
        );
    }

    #[test]
    fn degraded_vector_matches_live_schema() {
        use pipeline::Extractor as _;
        let testbed = Testbed::new();
        let degraded = testbed.degraded();
        let live = testbed.extract(&program("fn f(s: str) { printf(s); }"));
        assert_eq!(
            degraded.names(),
            live.names(),
            "degraded vector must be schema-stable"
        );
        assert!(degraded.iter().all(|(_, v)| v == 0.0));
    }

    #[test]
    fn density_is_size_normalized() {
        let p = program("fn f(s: str) { printf(s); }");
        let fv = Testbed::new().extract(&p);
        assert_eq!(fv.get("bugfind.density"), Some(1.0));
    }

    #[test]
    fn fused_extraction_matches_legacy_path() {
        let p = program(
            "global limit: int = 4;
             @endpoint(network)
             fn serve(req: str) {
                 let buf: str[8];
                 strcpy(buf, req);
                 let data: str = read_file(req);
                 send(0, data);
                 printf(req);
             }
             fn helper(i: int) -> int {
                 let b: int[4];
                 let waste: int = 1;
                 waste = 2;
                 if i >= 0 && i < limit { b[i] = 1; }
                 while i < 10 { i += 1; }
                 return b[0];
             }",
        );
        let testbed = Testbed::new();
        assert_eq!(testbed.extract(&p), testbed.extract_legacy(&p));
    }

    #[test]
    fn fn_jobs_do_not_change_the_vector() {
        let p = program(
            "@endpoint(network) fn a(q: str) { exec(q); }
             fn b(n: int) -> int { let x: int = n; return x * 2; }
             fn c() { let buf: int[4]; buf[9] = 1; }
             fn d(i: int) { for j = 0; j < i; j += 1 { log_msg(\"t\"); } }",
        );
        let sequential = Testbed::new().extract(&p);
        let parallel = Testbed::new().with_fn_jobs(4).extract(&p);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn collector_timings_cover_every_stage() {
        use pipeline::Extractor as _;
        let testbed = Testbed::new();
        let _ = testbed.extract(&program("fn f(s: str) { printf(s); }"));
        let timings = testbed.take_collector_timings();
        let names: Vec<&str> = timings.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["context", "bugfind", "attackgraph", "loc", "taint"] {
            assert!(names.contains(&expected), "missing timing for {expected}");
        }
        // Drained: a second take is empty until the next extraction.
        assert!(testbed.take_collector_timings().is_empty());
    }

    #[test]
    fn fingerprint_tracks_collector_set() {
        use pipeline::Extractor as _;
        let standard = Testbed::new().fingerprint();
        assert_eq!(standard, Testbed::new().fingerprint());
        let trimmed = Testbed {
            registry: static_analysis::Registry::new(),
            ..Testbed::new()
        };
        assert_ne!(standard, trimmed.fingerprint());
    }
}
