//! The training phase (§5.2, Figure 4).
//!
//! Assembles the dataset (testbed features × CVE-derived labels over the
//! §5.1-selected applications), applies the data transformations the paper
//! lists among the main challenges (log transform for heavy-tailed counts,
//! standardization, optional feature filtering), trains one classifier per
//! hypothesis plus a vulnerability-count regressor, and cross-validates
//! everything "within the ground truth".

use crate::extract;
use crate::hypothesis::{standard_battery, Hypothesis};
use crate::score::CompiledModel;
use corpus::Corpus;
use cvedb::SelectionCriteria;
use pipeline::{parallel_map, PipelineConfig, PipelineReport};
use secml::dataset::{ColMatrix, ColMatrixBuilder, Dataset};
use secml::eval::{
    cross_validate_classifier_jobs, cross_validate_regressor_jobs, ClassificationReport,
    RegressionReport,
};
use secml::forest::{ForestConfig, RandomForest};
use secml::knn::Knn;
use secml::linreg::LinearRegression;
use secml::logreg::LogisticRegression;
use secml::nb::GaussianNb;
use secml::preprocess::Standardizer;
use secml::select::{
    info_gain_column, info_gain_scores, label_entropy, pearson_column, pearson_scores,
    pearson_target_stats, top_k,
};
use secml::tree::DecisionTree;
use secml::{Classifier, Regressor};
use std::fmt;

/// A heap-allocated classifier usable across threads (models are stored in
/// shared `TrainedModel`s).
pub type BoxedClassifier = Box<dyn Classifier + Send + Sync>;

/// Which learner family to use for the hypothesis classifiers — the
/// "tuning the parameters to the learning algorithms" knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    Logistic,
    NaiveBayes,
    DecisionTree,
    RandomForest,
    Knn,
}

/// Forest size used when no explicit `forest_trees` is configured.
pub const DEFAULT_FOREST_TREES: usize = 20;

impl Learner {
    pub const ALL: [Learner; 5] = [
        Learner::Logistic,
        Learner::NaiveBayes,
        Learner::DecisionTree,
        Learner::RandomForest,
        Learner::Knn,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Learner::Logistic => "logistic",
            Learner::NaiveBayes => "naive-bayes",
            Learner::DecisionTree => "decision-tree",
            Learner::RandomForest => "random-forest",
            Learner::Knn => "knn",
        }
    }

    /// Instantiate an untrained classifier (sequential training).
    pub fn make(self) -> BoxedClassifier {
        self.make_jobs(1)
    }

    /// Instantiate an untrained classifier whose fit may use up to `jobs`
    /// worker threads (only the random forest parallelizes; trained
    /// output never depends on `jobs`).
    pub fn make_jobs(self, jobs: usize) -> BoxedClassifier {
        self.make_sized(DEFAULT_FOREST_TREES, jobs)
    }

    /// Like [`make_jobs`](Learner::make_jobs), with an explicit ensemble
    /// size. Only the random forest reads `trees`; other learners have no
    /// ensemble to size. Larger forests are the serving-scale stress case
    /// for the batched inference engine (see the `inference_throughput`
    /// bench).
    pub fn make_sized(self, trees: usize, jobs: usize) -> BoxedClassifier {
        match self {
            Learner::Logistic => Box::new(LogisticRegression::new()),
            Learner::NaiveBayes => Box::new(GaussianNb::new()),
            Learner::DecisionTree => Box::new(DecisionTree::new()),
            Learner::RandomForest => Box::new(RandomForest::with_config(ForestConfig {
                n_trees: trees,
                jobs,
                ..Default::default()
            })),
            Learner::Knn => Box::new(Knn::new(5)),
        }
    }
}

impl fmt::Display for Learner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the top-k feature filter ranks candidates (§5.2's "filtering
/// features that are irrelevant to the prediction").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMethod {
    /// |Pearson correlation| against the log-count target.
    #[default]
    PearsonVsCount,
    /// Information gain against the CVSS>7 labels (the Weka
    /// `InfoGainAttributeEval` route).
    InfoGainVsHighSeverity,
}

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    pub learner: Learner,
    pub folds: usize,
    /// Keep only the top-k features by the configured ranking
    /// (None = keep all) — §5.2's "filtering features that are irrelevant".
    pub top_k_features: Option<usize>,
    /// Ranking used by the top-k filter.
    pub selection_method: SelectionMethod,
    /// Apply signed log1p before standardization.
    pub log_transform: bool,
    /// Which applications qualify as ground truth.
    pub selection: SelectionCriteria,
    /// Restrict features to one name prefix (ablation hook; None = all).
    pub feature_prefix: Option<String>,
    /// Feature-extraction engine settings: worker count, cache mode,
    /// per-program budget. Defaults to auto workers with an in-memory
    /// cache; parallel extraction is byte-identical to sequential, so
    /// training stays deterministic regardless of `jobs`.
    pub pipeline: PipelineConfig,
    /// Worker threads for ML training (hypothesis batteries, CV folds,
    /// forest trees). 0 = inherit `pipeline.jobs` (whose own 0 means all
    /// cores). Trained models and reports are byte-identical for every
    /// value.
    pub train_jobs: usize,
    /// Trees per random forest (ignored by the other learners). The
    /// default keeps training fast; serving-heavy deployments can grow
    /// the ensemble and amortize it through the compiled batch engine.
    pub forest_trees: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            learner: Learner::Logistic,
            folds: 5,
            top_k_features: None,
            selection_method: SelectionMethod::default(),
            log_transform: true,
            selection: SelectionCriteria::default(),
            feature_prefix: None,
            pipeline: PipelineConfig::default(),
            train_jobs: 0,
            forest_trees: DEFAULT_FOREST_TREES,
        }
    }
}

/// Builds [`TrainedModel`]s from a corpus.
#[derive(Default)]
pub struct Trainer {
    pub config: TrainerConfig,
}

impl Trainer {
    pub fn new() -> Trainer {
        Trainer::default()
    }

    pub fn with_config(config: TrainerConfig) -> Trainer {
        Trainer { config }
    }

    pub fn with_learner(learner: Learner) -> Trainer {
        Trainer {
            config: TrainerConfig {
                learner,
                ..Default::default()
            },
        }
    }

    /// ML worker count: `train_jobs`, falling back to `pipeline.jobs`,
    /// falling back to all cores.
    fn resolved_train_jobs(&self) -> usize {
        let jobs = if self.config.train_jobs == 0 {
            self.config.pipeline.jobs
        } else {
            self.config.train_jobs
        };
        if jobs == 0 {
            pipeline::default_workers()
        } else {
            jobs
        }
    }

    /// Train on the corpus; panics if no application passes selection
    /// (a corpus misconfiguration, not a runtime condition).
    pub fn train(&self, corpus: &Corpus) -> TrainedModel {
        self.train_with_report(corpus).0
    }

    /// Train and also return the cross-validation report.
    pub fn train_with_report(&self, corpus: &Corpus) -> (TrainedModel, TrainingReport) {
        let histories = corpus.db.select(&self.config.selection);
        assert!(
            !histories.is_empty(),
            "no application passed the ground-truth selection criteria"
        );

        // Feature matrix over the selected applications, extracted
        // through the pipeline engine (parallel + cached + fault
        // isolated; output order matches `histories`).
        let selected: Vec<&corpus::GeneratedApp> = histories
            .iter()
            .map(|h| {
                corpus
                    .apps
                    .iter()
                    .find(|a| a.spec.name == h.app)
                    .unwrap_or_else(|| panic!("history for unknown app {}", h.app))
            })
            .collect();
        let extraction =
            extract::extract_apps(selected.iter().copied(), self.config.pipeline.clone());
        let items: Vec<(String, Vec<(String, f64)>)> = extraction
            .features
            .iter()
            .map(|(name, fv)| {
                (
                    name.clone(),
                    fv.iter().map(|(k, v)| (k.to_string(), v)).collect(),
                )
            })
            .collect();
        let mut dataset = Dataset::from_named(&items);
        if let Some(prefix) = &self.config.feature_prefix {
            dataset = dataset.project_prefix(prefix);
        }

        // Count target (log10, as in Figure 2).
        let counts: Vec<f64> = histories.iter().map(|h| (h.total as f64).log10()).collect();

        // Transformations.
        let mut rows = dataset.rows.clone();
        if self.config.log_transform {
            secml::preprocess::log1p_rows(&mut rows);
        }
        let standardizer = Standardizer::fit(&rows);
        standardizer.transform(&mut rows);

        // Feature filtering (Pearson vs the count target, or info gain vs
        // the high-severity labels).
        let kept: Vec<usize> = match self.config.top_k_features {
            Some(k) => {
                let scores = match self.config.selection_method {
                    SelectionMethod::PearsonVsCount => pearson_scores(&rows, &counts),
                    SelectionMethod::InfoGainVsHighSeverity => {
                        let labels: Vec<usize> = histories
                            .iter()
                            .map(|h| Hypothesis::AnyHighSeverity.label(h))
                            .collect();
                        info_gain_scores(&rows, &labels)
                    }
                };
                let mut idx = top_k(&scores, k.min(dataset.width()));
                idx.sort_unstable();
                idx
            }
            None => (0..dataset.width()).collect(),
        };
        let feature_names: Vec<String> = kept
            .iter()
            .map(|&i| dataset.feature_names[i].clone())
            .collect();
        let rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| kept.iter().map(|&i| r[i]).collect())
            .collect();

        // One columnar matrix for every learner below: each column is
        // sorted once here and every CV fold and forest bootstrap derives
        // its own order from that.
        let matrix = ColMatrix::from_rows(&rows);
        if matrix.n_cols() > 0 {
            matrix.sorted(0);
        }

        // Hypothesis classifiers, fanned out over the pool. The worker
        // budget splits into `w1` concurrent hypotheses × `w2` concurrent
        // CV folds each, so total threads stay ≈ `train_jobs`. Results
        // are assembled in battery order, so the report and model are
        // byte-identical for every worker count.
        let battery = standard_battery();
        let jobs = self.resolved_train_jobs();
        let labelled: Vec<(Hypothesis, Vec<usize>, usize)> = battery
            .iter()
            .map(|&hypothesis| {
                let labels: Vec<usize> = histories.iter().map(|h| hypothesis.label(h)).collect();
                let positives = labels.iter().sum();
                (hypothesis, labels, positives)
            })
            .collect();
        let trainable: Vec<&(Hypothesis, Vec<usize>, usize)> = labelled
            .iter()
            .filter(|(_, labels, p)| *p > 0 && *p < labels.len())
            .collect();
        let w1 = jobs.min(trainable.len()).max(1);
        let w2 = (jobs / w1).max(1);
        let trained: Vec<(ClassificationReport, BoxedClassifier)> =
            parallel_map(w1, &trainable, |_, (_, labels, _)| {
                let report = cross_validate_classifier_jobs(
                    || self.config.learner.make_sized(self.config.forest_trees, 1),
                    &matrix,
                    labels,
                    self.config.folds,
                    w2,
                );
                let mut model = self.config.learner.make_sized(self.config.forest_trees, w2);
                model.fit_matrix(&matrix, labels);
                (report, model)
            });

        let mut hypotheses = Vec::new();
        let mut hypothesis_reports = Vec::new();
        let mut trained_iter = trained.into_iter();
        for (hypothesis, labels, positives) in labelled {
            let base_rate = positives as f64 / labels.len() as f64;
            if positives == 0 || positives == labels.len() {
                // Degenerate: the constant answer is exact.
                hypothesis_reports.push(HypothesisOutcome {
                    hypothesis,
                    report: None,
                    base_rate,
                });
                continue;
            }
            let (report, model) = trained_iter.next().expect("one result per trainable task");
            hypothesis_reports.push(HypothesisOutcome {
                hypothesis,
                report: Some(report),
                base_rate,
            });
            hypotheses.push((hypothesis, model));
        }

        // Count regressor (always linear, for inspectable weights).
        let count_cv = cross_validate_regressor_jobs(
            || LinearRegression::ridge(1.0),
            &matrix,
            &counts,
            self.config.folds,
            jobs,
        );
        let mut count_model = LinearRegression::ridge(1.0);
        count_model.fit_matrix(&matrix, &counts);

        // Per-severity-band count regressors — the paper's metric "predicts
        // the number, severity, classification, and impact": high/critical,
        // medium, and low report counts are modelled separately
        // (log10(1+n) targets).
        let severity_models: Vec<(SeverityBand, LinearRegression)> = SeverityBand::ALL
            .iter()
            .map(|&band| {
                let targets: Vec<f64> = histories
                    .iter()
                    .map(|h| (1.0 + band.count(h) as f64).log10())
                    .collect();
                let mut model = LinearRegression::ridge(1.0);
                model.fit_matrix(&matrix, &targets);
                (band, model)
            })
            .collect();

        // Auxiliary risk model for attributions: logistic on CVSS>7 when
        // trainable, else reuse the count weights.
        let risk_labels: Vec<usize> = histories
            .iter()
            .map(|h| Hypothesis::AnyHighSeverity.label(h))
            .collect();
        let risk_weights = if risk_labels.iter().sum::<usize>() > 0
            && risk_labels.iter().sum::<usize>() < risk_labels.len()
        {
            let mut lr = LogisticRegression::new();
            lr.fit_matrix(&matrix, &risk_labels);
            lr.weights
        } else {
            count_model.coefficients.clone()
        };

        let report = TrainingReport {
            n_apps: histories.len(),
            n_features: feature_names.len(),
            learner: self.config.learner,
            hypothesis_reports,
            count_cv,
            extraction: extraction.report,
        };
        let model = TrainedModel {
            feature_names,
            log_transform: self.config.log_transform,
            standardizer,
            kept,
            all_feature_names: dataset.feature_names,
            hypotheses,
            count_model,
            severity_models,
            risk_weights,
        };
        (model, report)
    }

    /// Out-of-core training entry point. Consumes raw dense feature rows
    /// (in `schema` order, one per history, in `histories` order) through
    /// a single pass, optionally spilling the working matrices under
    /// `spill_dir` so peak memory stays bounded by one column rather than
    /// the whole matrix. All transformations then run column-at-a-time in
    /// the exact float-operation order of [`train_with_report`], and the
    /// final model fits are the same code paths — so the returned model
    /// is bit-identical to in-RAM training on the same data. (This path
    /// skips cross-validation: the final fits never depend on it.)
    ///
    /// `schema` must be the sorted feature-name union — for the standard
    /// testbed every program emits the full name set, so the sorted names
    /// of any extracted vector qualify.
    pub fn train_streaming(
        &self,
        schema: &[String],
        rows: impl IntoIterator<Item = Vec<f64>>,
        histories: &[cvedb::AppHistory],
        spill_dir: Option<&std::path::Path>,
    ) -> std::io::Result<TrainedModel> {
        assert!(!histories.is_empty(), "no histories to train on");

        // Optional prefix projection of the schema (the eager path's
        // `project_prefix`), done on column indices so rows stream.
        let (all_feature_names, proj): (Vec<String>, Vec<usize>) = match &self.config.feature_prefix
        {
            Some(prefix) => schema
                .iter()
                .enumerate()
                .filter(|(_, n)| n.starts_with(prefix.as_str()))
                .map(|(i, n)| (n.clone(), i))
                .unzip(),
            None => (schema.to_vec(), (0..schema.len()).collect()),
        };
        let width = all_feature_names.len();

        // Pass 1: stream every row through the (cell-local) log1p into
        // the raw working matrix.
        let mut builder = ColMatrixBuilder::new(width);
        if let Some(dir) = spill_dir {
            builder = builder.spill(&dir.join("raw"))?;
        }
        let mut n_rows = 0usize;
        for row in rows {
            assert_eq!(row.len(), schema.len(), "row width must match schema");
            let mut r: Vec<f64> = proj.iter().map(|&i| row[i]).collect();
            if self.config.log_transform {
                for v in r.iter_mut() {
                    *v = v.signum() * v.abs().ln_1p();
                }
            }
            builder.push_row(&r)?;
            n_rows += 1;
        }
        assert_eq!(n_rows, histories.len(), "one row per selected history");
        let raw = builder.finish()?;

        let counts: Vec<f64> = histories.iter().map(|h| (h.total as f64).log10()).collect();

        // Pass 2, column-at-a-time: standardizer statistics and (when
        // filtering) selection scores. Accumulation order per column is
        // identical to `Standardizer::fit` / the row-major scorers.
        let n = n_rows.max(1) as f64;
        let mut means = vec![0.0; width];
        let mut stds = vec![0.0; width];
        let mut scores = vec![0.0; width];
        let select_labels: Option<Vec<usize>> = (self.config.top_k_features.is_some()
            && self.config.selection_method == SelectionMethod::InfoGainVsHighSeverity)
            .then(|| {
                histories
                    .iter()
                    .map(|h| Hypothesis::AnyHighSeverity.label(h))
                    .collect()
            });
        let (my, syy) = pearson_target_stats(&counts);
        let parent = select_labels.as_deref().map(label_entropy);
        for j in 0..width {
            let mut col = raw.col_owned(j);
            let mut m = 0.0;
            for &v in &col {
                m += v;
            }
            m /= n;
            let mut s = 0.0;
            for &v in &col {
                s += (v - m) * (v - m);
            }
            s = (s / n).sqrt();
            if s < 1e-12 {
                s = 1.0;
            }
            means[j] = m;
            stds[j] = s;
            if self.config.top_k_features.is_some() {
                for v in col.iter_mut() {
                    *v = (*v - m) / s;
                }
                scores[j] = match (&select_labels, parent) {
                    (Some(labels), Some(parent)) => info_gain_column(&col, labels, parent),
                    _ => pearson_column(&col, &counts, my, syy),
                };
            }
        }
        let standardizer = Standardizer { means, stds };

        let kept: Vec<usize> = match self.config.top_k_features {
            Some(k) => {
                let mut idx = top_k(&scores, k.min(width));
                idx.sort_unstable();
                idx
            }
            None => (0..width).collect(),
        };
        let feature_names: Vec<String> =
            kept.iter().map(|&i| all_feature_names[i].clone()).collect();

        // Pass 3: materialize the kept standardized columns as the
        // training matrix — spilled again when out-of-core, so peak RSS
        // stays one column wide.
        let standardized = |&j: &usize| {
            let mut col = raw.col_owned(j);
            for v in col.iter_mut() {
                *v = (*v - standardizer.means[j]) / standardizer.stds[j];
            }
            col
        };
        let matrix = match spill_dir {
            Some(dir) => {
                ColMatrix::spill_columns(&dir.join("train"), n_rows, kept.iter().map(standardized))?
            }
            None => ColMatrix::from_columns(kept.iter().map(standardized).collect()),
        };
        if matrix.n_cols() > 0 {
            matrix.sorted(0);
        }

        // Final fits only — same worker split and the same fit calls as
        // the eager path, whose outputs never depend on CV.
        let battery = standard_battery();
        let jobs = self.resolved_train_jobs();
        let labelled: Vec<(Hypothesis, Vec<usize>, usize)> = battery
            .iter()
            .map(|&hypothesis| {
                let labels: Vec<usize> = histories.iter().map(|h| hypothesis.label(h)).collect();
                let positives = labels.iter().sum();
                (hypothesis, labels, positives)
            })
            .collect();
        let trainable: Vec<&(Hypothesis, Vec<usize>, usize)> = labelled
            .iter()
            .filter(|(_, labels, p)| *p > 0 && *p < labels.len())
            .collect();
        let w1 = jobs.min(trainable.len()).max(1);
        let w2 = (jobs / w1).max(1);
        let trained: Vec<BoxedClassifier> = parallel_map(w1, &trainable, |_, (_, labels, _)| {
            let mut model = self.config.learner.make_sized(self.config.forest_trees, w2);
            model.fit_matrix(&matrix, labels);
            model
        });

        let mut hypotheses = Vec::new();
        let mut trained_iter = trained.into_iter();
        for (hypothesis, labels, positives) in labelled {
            if positives == 0 || positives == labels.len() {
                continue;
            }
            hypotheses.push((
                hypothesis,
                trained_iter.next().expect("one model per trainable task"),
            ));
        }

        let mut count_model = LinearRegression::ridge(1.0);
        count_model.fit_matrix(&matrix, &counts);

        let severity_models: Vec<(SeverityBand, LinearRegression)> = SeverityBand::ALL
            .iter()
            .map(|&band| {
                let targets: Vec<f64> = histories
                    .iter()
                    .map(|h| (1.0 + band.count(h) as f64).log10())
                    .collect();
                let mut model = LinearRegression::ridge(1.0);
                model.fit_matrix(&matrix, &targets);
                (band, model)
            })
            .collect();

        let risk_labels: Vec<usize> = histories
            .iter()
            .map(|h| Hypothesis::AnyHighSeverity.label(h))
            .collect();
        let risk_weights = if risk_labels.iter().sum::<usize>() > 0
            && risk_labels.iter().sum::<usize>() < risk_labels.len()
        {
            let mut lr = LogisticRegression::new();
            lr.fit_matrix(&matrix, &risk_labels);
            lr.weights
        } else {
            count_model.coefficients.clone()
        };

        Ok(TrainedModel {
            feature_names,
            log_transform: self.config.log_transform,
            standardizer,
            kept,
            all_feature_names,
            hypotheses,
            count_model,
            severity_models,
            risk_weights,
        })
    }
}

/// Cross-validation outcome for one hypothesis.
#[derive(Debug, Clone)]
pub struct HypothesisOutcome {
    pub hypothesis: Hypothesis,
    /// None when the labels were degenerate (single class) in this corpus.
    pub report: Option<ClassificationReport>,
    /// Fraction of positive labels.
    pub base_rate: f64,
}

/// The full training report (the numbers EXP-HYP prints).
#[derive(Debug, Clone)]
pub struct TrainingReport {
    pub n_apps: usize,
    pub n_features: usize,
    pub learner: Learner,
    pub hypothesis_reports: Vec<HypothesisOutcome>,
    pub count_cv: RegressionReport,
    /// Feature-extraction engine report (throughput, cache, failures).
    pub extraction: PipelineReport,
}

impl fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trained on {} apps × {} features with {}",
            self.n_apps, self.n_features, self.learner
        )?;
        writeln!(
            f,
            "extraction: {:.1} programs/sec on {} worker(s), {}/{} cache hits, {} degraded",
            self.extraction.throughput(),
            self.extraction.jobs,
            self.extraction.cache_hits,
            self.extraction.programs,
            self.extraction.errors.len()
        )?;
        writeln!(
            f,
            "count regression (log10): R² = {:.3}, MAE = {:.3}",
            self.count_cv.r_squared, self.count_cv.mae
        )?;
        for h in &self.hypothesis_reports {
            match &h.report {
                Some(r) => writeln!(
                    f,
                    "  {:<24} acc={:.2} f1={:.2} auc={:.2} (base rate {:.2})",
                    h.hypothesis.name(),
                    r.accuracy,
                    r.f1,
                    r.auc,
                    h.base_rate
                )?,
                None => writeln!(
                    f,
                    "  {:<24} degenerate (base rate {:.2})",
                    h.hypothesis.name(),
                    h.base_rate
                )?,
            }
        }
        Ok(())
    }
}

/// A trained, applicable model — the §5.3 deliverable.
pub struct TrainedModel {
    /// Names of the kept features, in column order.
    pub feature_names: Vec<String>,
    pub log_transform: bool,
    standardizer: Standardizer,
    /// Indices of kept features within the full schema.
    kept: Vec<usize>,
    all_feature_names: Vec<String>,
    hypotheses: Vec<(Hypothesis, BoxedClassifier)>,
    /// log10-count regressor.
    pub count_model: LinearRegression,
    /// Per-severity-band count regressors (log10(1+n) targets).
    severity_models: Vec<(SeverityBand, LinearRegression)>,
    /// Weights used for per-feature attribution.
    pub risk_weights: Vec<f64>,
}

/// The severity bands the metric predicts counts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeverityBand {
    /// CVSS ≥ 7.0 (High + Critical).
    HighOrCritical,
    /// CVSS 4.0 – 6.9.
    Medium,
    /// CVSS 0.1 – 3.9.
    Low,
}

impl SeverityBand {
    pub const ALL: [SeverityBand; 3] = [
        SeverityBand::HighOrCritical,
        SeverityBand::Medium,
        SeverityBand::Low,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SeverityBand::HighOrCritical => "high/critical",
            SeverityBand::Medium => "medium",
            SeverityBand::Low => "low",
        }
    }

    /// Ground-truth count of reports in this band for one history.
    pub fn count(self, history: &cvedb::AppHistory) -> usize {
        use cvss::Severity;
        let get = |s: Severity| history.by_severity.get(&s).copied().unwrap_or(0);
        match self {
            SeverityBand::HighOrCritical => get(Severity::High) + get(Severity::Critical),
            SeverityBand::Medium => get(Severity::Medium),
            SeverityBand::Low => get(Severity::Low) + get(Severity::None),
        }
    }
}

impl TrainedModel {
    /// Transform a raw feature vector into the model's input row.
    pub fn prepare_row(&self, fv: &static_analysis::FeatureVector) -> Vec<f64> {
        let mut full = Vec::new();
        let mut out = Vec::new();
        crate::score::prepare_row_into(
            &self.all_feature_names,
            self.log_transform,
            &self.standardizer,
            &self.kept,
            fv,
            &mut full,
            &mut out,
        );
        out
    }

    /// Transform a raw dense feature row — already in training-schema
    /// order (see [`TrainedModel::schema`]) — into the model's input row.
    /// The streaming twin of [`prepare_row`](TrainedModel::prepare_row)
    /// for callers that cache dense rows instead of feature maps.
    pub fn prepare_dense_row(&self, full: &[f64]) -> Vec<f64> {
        let mut full = full.to_vec();
        if self.log_transform {
            for v in full.iter_mut() {
                *v = v.signum() * v.abs().ln_1p();
            }
        }
        self.standardizer.transform_row(&mut full);
        self.kept.iter().map(|&i| full[i]).collect()
    }

    /// The full (pre-selection) training schema, in column order.
    pub fn schema(&self) -> &[String] {
        &self.all_feature_names
    }

    /// Predicted probability for one hypothesis (None if it was degenerate
    /// at training time).
    pub fn hypothesis_probability(&self, hypothesis: Hypothesis, row: &[f64]) -> Option<f64> {
        self.hypotheses
            .iter()
            .find(|(h, _)| *h == hypothesis)
            .map(|(_, m)| m.predict_proba(row))
    }

    /// All trained hypotheses with their probabilities for `row`.
    pub fn all_hypotheses(&self, row: &[f64]) -> Vec<(Hypothesis, f64)> {
        self.hypotheses
            .iter()
            .map(|(h, m)| (*h, m.predict_proba(row)))
            .collect()
    }

    /// Predicted vulnerability count (back-transformed from log10).
    pub fn predicted_count(&self, row: &[f64]) -> f64 {
        10f64.powf(self.count_model.predict(row)).max(0.0)
    }

    /// Predicted report counts per severity band.
    pub fn predicted_severity_counts(&self, row: &[f64]) -> Vec<(SeverityBand, f64)> {
        self.severity_models
            .iter()
            .map(|(band, model)| (*band, (10f64.powf(model.predict(row)) - 1.0).max(0.0)))
            .collect()
    }

    /// Evaluate a program end-to-end into a [`crate::SecurityReport`].
    pub fn evaluate(&self, program: &minilang::ast::Program) -> crate::SecurityReport {
        crate::metric::evaluate(self, program)
    }

    /// Evaluate pre-extracted features into a [`crate::SecurityReport`]
    /// (the per-row reference path the batched engine is checked against).
    pub fn evaluate_features(
        &self,
        app: String,
        fv: &static_analysis::FeatureVector,
    ) -> crate::SecurityReport {
        crate::metric::evaluate_features(self, app, fv)
    }

    /// Lower the whole battery into a [`CompiledModel`]: every boxed
    /// model becomes its flattened `secml` compiled form for batched
    /// scoring and serde-free persistence. Predictions are bit-identical
    /// to this model's row-at-a-time path.
    pub fn compile(&self) -> CompiledModel {
        CompiledModel {
            feature_names: self.feature_names.clone(),
            log_transform: self.log_transform,
            standardizer: self.standardizer.clone(),
            kept: self.kept.clone(),
            all_feature_names: self.all_feature_names.clone(),
            hypotheses: self
                .hypotheses
                .iter()
                .map(|(h, m)| {
                    (
                        *h,
                        m.compile().expect("battery learners support compilation"),
                    )
                })
                .collect(),
            count_model: self.count_model.compile().expect("linreg always compiles"),
            severity_models: self
                .severity_models
                .iter()
                .map(|(band, m)| (*band, m.compile().expect("linreg always compiles")))
                .collect(),
            risk_weights: self.risk_weights.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;

    fn corpus() -> &'static Corpus {
        crate::testutil::shared_corpus()
    }

    #[test]
    fn trains_and_reports() {
        let corpus = corpus();
        let (model, report) = Trainer::new().train_with_report(corpus);
        assert!(report.n_apps >= 20);
        assert!(report.n_features >= 70);
        assert_eq!(model.feature_names.len(), report.n_features);
        // The degenerate/trained split covers the whole battery.
        assert_eq!(report.hypothesis_reports.len(), standard_battery().len());
        // At least a few hypotheses are non-degenerate on a 10-app corpus.
        let trained = report
            .hypothesis_reports
            .iter()
            .filter(|h| h.report.is_some())
            .count();
        assert!(trained >= 3, "only {trained} hypotheses trainable");
    }

    #[test]
    fn prediction_is_finite_and_positive() {
        let corpus = corpus();
        let model = Trainer::new().train(corpus);
        let fv = Testbed::new().extract(&corpus.apps[0].program);
        let row = model.prepare_row(&fv);
        let count = model.predicted_count(&row);
        assert!(count.is_finite() && count >= 0.0);
        for (_, p) in model.all_hypotheses(&row) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn feature_selection_reduces_width() {
        let corpus = corpus();
        let trainer = Trainer::with_config(TrainerConfig {
            top_k_features: Some(10),
            ..Default::default()
        });
        let (model, report) = trainer.train_with_report(corpus);
        assert_eq!(report.n_features, 10);
        assert_eq!(model.feature_names.len(), 10);
    }

    #[test]
    fn prefix_restriction_works() {
        let corpus = corpus();
        let trainer = Trainer::with_config(TrainerConfig {
            feature_prefix: Some("loc.".into()),
            ..Default::default()
        });
        let (model, _) = trainer.train_with_report(corpus);
        assert!(model.feature_names.iter().all(|n| n.starts_with("loc.")));
    }

    #[test]
    fn info_gain_selection_works() {
        let corpus = corpus();
        let trainer = Trainer::with_config(TrainerConfig {
            top_k_features: Some(10),
            selection_method: SelectionMethod::InfoGainVsHighSeverity,
            ..Default::default()
        });
        let (model, report) = trainer.train_with_report(corpus);
        assert_eq!(report.n_features, 10);
        // The two rankings select from the same pool but need not agree.
        let pearson = Trainer::with_config(TrainerConfig {
            top_k_features: Some(10),
            ..Default::default()
        })
        .train(corpus);
        assert_eq!(model.feature_names.len(), pearson.feature_names.len());
    }

    #[test]
    fn all_learners_train() {
        let corpus = corpus();
        for learner in Learner::ALL {
            let model = Trainer::with_learner(learner).train(corpus);
            let fv = Testbed::new().extract(&corpus.apps[0].program);
            let row = model.prepare_row(&fv);
            let p = model.hypothesis_probability(Hypothesis::AnyHighSeverity, &row);
            if let Some(p) = p {
                assert!((0.0..=1.0).contains(&p), "{learner}: {p}");
            }
        }
    }

    #[test]
    fn streaming_training_is_bit_identical_to_eager() {
        let corpus = corpus();
        let trainer = Trainer::with_config(TrainerConfig {
            top_k_features: Some(14),
            ..Default::default()
        });
        let eager = trainer.train(corpus).compile().to_bytes();

        let histories = corpus.db.select(&trainer.config.selection);
        let selected: Vec<&corpus::GeneratedApp> = histories
            .iter()
            .map(|h| corpus.apps.iter().find(|a| a.spec.name == h.app).unwrap())
            .collect();
        let extraction = extract::extract_apps(selected.iter().copied(), PipelineConfig::default());
        let schema: Vec<String> = {
            let mut names: Vec<String> = extraction.features[0]
                .1
                .iter()
                .map(|(k, _)| k.to_string())
                .collect();
            names.sort();
            names
        };
        let rows: Vec<Vec<f64>> = extraction
            .features
            .iter()
            .map(|(_, fv)| {
                let mut out = Vec::new();
                fv.fill_dense(&schema, &mut out);
                out
            })
            .collect();

        let in_ram = trainer
            .train_streaming(&schema, rows.iter().cloned(), &histories, None)
            .unwrap();
        assert_eq!(
            eager,
            in_ram.compile().to_bytes(),
            "in-RAM streaming differs"
        );

        let dir = std::env::temp_dir().join(format!("clvy-train-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spilled = trainer
            .train_streaming(&schema, rows, &histories, Some(&dir))
            .unwrap();
        assert_eq!(
            eager,
            spilled.compile().to_bytes(),
            "spilled streaming differs"
        );

        // The dense-row scorer matches the feature-map scorer.
        let fv = Testbed::new().extract(&selected[0].program);
        let mut dense = Vec::new();
        fv.fill_dense(&schema, &mut dense);
        let a = spilled.prepare_row(&fv);
        let b = spilled.prepare_dense_row(&dense);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn report_display_is_readable() {
        let corpus = corpus();
        let (_, report) = Trainer::new().train_with_report(corpus);
        let text = report.to_string();
        assert!(text.contains("count regression"));
        assert!(text.contains("cvss_gt_7") || text.contains("degenerate"));
    }
}
