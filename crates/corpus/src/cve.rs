//! CVE-history synthesis.
//!
//! Turns the seeded vulnerabilities of an application into CVE records:
//! discovery dates spread over the application's lifetime (guaranteeing the
//! ≥5-year converging histories §5.1 selects for), CVSS v3 vectors derived
//! from each seed's *context* (endpoint reachability → AV, carrier
//! privilege → scope/impact, weakness class → the C/I/A profile), and CVSS
//! v2 vectors for every record (as in NVD, where v3 only exists from
//! 2016 onward).

use crate::spec::AppSpec;
use crate::vuln::SeededVuln;
use cvedb::{CveId, CveRecord, Cwe, Date};
use cvss::v3::{
    AttackComplexity, AttackVector, Cvss3, Impact, PrivilegesRequired, Scope, UserInteraction,
};
use cvss::Cvss2;
use rand::rngs::StdRng;
use rand::Rng;

/// The newest report date in the synthetic database — the paper's snapshot
/// ("collected as of April 2017").
pub const SNAPSHOT_YEAR: i32 = 2017;

/// Derive the CVSS v3 vector for a seeded vulnerability.
pub fn derive_cvss3(seed: &SeededVuln, rng: &mut StdRng) -> Cvss3 {
    let av = if seed.exposed {
        AttackVector::Network
    } else {
        AttackVector::Local
    };
    let pr = if seed.exposed {
        PrivilegesRequired::None
    } else {
        PrivilegesRequired::Low
    };
    // Races and logic subtleties are harder to exploit.
    let ac = match seed.cwe {
        Cwe::Toctou | Cwe::IntegerOverflow | Cwe::UseAfterFree => AttackComplexity::High,
        _ => {
            if rng.gen_bool(0.15) {
                AttackComplexity::High
            } else {
                AttackComplexity::Low
            }
        }
    };
    let ui = if rng.gen_bool(0.12) {
        UserInteraction::Required
    } else {
        UserInteraction::None
    };
    // Root carriers break out of the component's authorization scope.
    let scope = if seed.priv_root {
        Scope::Changed
    } else {
        Scope::Unchanged
    };
    let (c, i, a) = impact_profile(seed.cwe);
    Cvss3::base(av, ac, pr, ui, scope, c, i, a)
}

/// Per-CWE C/I/A impact profile.
fn impact_profile(cwe: Cwe) -> (Impact, Impact, Impact) {
    use Impact::*;
    match cwe {
        Cwe::StackBufferOverflow
        | Cwe::HeapBufferOverflow
        | Cwe::CommandInjection
        | Cwe::UseAfterFree => (High, High, High),
        Cwe::FormatString => (High, High, Low),
        Cwe::SqlInjection => (High, High, None),
        Cwe::CrossSiteScripting => (Low, Low, None),
        Cwe::IntegerOverflow => (Low, Low, High),
        Cwe::ImproperInputValidation => (Low, Low, Low),
        Cwe::PathTraversal | Cwe::InfoExposure => (High, None, None),
        Cwe::Toctou => (Low, High, None),
        Cwe::MemoryLeak => (None, None, High),
        Cwe::UninitializedVariable => (Low, None, Low),
        Cwe::NullDereference => (None, None, High),
        Cwe::ImproperAuthentication | Cwe::MissingAuthentication | Cwe::HardcodedCredentials => {
            (High, High, None)
        }
    }
}

/// Derive the matching CVSS v2 vector (coarser; NVD carries both).
pub fn derive_cvss2(seed: &SeededVuln) -> Cvss2 {
    use cvss::v2::*;
    let (c3, i3, a3) = impact_profile(seed.cwe);
    let to_v2 = |imp: Impact| match imp {
        Impact::High => ImpactV2::Complete,
        Impact::Low => ImpactV2::Partial,
        Impact::None => ImpactV2::None,
    };
    Cvss2 {
        av: if seed.exposed {
            AccessVector::Network
        } else {
            AccessVector::Local
        },
        ac: match seed.cwe {
            Cwe::Toctou | Cwe::IntegerOverflow | Cwe::UseAfterFree => AccessComplexity::High,
            _ => AccessComplexity::Low,
        },
        au: if seed.exposed {
            Authentication::None
        } else {
            Authentication::Single
        },
        c: to_v2(c3),
        i: to_v2(i3),
        a: to_v2(a3),
    }
}

/// Synthesize the CVE records for one application's seeds.
///
/// Dates are spread evenly (with jitter) from `first_release + 1` to the
/// snapshot, which (for ≥ 2 seeds over a ≥ 6-year-old project) guarantees
/// the ≥ 5-year converging history the paper's selection demands.
pub fn synthesize_history(
    spec: &AppSpec,
    seeds: &[SeededVuln],
    next_cve_number: &mut u32,
    rng: &mut StdRng,
) -> Vec<CveRecord> {
    let mut records = Vec::with_capacity(seeds.len());
    let first_year = spec.first_release_year + 1;
    let span_years = (SNAPSHOT_YEAR - first_year).max(1) as f64;
    let n = seeds.len().max(1) as f64;

    for (k, seed) in seeds.iter().enumerate() {
        // Even spread with jitter, pinned so the first and last reports
        // bracket (almost) the whole lifetime.
        let frac = if seeds.len() == 1 {
            rng.gen_range(0.0..1.0)
        } else {
            let base = k as f64 / (n - 1.0);
            (base + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0)
        };
        let year = first_year + (frac * span_years).floor() as i32;
        let year = year.clamp(first_year, SNAPSHOT_YEAR);
        let month = rng.gen_range(1..=12u8);
        let month = if year == SNAPSHOT_YEAR {
            month.min(4)
        } else {
            month
        };
        let day = rng.gen_range(1..=28u8);
        let published = Date::new(year, month, day).expect("valid synthetic date");

        let cvss3 = derive_cvss3(seed, rng);
        let cvss2 = derive_cvss2(seed);
        let id = CveId::new(year, *next_cve_number);
        *next_cve_number += 1;
        records.push(CveRecord {
            id,
            app: spec.name.clone(),
            published,
            cwe: seed.cwe,
            // v3 vectors only exist for records from 2016 onward, as in NVD.
            cvss3: (year >= 2016).then_some(cvss3),
            cvss2: Some(cvss2),
            description: format!(
                "{} in function {} of {} allows an attacker to compromise the application.",
                seed.cwe.name(),
                seed.function,
                spec.name,
            ),
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Domain;
    use minilang::Dialect;
    use rand::SeedableRng;

    fn spec() -> AppSpec {
        AppSpec {
            name: "srv-test".into(),
            dialect: Dialect::C,
            domain: Domain::Server,
            target_kloc: 2.0,
            maturity: 0.5,
            review: 0.5,
            expertise: 0.5,
            first_release_year: 2004,
            seed: 9,
        }
    }

    fn seed(cwe: Cwe, exposed: bool, priv_root: bool) -> SeededVuln {
        SeededVuln {
            cwe,
            function: "handle_0_0".into(),
            module: "src/mod_0.c".into(),
            exposed,
            priv_root,
        }
    }

    #[test]
    fn exposed_stack_overflow_is_critical_network() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = derive_cvss3(&seed(Cwe::StackBufferOverflow, true, false), &mut rng);
        assert!(v.is_network_attackable());
        assert!(v.base_score() >= 7.0, "score = {}", v.base_score());
    }

    #[test]
    fn internal_seed_is_local_vector() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = derive_cvss3(&seed(Cwe::FormatString, false, false), &mut rng);
        assert!(!v.is_network_attackable());
    }

    #[test]
    fn root_carrier_changes_scope() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = derive_cvss3(&seed(Cwe::CommandInjection, true, true), &mut rng);
        assert_eq!(v.scope, Scope::Changed);
    }

    #[test]
    fn race_conditions_are_high_complexity() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = derive_cvss3(&seed(Cwe::Toctou, true, false), &mut rng);
        assert_eq!(v.ac, AttackComplexity::High);
    }

    #[test]
    fn v2_vector_tracks_v3_shape() {
        let s = seed(Cwe::StackBufferOverflow, true, false);
        let v2 = derive_cvss2(&s);
        assert!(v2.base_score() >= 7.0);
        let internal = derive_cvss2(&seed(Cwe::InfoExposure, false, false));
        assert!(internal.base_score() < v2.base_score());
    }

    #[test]
    fn history_spans_lifetime_and_satisfies_selection() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut next = 1;
        let seeds: Vec<SeededVuln> = (0..8)
            .map(|i| seed(Cwe::ALL[i % Cwe::ALL.len()], i % 2 == 0, false))
            .collect();
        let records = synthesize_history(&spec(), &seeds, &mut next, &mut rng);
        assert_eq!(records.len(), 8);
        let mut db = cvedb::CveDatabase::new();
        for r in records {
            db.insert(r);
        }
        let selected = db.select(&cvedb::SelectionCriteria::default());
        assert_eq!(selected.len(), 1, "synthesized history must pass selection");
        assert!(selected[0].span_years() >= 5.0);
    }

    #[test]
    fn v3_only_from_2016() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut next = 100;
        let seeds: Vec<SeededVuln> = (0..12)
            .map(|i| seed(Cwe::ALL[i % Cwe::ALL.len()], true, false))
            .collect();
        let records = synthesize_history(&spec(), &seeds, &mut next, &mut rng);
        for r in &records {
            assert_eq!(r.cvss3.is_some(), r.published.year >= 2016, "{}", r.id);
            assert!(r.cvss2.is_some());
        }
        // With 12 evenly spread reports, at least one lands in 2016+.
        assert!(records.iter().any(|r| r.cvss3.is_some()));
    }

    #[test]
    fn cve_numbers_are_unique_and_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut next = 1;
        let seeds = vec![seed(Cwe::FormatString, true, false); 5];
        let records = synthesize_history(&spec(), &seeds, &mut next, &mut rng);
        assert_eq!(next, 6);
        let mut numbers: Vec<u32> = records.iter().map(|r| r.id.number).collect();
        numbers.sort_unstable();
        numbers.dedup();
        assert_eq!(numbers.len(), 5);
    }

    #[test]
    fn snapshot_cap_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut next = 1;
        let seeds = vec![seed(Cwe::FormatString, true, false); 40];
        let records = synthesize_history(&spec(), &seeds, &mut next, &mut rng);
        for r in &records {
            assert!(r.published.year <= SNAPSHOT_YEAR);
            if r.published.year == SNAPSHOT_YEAR {
                assert!(r.published.month <= 4, "past the April 2017 snapshot");
            }
        }
    }
}
