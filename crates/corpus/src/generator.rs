//! Corpus generation and calibration.
//!
//! The generative model is built so the paper's Figure 2 regime emerges:
//!
//! ```text
//! log10(#vulns) = 0.17 + 0.39·log10(kLoC) + c·(0.5 − q) + lang + ε
//! ```
//!
//! * the `0.17 + 0.39·log10(kLoC)` term is the paper's measured trend line;
//! * `q` is the latent process quality (review/expertise/maturity), with the
//!   coefficient `c` calibrated so the LoC-only R² lands near the paper's
//!   24.66 % — i.e. *most* of the variance is NOT explained by size;
//! * `lang` gives Java projects slightly fewer vulnerabilities (the paper's
//!   only language effect);
//! * `ε` is irreducible noise.
//!
//! Because `q` also drives the *synthesized code style* (comments,
//! validation branches, bounded copies, smells), the residual that LoC
//! cannot explain **is** recoverable from the richer code properties — the
//! paper's central claim, by construction measurable.
//!
//! Note on scale: the paper's corpus spans 1–10,000 kLoC; synthesizing
//! gigalines is pointless, so the size axis is compressed (default
//! 0.3–25 kLoC) while keeping the log-uniform shape. Slope and R² are
//! scale-free in log-log space, so the Figure 2 comparison survives.

use crate::cve;
use crate::spec::{AppSpec, Domain};
use crate::synth::{self, SynthOutput};
use crate::vuln::SeededVuln;
use cvedb::{CveDatabase, Cwe};
use minilang::ast::Program;
use minilang::Dialect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus-level configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Applications per language: `[C, C++, Python, Java]`. The paper's
    /// split is `[126, 20, 6, 12]`.
    pub language_mix: [usize; 4],
    /// Extra applications with short (< 5-year) histories, generated to
    /// exercise the §5.1 selection rule.
    pub short_history_apps: usize,
    /// Size range in kLoC (log-uniform).
    pub min_kloc: f64,
    pub max_kloc: f64,
    /// Master seed; the corpus is a pure function of the config.
    pub seed: u64,
    /// Target LoC-only coefficient of determination (paper: 0.2466).
    pub target_loc_r2: f64,
}

impl CorpusConfig {
    /// The paper-scale configuration: 164 applications, the Figure 2
    /// language mix, R² target 24.66 %.
    pub fn paper() -> CorpusConfig {
        CorpusConfig {
            language_mix: [126, 20, 6, 12],
            short_history_apps: 8,
            min_kloc: 0.3,
            max_kloc: 25.0,
            seed: 20170408,
            target_loc_r2: 0.2466,
        }
    }

    /// A small configuration for tests: `n` apps, mostly C.
    pub fn small(n: usize, seed: u64) -> CorpusConfig {
        let c = (n * 3).div_ceil(4);
        let rest = n - c;
        CorpusConfig {
            language_mix: [
                c,
                rest.min(1),
                rest.saturating_sub(2).min(1),
                rest.saturating_sub(1).min(1),
            ],
            short_history_apps: 1,
            min_kloc: 0.2,
            max_kloc: 1.6,
            seed,
            target_loc_r2: 0.2466,
        }
    }

    /// Total selected-quality apps (excluding short-history rejects).
    pub fn n_apps(&self) -> usize {
        self.language_mix.iter().sum()
    }
}

/// One generated application with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    pub spec: AppSpec,
    pub program: Program,
    /// `(path, source)` files.
    pub files: Vec<(String, String)>,
    pub seeded: Vec<SeededVuln>,
}

/// The generated corpus: applications plus the CVE database over them.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub apps: Vec<GeneratedApp>,
    pub db: CveDatabase,
}

impl Corpus {
    /// Generate the corpus from a configuration. This is the eager facade
    /// over [`Corpus::stream`]: it drains the streaming iterator and keeps
    /// every app resident — fine at test scale, but longitudinal callers
    /// should consume the stream directly.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut stream = Corpus::stream(config);
        let apps: Vec<GeneratedApp> = stream.by_ref().collect();
        Corpus {
            config: config.clone(),
            apps,
            db: stream.into_db(),
        }
    }

    /// A lazy, seeded iterator over the corpus's applications, yielding
    /// them in the exact order (and from the exact RNG call sequence)
    /// `generate` uses — draining it is bit-identical to the eager path,
    /// but only one app is ever resident at a time.
    pub fn stream(config: &CorpusConfig) -> CorpusStream {
        let mix = [
            (Dialect::C, config.language_mix[0]),
            (Dialect::Cpp, config.language_mix[1]),
            (Dialect::Python, config.language_mix[2]),
            (Dialect::Java, config.language_mix[3]),
        ];
        let mut schedule = Vec::with_capacity(config.n_apps() + config.short_history_apps);
        for (dialect, count) in mix {
            schedule.extend(std::iter::repeat_n((dialect, false), count));
        }
        // Short-history rejects: young projects whose records cannot span
        // five years.
        schedule.extend(std::iter::repeat_n(
            (Dialect::C, true),
            config.short_history_apps,
        ));
        CorpusStream {
            config: config.clone(),
            cal: Calibration::for_config(config),
            rng: StdRng::seed_from_u64(config.seed),
            db: CveDatabase::new(),
            next_cve: 1,
            schedule,
            index: 0,
        }
    }

    fn generate_app(
        spec: &AppSpec,
        cal: &Calibration,
        rng: &mut StdRng,
        next_cve: &mut u32,
        db: &mut CveDatabase,
    ) -> GeneratedApp {
        let target_vulns = cal.vuln_count(spec, rng);
        let seeds = sample_cwes(spec, target_vulns, rng);
        let SynthOutput {
            files,
            program,
            seeded,
        } = synth::synthesize(spec, &seeds);
        let records = cve::synthesize_history(spec, &seeded, next_cve, rng);
        for r in records {
            db.insert(r);
        }
        GeneratedApp {
            spec: spec.clone(),
            program,
            files,
            seeded,
        }
    }
}

/// The lazy producer behind [`Corpus::stream`]. CVE records accumulate
/// into an internal database as apps are yielded; recover it with
/// [`db`](CorpusStream::db) or [`into_db`](CorpusStream::into_db) once
/// the relevant prefix has been consumed.
#[derive(Debug, Clone)]
pub struct CorpusStream {
    config: CorpusConfig,
    cal: Calibration,
    rng: StdRng,
    db: CveDatabase,
    next_cve: u32,
    /// Per-app `(dialect, short_history)` plan, fixed by the config.
    schedule: Vec<(Dialect, bool)>,
    index: usize,
}

impl CorpusStream {
    /// The configuration the stream was built from.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// CVE records synthesized for the apps yielded so far.
    pub fn db(&self) -> &CveDatabase {
        &self.db
    }

    /// Consume the stream, returning the accumulated CVE database.
    pub fn into_db(self) -> CveDatabase {
        self.db
    }
}

impl Iterator for CorpusStream {
    type Item = GeneratedApp;

    fn next(&mut self) -> Option<GeneratedApp> {
        let &(dialect, short_history) = self.schedule.get(self.index)?;
        let mut spec = AppSpec::sample(
            self.index,
            dialect,
            &mut self.rng,
            self.config.min_kloc,
            self.config.max_kloc,
        );
        if short_history {
            spec.first_release_year = 2014;
            spec.name = format!("young-{}", spec.name);
        }
        self.index += 1;
        Some(Corpus::generate_app(
            &spec,
            &self.cal,
            &mut self.rng,
            &mut self.next_cve,
            &mut self.db,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.schedule.len() - self.index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CorpusStream {}

/// Pick the CWE classes for an app's seeds, respecting language safety.
pub(crate) fn sample_cwes(spec: &AppSpec, count: usize, rng: &mut StdRng) -> Vec<(Cwe, bool)> {
    // Weighted mix loosely following the real CWE distribution in CVE data.
    const WEIGHTED: &[(Cwe, u32)] = &[
        (Cwe::StackBufferOverflow, 14),
        (Cwe::HeapBufferOverflow, 8),
        (Cwe::ImproperInputValidation, 12),
        (Cwe::CrossSiteScripting, 9),
        (Cwe::CommandInjection, 7),
        (Cwe::SqlInjection, 6),
        (Cwe::FormatString, 5),
        (Cwe::IntegerOverflow, 7),
        (Cwe::PathTraversal, 7),
        (Cwe::InfoExposure, 7),
        (Cwe::ImproperAuthentication, 4),
        (Cwe::MissingAuthentication, 3),
        (Cwe::HardcodedCredentials, 3),
        (Cwe::Toctou, 2),
        (Cwe::MemoryLeak, 3),
        (Cwe::UseAfterFree, 4),
        (Cwe::UninitializedVariable, 3),
        (Cwe::NullDereference, 5),
    ];
    let usable: Vec<(Cwe, u32)> = WEIGHTED
        .iter()
        .copied()
        .filter(|(c, _)| spec.dialect.is_memory_unsafe() || !c.requires_memory_unsafety())
        .collect();
    let total: u32 = usable.iter().map(|(_, w)| w).sum();
    let exposure_p = match spec.domain {
        Domain::Server => 0.6,
        Domain::CliTool | Domain::Desktop => 0.35,
        Domain::Library => 0.25,
    };
    (0..count)
        .map(|_| {
            let mut roll = rng.gen_range(0..total);
            let cwe = usable
                .iter()
                .find(|(_, w)| {
                    if roll < *w {
                        true
                    } else {
                        roll -= w;
                        false
                    }
                })
                .map(|(c, _)| *c)
                .expect("weights cover the roll");
            (cwe, rng.gen_bool(exposure_p))
        })
        .collect()
}

/// The calibrated count model.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Paper trend-line intercept (log10 space).
    pub intercept: f64,
    /// Paper trend-line slope.
    pub slope: f64,
    /// Coefficient on `(0.5 − quality)`.
    pub quality_coeff: f64,
    /// Standard deviation of the irreducible noise.
    pub noise_sigma: f64,
}

impl Calibration {
    /// Derive the quality/noise magnitudes from the configured size range so
    /// the LoC-only R² lands near `target_loc_r2` regardless of how much the
    /// size axis is compressed.
    pub fn for_config(config: &CorpusConfig) -> Calibration {
        Calibration::for_range(config.min_kloc, config.max_kloc, config.target_loc_r2)
    }

    /// [`Calibration::for_config`] for callers without a full
    /// `CorpusConfig` — the longitudinal stream carries only a size range
    /// and R² target.
    pub fn for_range(min_kloc: f64, max_kloc: f64, target_loc_r2: f64) -> Calibration {
        let slope = 0.39;
        // The paper's intercept (0.17) belongs to its 1–10,000 kLoC axis.
        // With the size axis compressed, keeping 0.17 would push expected
        // counts against the ≥2 clamp and flatten both slope and R²; the
        // shift re-centres counts into the 5–100 range. Slope and R² are
        // the scale-free quantities FIG-2 compares.
        let intercept = 0.17 + 0.85;
        // x ~ U[log10(min), log10(max)] ⇒ Var(x) = range²/12.
        let range = (max_kloc.log10() - min_kloc.log10()).max(1e-6);
        let var_x = range * range / 12.0;
        let explained = slope * slope * var_x;
        // R² = explained / (explained + residual).
        let residual = explained * (1.0 - target_loc_r2) / target_loc_r2;
        // 55 % of the residual is quality-driven (recoverable from code
        // properties), 45 % is irreducible.
        let var_quality_term = 0.55 * residual;
        let var_noise = 0.45 * residual;
        // q = 0.5r + 0.3e + 0.2m with r,e,m ~ U(0,1):
        // Var(q) = (0.25 + 0.09 + 0.04) / 12.
        let var_q = (0.25 + 0.09 + 0.04) / 12.0;
        Calibration {
            intercept,
            slope,
            quality_coeff: (var_quality_term / var_q).sqrt(),
            noise_sigma: var_noise.sqrt(),
        }
    }

    /// Expected log10 vulnerability count, before noise.
    pub fn expected_log10(&self, spec: &AppSpec) -> f64 {
        let lang = match spec.dialect {
            Dialect::Java => -0.20,
            _ => 0.0,
        };
        self.intercept
            + self.slope * spec.target_kloc.log10()
            + self.quality_coeff * (0.5 - spec.quality())
            + lang
    }

    /// Sample the vulnerability count for one application.
    pub fn vuln_count(&self, spec: &AppSpec, rng: &mut StdRng) -> usize {
        // Box-Muller for a standard normal.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let y = self.expected_log10(spec) + self.noise_sigma * z;
        let count = 10f64.powf(y).round() as i64;
        // Lower clamp keeps every app selectable (≥ 2 reports); upper clamp
        // keeps seeds within the carrier-function budget (modules average
        // ~10.5 functions; not every function can host a seed).
        let max_carriers = (spec.module_count() * 8) as i64;
        count.clamp(2, max_carriers.max(3)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvedb::SelectionCriteria;

    #[test]
    fn small_corpus_generates_and_selects() {
        let config = CorpusConfig::small(8, 42);
        let corpus = Corpus::generate(&config);
        assert_eq!(
            corpus.apps.len(),
            config.n_apps() + config.short_history_apps
        );
        assert!(!corpus.db.is_empty());
        let selected = corpus.db.select(&SelectionCriteria::default());
        // All long-history apps pass; short-history rejects do not.
        assert!(
            selected.len() >= config.n_apps() - 1,
            "selected {}",
            selected.len()
        );
        assert!(selected.iter().all(|h| !h.app.starts_with("young-")));
    }

    #[test]
    fn corpus_is_deterministic() {
        let config = CorpusConfig::small(4, 7);
        let a = Corpus::generate(&config);
        let b = Corpus::generate(&config);
        assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.files, y.files);
            assert_eq!(x.seeded, y.seeded);
        }
        assert_eq!(a.db.len(), b.db.len());
    }

    #[test]
    fn generate_matches_streamed_collect_bitwise() {
        let config = CorpusConfig::small(6, 90210);
        let eager = Corpus::generate(&config);
        let mut stream = Corpus::stream(&config);
        assert_eq!(stream.len(), config.n_apps() + config.short_history_apps);
        let streamed: Vec<GeneratedApp> = stream.by_ref().collect();
        let db = stream.into_db();
        assert_eq!(eager.apps.len(), streamed.len());
        for (a, b) in eager.apps.iter().zip(&streamed) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.files, b.files);
            assert_eq!(a.seeded, b.seeded);
        }
        assert_eq!(eager.db.len(), db.len());
        for app in &eager.apps {
            let x: Vec<String> = eager
                .db
                .records_for(&app.spec.name)
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            let y: Vec<String> = db
                .records_for(&app.spec.name)
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            assert_eq!(x, y, "records for {}", app.spec.name);
        }
    }

    #[test]
    fn stream_db_accumulates_with_yielded_prefix() {
        let config = CorpusConfig::small(5, 31337);
        let mut stream = Corpus::stream(&config);
        assert!(stream.db().is_empty());
        let first = stream.next().expect("at least one app");
        assert_eq!(
            stream.db().records_for(&first.spec.name).len(),
            first.seeded.len()
        );
    }

    #[test]
    fn seeds_match_cve_records() {
        let corpus = Corpus::generate(&CorpusConfig::small(5, 11));
        for app in &corpus.apps {
            let records = corpus.db.records_for(&app.spec.name);
            assert_eq!(
                records.len(),
                app.seeded.len(),
                "every seed yields exactly one CVE for {}",
                app.spec.name
            );
        }
    }

    #[test]
    fn memory_safe_languages_have_no_memory_cwes() {
        let mut config = CorpusConfig::small(6, 13);
        config.language_mix = [0, 0, 3, 3]; // Python + Java only
        let corpus = Corpus::generate(&config);
        for app in &corpus.apps {
            if app.spec.dialect.is_memory_unsafe() {
                continue; // the short-history reject is C
            }
            for seed in &app.seeded {
                assert!(
                    !seed.cwe.requires_memory_unsafety(),
                    "{} seeded {} into {}",
                    app.spec.name,
                    seed.cwe,
                    app.spec.dialect
                );
            }
        }
    }

    #[test]
    fn calibration_targets_r2() {
        let config = CorpusConfig::paper();
        let cal = Calibration::for_config(&config);
        // With the paper range the derived magnitudes are finite, positive
        // and the implied R² is exact by construction.
        assert!(cal.quality_coeff > 0.0);
        assert!(cal.noise_sigma > 0.0);
        let range = (config.max_kloc.log10() - config.min_kloc.log10()).abs();
        let var_x = range * range / 12.0;
        let explained = cal.slope * cal.slope * var_x;
        let var_q = 0.38 / 12.0;
        let resid =
            cal.quality_coeff * cal.quality_coeff * var_q + cal.noise_sigma * cal.noise_sigma;
        let implied_r2 = explained / (explained + resid);
        assert!(
            (implied_r2 - config.target_loc_r2).abs() < 0.01,
            "implied {implied_r2}"
        );
    }

    #[test]
    fn vuln_counts_grow_with_size_and_shrink_with_quality() {
        let config = CorpusConfig::paper();
        let cal = Calibration::for_config(&config);
        let base = AppSpec {
            name: "x".into(),
            dialect: Dialect::C,
            domain: Domain::Server,
            target_kloc: 1.0,
            maturity: 0.5,
            review: 0.5,
            expertise: 0.5,
            first_release_year: 2004,
            seed: 0,
        };
        let mut big = base.clone();
        big.target_kloc = 20.0;
        assert!(cal.expected_log10(&big) > cal.expected_log10(&base));
        let mut sloppy = base.clone();
        sloppy.review = 0.0;
        sloppy.expertise = 0.0;
        sloppy.maturity = 0.0;
        assert!(cal.expected_log10(&sloppy) > cal.expected_log10(&base));
        let mut careful = base.clone();
        careful.review = 1.0;
        careful.expertise = 1.0;
        careful.maturity = 1.0;
        assert!(cal.expected_log10(&careful) < cal.expected_log10(&base));
    }

    #[test]
    fn java_effect_lowers_counts() {
        let config = CorpusConfig::paper();
        let cal = Calibration::for_config(&config);
        let mk = |d: Dialect| AppSpec {
            name: "x".into(),
            dialect: d,
            domain: Domain::Server,
            target_kloc: 2.0,
            maturity: 0.5,
            review: 0.5,
            expertise: 0.5,
            first_release_year: 2004,
            seed: 0,
        };
        assert!(cal.expected_log10(&mk(Dialect::Java)) < cal.expected_log10(&mk(Dialect::C)));
        assert_eq!(
            cal.expected_log10(&mk(Dialect::Python)),
            cal.expected_log10(&mk(Dialect::C))
        );
    }

    #[test]
    fn counts_respect_clamps() {
        let config = CorpusConfig::small(3, 5);
        let cal = Calibration::for_config(&config);
        let mut rng = StdRng::seed_from_u64(3);
        let spec = AppSpec::sample(0, Dialect::C, &mut rng, 0.2, 0.3);
        for _ in 0..50 {
            let v = cal.vuln_count(&spec, &mut rng);
            assert!(v >= 2);
            assert!(v <= (spec.module_count() * 8).max(3));
        }
    }
}
