//! corpus — synthetic open-source application corpus with CVE histories.
//!
//! The paper trains on 164 real open-source applications with ≥5-year CVE
//! histories (5,975 CVEs as of April 2017). Offline, this crate synthesizes
//! a statistically analogous corpus:
//!
//! * [`spec`] — per-application specifications sampled from per-language
//!   priors (size, domain, module count, and the latent *process-quality*
//!   factors: code maturity, review level, developer expertise — the
//!   factors §3.1 of the paper says drive security beyond LoC);
//! * [`synth`] — a program synthesizer that emits genuine MiniLang modules
//!   (functions, call layers, loops, buffers, endpoints, comments) which
//!   every real analysis in `static-analysis` then measures;
//! * [`vuln`] — CWE seeding recipes that inject real vulnerable code
//!   patterns (strcpy-into-buffer, tainted format strings, TOCTOU pairs…);
//! * [`cve`] — CVE-history synthesis: discovery dates, CVSS vectors derived
//!   from each seed's context (endpoint reachability → AV, privilege → the
//!   impact metrics);
//! * [`generator`] — ties it together and calibrates the corpus-level
//!   statistics to the paper's Figure 2 regime (log-log slope ≈ 0.39 with
//!   R² ≈ 25 %, quality factors carrying most of the residual variance);
//! * [`survey`] — the Figure 1 substrate: a synthetic proceedings corpus
//!   plus the evaluation-method classifier.
//!
//! Determinism: everything is seeded; the same `CorpusConfig` yields the
//! same corpus byte-for-byte.

pub mod cve;
pub mod generator;
pub mod spec;
pub mod stream;
pub mod survey;
pub mod synth;
pub mod vuln;

pub use generator::{Corpus, CorpusConfig, CorpusStream, GeneratedApp};
pub use spec::{AppSpec, Domain};
pub use stream::{EpochApp, LongitudinalStream, StreamConfig, TenantKnobs};
pub use vuln::SeededVuln;
