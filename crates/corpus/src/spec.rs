//! Application specifications.
//!
//! §3.1 of the paper: *"The security of a program is under the influence of
//! a number of factors, such as expertise of the programmers, code
//! maturity, and level of code review."* Those three latent factors live
//! here, alongside the observable size/domain/language parameters. The
//! synthesizer translates the latent factors into *measurable* code
//! properties (comment density, validation branches, bounded copies, code
//! smells) — which is exactly why the paper's unified model can beat
//! LoC-only prediction on this corpus.

use minilang::Dialect;
use rand::rngs::StdRng;
use rand::Rng;

/// What kind of software the application is; drives endpoint structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Network daemon: many `@endpoint(network)` handlers.
    Server,
    /// Library: no endpoints of its own, wide internal API.
    Library,
    /// Command-line tool: local endpoints, file I/O.
    CliTool,
    /// Desktop app: local + file endpoints.
    Desktop,
}

impl Domain {
    pub const ALL: [Domain; 4] = [
        Domain::Server,
        Domain::Library,
        Domain::CliTool,
        Domain::Desktop,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Domain::Server => "server",
            Domain::Library => "library",
            Domain::CliTool => "cli",
            Domain::Desktop => "desktop",
        }
    }
}

/// Full specification of one synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Unique application name, e.g. `"httpd-042"`.
    pub name: String,
    pub dialect: Dialect,
    pub domain: Domain,
    /// Target size in thousands of code lines; the synthesizer emits
    /// approximately this much real code.
    pub target_kloc: f64,
    /// Latent process-quality factors in `[0, 1]` (1 = best).
    pub maturity: f64,
    pub review: f64,
    pub expertise: f64,
    /// First-release year (CVE history starts at or after this).
    pub first_release_year: i32,
    /// RNG seed for this app's synthesis (derived from the corpus seed).
    pub seed: u64,
}

impl AppSpec {
    /// The combined quality score `q = 0.5·review + 0.3·expertise +
    /// 0.2·maturity` used by the corpus calibration.
    pub fn quality(&self) -> f64 {
        0.5 * self.review + 0.3 * self.expertise + 0.2 * self.maturity
    }

    /// Approximate module (file) count for the target size, at roughly 250
    /// lines per module.
    pub fn module_count(&self) -> usize {
        ((self.target_kloc * 1000.0 / 250.0).round() as usize).max(1)
    }

    /// Endpoints scale with domain and size.
    pub fn endpoint_count(&self) -> usize {
        let base = match self.domain {
            Domain::Server => 4.0,
            Domain::Library => 0.0,
            Domain::CliTool => 2.0,
            Domain::Desktop => 2.0,
        };
        ((base + self.target_kloc.sqrt()) as usize).max(if self.domain == Domain::Library {
            0
        } else {
            1
        })
    }

    /// Sample a spec from per-language priors.
    ///
    /// Sizes are log-uniform over `[min_kloc, max_kloc]`; C projects skew
    /// larger (as in the paper's corpus where C dominates the big systems).
    pub fn sample(
        index: usize,
        dialect: Dialect,
        rng: &mut StdRng,
        min_kloc: f64,
        max_kloc: f64,
    ) -> AppSpec {
        let (lo, hi) = match dialect {
            // C projects reach the top of the size range; managed-language
            // projects cluster smaller, echoing the real corpus.
            Dialect::C => (min_kloc, max_kloc),
            Dialect::Cpp => (min_kloc, max_kloc * 0.8),
            Dialect::Java => (min_kloc, max_kloc * 0.5),
            Dialect::Python => (min_kloc, max_kloc * 0.3),
        };
        let log_kloc = rng.gen_range(lo.ln()..=hi.ln().max(lo.ln() + 1e-9));
        let domain = match dialect {
            Dialect::Python => {
                [Domain::CliTool, Domain::Library, Domain::Server][rng.gen_range(0..3usize)]
            }
            _ => Domain::ALL[rng.gen_range(0..Domain::ALL.len())],
        };
        let stem = match domain {
            Domain::Server => "srvd",
            Domain::Library => "lib",
            Domain::CliTool => "tool",
            Domain::Desktop => "app",
        };
        AppSpec {
            name: format!("{stem}-{}-{index:03}", dialect.extension()),
            dialect,
            domain,
            target_kloc: log_kloc.exp(),
            maturity: rng.gen_range(0.0..1.0),
            review: rng.gen_range(0.0..1.0),
            expertise: rng.gen_range(0.0..1.0),
            first_release_year: rng.gen_range(2000..=2008),
            seed: rng.gen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn quality_is_weighted_average() {
        let spec = AppSpec {
            name: "x".into(),
            dialect: Dialect::C,
            domain: Domain::Server,
            target_kloc: 1.0,
            maturity: 1.0,
            review: 0.0,
            expertise: 0.5,
            first_release_year: 2004,
            seed: 0,
        };
        assert!((spec.quality() - (0.3 * 0.5 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn sample_respects_size_bounds() {
        let mut r = rng();
        for i in 0..50 {
            let s = AppSpec::sample(i, Dialect::C, &mut r, 0.3, 20.0);
            assert!(s.target_kloc >= 0.3 - 1e-9 && s.target_kloc <= 20.0 + 1e-9);
            assert!((0.0..=1.0).contains(&s.maturity));
            assert!((2000..=2008).contains(&s.first_release_year));
        }
    }

    #[test]
    fn python_projects_are_smaller_on_average() {
        let mut r = rng();
        let mean = |d: Dialect, r: &mut StdRng| -> f64 {
            (0..80)
                .map(|i| AppSpec::sample(i, d, r, 0.3, 20.0).target_kloc)
                .sum::<f64>()
                / 80.0
        };
        let c = mean(Dialect::C, &mut r);
        let py = mean(Dialect::Python, &mut r);
        assert!(c > py, "C mean {c} should exceed Python mean {py}");
    }

    #[test]
    fn names_are_unique_per_index() {
        let mut r = rng();
        let a = AppSpec::sample(1, Dialect::C, &mut r, 1.0, 2.0);
        let b = AppSpec::sample(2, Dialect::C, &mut r, 1.0, 2.0);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn module_count_scales_with_size() {
        let mut r = rng();
        let mut small = AppSpec::sample(0, Dialect::C, &mut r, 1.0, 1.0001);
        small.target_kloc = 0.4;
        let mut big = small.clone();
        big.target_kloc = 8.0;
        assert_eq!(small.module_count(), 2);
        assert_eq!(big.module_count(), 32);
    }

    #[test]
    fn libraries_may_have_zero_endpoints() {
        let mut r = rng();
        let mut s = AppSpec::sample(0, Dialect::C, &mut r, 1.0, 1.0001);
        s.domain = Domain::Library;
        s.target_kloc = 0.01;
        assert_eq!(s.endpoint_count(), 0);
        s.domain = Domain::Server;
        assert!(s.endpoint_count() >= 1);
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        let a = AppSpec::sample(3, Dialect::Java, &mut r1, 0.5, 5.0);
        let b = AppSpec::sample(3, Dialect::Java, &mut r2, 0.5, 5.0);
        assert_eq!(a, b);
    }
}
