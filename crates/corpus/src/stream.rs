//! Longitudinal, multi-tenant corpus streaming.
//!
//! The ROADMAP's last open item: re-estimating the clairvoyant metric as a
//! codebase *population* evolves. This module models that population as a
//! set of tenants (organizations) whose process-metric knobs — maturity,
//! review intensity, expertise — drift over simulated epochs, and whose
//! applications are occasionally rewritten, picking up the tenant's
//! current process state and a fresh CVE trajectory.
//!
//! Everything is a pure function of `(seed, tenant knobs, app index,
//! epoch)`:
//!
//! * each app owns an RNG stream derived from the master seed and its
//!   index, so apps can be generated independently, in any order, in
//!   chunks of any size — 100k apps never need to be resident at once;
//! * whether an app changed in epoch `e` is its own derived stream, so
//!   the change schedule can be queried without synthesizing anything;
//! * an app's code is a function of the epoch it was *last changed* in —
//!   untouched apps are byte-identical across epochs, which is what lets
//!   the incremental engine skip them;
//! * CVE ids come from a per-app number block (index·4096), so record
//!   identity needs no cross-app coordination.
//!
//! Epoch `e` reveals only records published up to `first_epoch_year + e`
//! — the clairvoyant ground-truth window advancing one year per epoch.

use crate::cve;
use crate::generator::{sample_cwes, Calibration, GeneratedApp};
use crate::spec::{AppSpec, Domain};
use crate::synth::{self, SynthOutput};
use cvedb::CveRecord;
use minilang::Dialect;
use rand::rngs::StdRng;
use rand::{derive_seed, Rng, SeedableRng};

/// Per-tenant process-metric knobs. Apps belonging to the tenant start at
/// the base values (with per-app jitter) and drift each time they are
/// rewritten, reflecting the tenant's process maturing (or decaying).
#[derive(Debug, Clone)]
pub struct TenantKnobs {
    /// Tenant name; becomes the app-name prefix.
    pub name: String,
    /// Base process quality in `[0, 1]` at epoch 0.
    pub maturity: f64,
    pub review: f64,
    pub expertise: f64,
    /// Added to each knob per epoch-of-last-change (clamped to `[0, 1]`):
    /// a positive drift means apps rewritten later inherit better process.
    pub maturity_drift: f64,
    pub review_drift: f64,
    pub expertise_drift: f64,
    /// Probability an app is rewritten in any given epoch ≥ 1.
    pub change_rate: f64,
}

impl TenantKnobs {
    /// A neutral tenant: mid-scale knobs, improving review, 20% churn.
    pub fn named(name: &str) -> TenantKnobs {
        TenantKnobs {
            name: name.to_string(),
            maturity: 0.5,
            review: 0.45,
            expertise: 0.5,
            maturity_drift: 0.04,
            review_drift: 0.05,
            expertise_drift: 0.02,
            change_rate: 0.2,
        }
    }
}

/// Configuration for a [`LongitudinalStream`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total applications in the population.
    pub apps: usize,
    /// Tenants; app `i` belongs to tenant `i % tenants.len()`.
    pub tenants: Vec<TenantKnobs>,
    /// Master seed; every app stream derives from it.
    pub seed: u64,
    /// Size range in kLoC (log-uniform, per-dialect scaled as in the
    /// static corpus).
    pub min_kloc: f64,
    pub max_kloc: f64,
    /// Language weights `[C, C++, Python, Java]`.
    pub language_weights: [u32; 4],
    /// Target LoC-only R² for the count calibration.
    pub target_loc_r2: f64,
    /// Ground-truth cutoff year for epoch 0; epoch `e` reveals records
    /// published up to `first_epoch_year + e`.
    pub first_epoch_year: i32,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            apps: 1000,
            tenants: vec![
                TenantKnobs::named("acme"),
                TenantKnobs {
                    // A legacy shop: weak process, decaying, high churn.
                    maturity: 0.35,
                    review: 0.25,
                    expertise: 0.4,
                    maturity_drift: -0.02,
                    review_drift: -0.03,
                    expertise_drift: 0.0,
                    change_rate: 0.35,
                    ..TenantKnobs::named("initech")
                },
                TenantKnobs {
                    // A mature platform team: strong process, slow churn.
                    maturity: 0.7,
                    review: 0.75,
                    expertise: 0.7,
                    change_rate: 0.1,
                    ..TenantKnobs::named("globex")
                },
            ],
            seed: 0x0001_0ad5_7217,
            min_kloc: 0.2,
            max_kloc: 1.6,
            language_weights: [12, 3, 3, 2],
            target_loc_r2: 0.2466,
            first_epoch_year: 2012,
        }
    }
}

/// One application materialized at a specific epoch.
#[derive(Debug, Clone)]
pub struct EpochApp {
    pub app: GeneratedApp,
    /// CVE records revealed by this epoch's ground-truth cutoff.
    pub records: Vec<CveRecord>,
    /// Whether the app was rewritten in this epoch (always true at 0).
    pub changed: bool,
    /// The epoch the app's current code dates from.
    pub last_changed: usize,
}

/// A seeded view of the evolving population. Holds only the config and
/// calibration; every query synthesizes on demand.
#[derive(Debug, Clone)]
pub struct LongitudinalStream {
    config: StreamConfig,
    cal: Calibration,
}

impl LongitudinalStream {
    pub fn new(config: StreamConfig) -> LongitudinalStream {
        assert!(!config.tenants.is_empty(), "at least one tenant required");
        let cal = Calibration::for_range(config.min_kloc, config.max_kloc, config.target_loc_r2);
        LongitudinalStream { config, cal }
    }

    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Ground-truth cutoff year for epoch `e`.
    pub fn cutoff_year(&self, epoch: usize) -> i32 {
        self.config.first_epoch_year + epoch as i32
    }

    /// Whether app `i` is rewritten in epoch `e` (epoch 0 creates all).
    pub fn changed_in(&self, index: usize, epoch: usize) -> bool {
        if epoch == 0 {
            return true;
        }
        let app_seed = derive_seed(self.config.seed, index as u64);
        let tenant = &self.config.tenants[index % self.config.tenants.len()];
        let mut rng = StdRng::seed_from_u64(derive_seed(app_seed, 0x10000 + epoch as u64));
        rng.gen_bool(tenant.change_rate)
    }

    /// The epoch app `i`'s code dates from, as of epoch `e`.
    pub fn last_changed(&self, index: usize, epoch: usize) -> usize {
        (1..=epoch)
            .rev()
            .find(|&e| self.changed_in(index, e))
            .unwrap_or(0)
    }

    /// Materialize app `i` at epoch `e` — a pure function of the seed,
    /// the owning tenant's knobs, and `(i, e)`.
    pub fn epoch_app(&self, index: usize, epoch: usize) -> EpochApp {
        let last_changed = self.last_changed(index, epoch);
        let changed = epoch == 0 || self.changed_in(index, epoch);
        let (app, records) = self.materialize(index, last_changed);
        let cutoff = self.cutoff_year(epoch);
        EpochApp {
            app,
            records: records
                .into_iter()
                .filter(|r| r.published.year <= cutoff)
                .collect(),
            changed,
            last_changed,
        }
    }

    /// Synthesize app `i` as of the code generation it picked up in epoch
    /// `last_changed`, returning its *entire* CVE trajectory (no epoch
    /// cutoff). Replay drivers cache this per `(index, last_changed)` and
    /// re-filter by cutoff each epoch, so untouched apps are synthesized
    /// once, not once per epoch.
    pub fn materialize(&self, index: usize, last_changed: usize) -> (GeneratedApp, Vec<CveRecord>) {
        assert!(index < self.config.apps, "app {index} out of population");
        let app_seed = derive_seed(self.config.seed, index as u64);
        let tenant = &self.config.tenants[index % self.config.tenants.len()];

        // Stable identity draws: everything that survives rewrites.
        let mut base = StdRng::seed_from_u64(derive_seed(app_seed, 1));
        let weights = self.config.language_weights;
        let total: u32 = weights.iter().sum();
        let mut roll = base.gen_range(0..total.max(1));
        let dialect = [Dialect::C, Dialect::Cpp, Dialect::Python, Dialect::Java]
            .into_iter()
            .zip(weights)
            .find(|(_, w)| {
                if roll < *w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .map(|(d, _)| d)
            .unwrap_or(Dialect::C);
        let (lo, hi) = match dialect {
            Dialect::C => (self.config.min_kloc, self.config.max_kloc),
            Dialect::Cpp => (self.config.min_kloc, self.config.max_kloc * 0.8),
            Dialect::Java => (self.config.min_kloc, self.config.max_kloc * 0.5),
            Dialect::Python => (self.config.min_kloc, self.config.max_kloc * 0.3),
        };
        let log_kloc = base.gen_range(lo.ln()..=hi.ln().max(lo.ln() + 1e-9));
        let domain = match dialect {
            Dialect::Python => {
                [Domain::CliTool, Domain::Library, Domain::Server][base.gen_range(0..3usize)]
            }
            _ => Domain::ALL[base.gen_range(0..Domain::ALL.len())],
        };
        let jitter = |rng: &mut StdRng| rng.gen_range(-0.1..0.1);
        let (jm, jr, je) = (jitter(&mut base), jitter(&mut base), jitter(&mut base));
        let first_release_year = base.gen_range(2000..=2008);

        // Process knobs reflect the tenant's state at the last rewrite.
        let drifted = |b: f64, j: f64, d: f64| (b + j + d * last_changed as f64).clamp(0.0, 1.0);
        let spec = AppSpec {
            name: format!("{}-{}-{index:06}", tenant.name, dialect.extension()),
            dialect,
            domain,
            target_kloc: log_kloc.exp(),
            maturity: drifted(tenant.maturity, jm, tenant.maturity_drift),
            review: drifted(tenant.review, jr, tenant.review_drift),
            expertise: drifted(tenant.expertise, je, tenant.expertise_drift),
            first_release_year,
            seed: derive_seed(app_seed, 0x20000 + last_changed as u64),
        };

        // Epoch synthesis: vulnerability count, seeds and history are
        // keyed to the last-changed epoch, so untouched apps replay the
        // exact same code and trajectory.
        let mut erng = StdRng::seed_from_u64(derive_seed(app_seed, 0x30000 + last_changed as u64));
        let target_vulns = self.cal.vuln_count(&spec, &mut erng);
        let seeds = sample_cwes(&spec, target_vulns, &mut erng);
        let SynthOutput {
            files,
            program,
            seeded,
        } = synth::synthesize(&spec, &seeds);
        let mut next_cve = (index as u32) * 4096 + 1;
        let records = cve::synthesize_history(&spec, &seeded, &mut next_cve, &mut erng);
        (
            GeneratedApp {
                spec,
                program,
                files,
                seeded,
            },
            records,
        )
    }

    /// Iterate the whole population at epoch `e`, one app at a time.
    pub fn epoch(&self, epoch: usize) -> impl Iterator<Item = EpochApp> + '_ {
        (0..self.config.apps).map(move |i| self.epoch_app(i, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StreamConfig {
        StreamConfig {
            apps: 8,
            ..StreamConfig::default()
        }
    }

    fn fingerprint(a: &EpochApp) -> String {
        let files: Vec<&(String, String)> = a.app.files.iter().collect();
        let recs: Vec<String> = a.records.iter().map(|r| format!("{r:?}")).collect();
        format!(
            "{:?}|{files:?}|{recs:?}|{}|{}",
            a.app.spec, a.changed, a.last_changed
        )
    }

    #[test]
    fn epoch_app_is_pure() {
        let s = LongitudinalStream::new(small());
        for e in [0usize, 1, 3] {
            for i in 0..8 {
                assert_eq!(
                    fingerprint(&s.epoch_app(i, e)),
                    fingerprint(&s.epoch_app(i, e)),
                    "app {i} epoch {e}"
                );
            }
        }
    }

    #[test]
    fn consumption_order_is_irrelevant() {
        let s = LongitudinalStream::new(small());
        let forward: Vec<String> = s.epoch(2).map(|a| fingerprint(&a)).collect();
        let backward: Vec<String> = (0..8)
            .rev()
            .map(|i| fingerprint(&s.epoch_app(i, 2)))
            .collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn unchanged_apps_keep_identical_code_across_epochs() {
        let s = LongitudinalStream::new(small());
        for i in 0..8 {
            let e3 = s.epoch_app(i, 3);
            let e4 = s.epoch_app(i, 4);
            if e4.last_changed == e3.last_changed {
                assert_eq!(e3.app.files, e4.app.files, "app {i} untouched but differs");
                assert_eq!(e3.app.spec, e4.app.spec);
            }
        }
    }

    #[test]
    fn records_accumulate_with_epochs() {
        let s = LongitudinalStream::new(small());
        for i in 0..8 {
            let early = s.epoch_app(i, 0);
            let late = s.epoch_app(i, 4);
            if late.last_changed == 0 {
                assert!(late.records.len() >= early.records.len());
            }
            for r in &late.records {
                assert!(r.published.year <= s.cutoff_year(4));
            }
        }
    }

    #[test]
    fn change_schedule_matches_materialization() {
        let s = LongitudinalStream::new(small());
        for i in 0..8 {
            for e in 0..5 {
                let a = s.epoch_app(i, e);
                assert_eq!(a.changed, s.changed_in(i, e));
                assert_eq!(a.last_changed, s.last_changed(i, e));
                assert!(a.last_changed <= e);
            }
        }
    }

    #[test]
    fn cve_blocks_do_not_collide() {
        let s = LongitudinalStream::new(small());
        let mut seen = std::collections::BTreeSet::new();
        for a in s.epoch(3) {
            for r in &a.records {
                assert!(seen.insert(format!("{}", r.id)), "duplicate {}", r.id);
            }
        }
    }
}
