//! The Figure 1 substrate: a synthetic proceedings corpus and the
//! evaluation-method survey classifier.
//!
//! Figure 1 of the paper counts, across CCS/PLDI/SOSP/ASPLOS/EuroSys
//! proceedings, how many papers evaluate security via lines of code (384),
//! via CVE-report counts (116), and via formal verification (31). We cannot
//! ship those proceedings, so this module generates a synthetic paper
//! corpus with known per-venue rates calibrated to the published totals,
//! and a text classifier that re-derives the counts the way the authors'
//! survey did — by scanning evaluation sections for indicator phrases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The five venues the paper surveys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Venue {
    Ccs,
    Pldi,
    Sosp,
    Asplos,
    Eurosys,
}

impl Venue {
    pub const ALL: [Venue; 5] = [
        Venue::Ccs,
        Venue::Pldi,
        Venue::Sosp,
        Venue::Asplos,
        Venue::Eurosys,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Venue::Ccs => "CCS",
            Venue::Pldi => "PLDI",
            Venue::Sosp => "SOSP",
            Venue::Asplos => "ASPLOS",
            Venue::Eurosys => "EuroSys",
        }
    }

    /// Papers in the surveyed window, and the per-venue counts using each
    /// evaluation method `(papers, loc, cve, verified)`. The venue split is
    /// synthetic; the totals match the paper's Figure 1: 384 / 116 / 31.
    fn profile(self) -> (usize, usize, usize, usize) {
        match self {
            Venue::Ccs => (620, 120, 60, 8),
            Venue::Pldi => (240, 30, 6, 9),
            Venue::Sosp => (180, 60, 14, 7),
            Venue::Asplos => (300, 84, 16, 3),
            Venue::Eurosys => (200, 90, 20, 4),
        }
    }
}

/// Which evaluation methods a paper uses (a paper can use several).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalMethods {
    pub lines_of_code: bool,
    pub cve_counts: bool,
    pub formal_verification: bool,
}

/// One synthetic paper.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyPaper {
    pub venue: Venue,
    pub title: String,
    /// The evaluation-section prose the classifier scans.
    pub evaluation_text: String,
    /// Ground truth for classifier validation.
    pub truth: EvalMethods,
}

const LOC_SENTENCES: &[&str] = &[
    "Our trusted computing base is only 4,200 lines of code, an order of magnitude smaller than the baseline.",
    "We reduce the TCB size from 310 kLoC to 12 kLoC.",
    "The enclave runtime comprises 8,900 lines of code, compared to 1.2 MLoC for the monolithic design.",
];

const CVE_SENTENCES: &[&str] = &[
    "Of the 57 CVE reports filed against the daemon since 2010, our design structurally prevents 49.",
    "We analyzed 112 entries from the CVE database affecting commodity hypervisors.",
    "The kernel accumulated 23 CVE reports in this subsystem during the study period.",
];

const FV_SENTENCES: &[&str] = &[
    "All components are formally verified in Coq against the high-level specification.",
    "We prove functional correctness with a machine-checked proof in Isabelle/HOL.",
    "The protocol core is formally verified; the proof comprises 18,000 lines of Coq.",
];

const FILLER_SENTENCES: &[&str] = &[
    "Throughput improves by 2.3x on the YCSB workloads.",
    "We evaluate on a 32-node cluster with 100 GbE interconnect.",
    "Median latency drops from 840 us to 170 us under contention.",
    "The prototype supports unmodified POSIX applications.",
    "Cache miss rates fall by 41 percent on the graph workloads.",
];

const TITLE_STEMS: &[&str] = &[
    "Efficient Isolation for",
    "Rethinking",
    "A Verified Stack for",
    "Scalable",
    "Practical",
    "Fast and Safe",
    "Transparent",
    "Lightweight",
];

const TITLE_TOPICS: &[&str] = &[
    "Serverless Runtimes",
    "Kernel Extensions",
    "Distributed Snapshots",
    "Memory Tiering",
    "Enclave Computing",
    "Network Functions",
    "File Systems",
    "Browser Sandboxes",
];

/// Generate the proceedings corpus, calibrated to the Figure 1 totals.
pub fn generate_proceedings(seed: u64) -> Vec<SurveyPaper> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut papers = Vec::new();
    for venue in Venue::ALL {
        let (total, loc, cve, fv) = venue.profile();
        // Method flags per paper index: the first `loc` get LoC, an
        // overlapping window gets CVE, a further window gets FV; shuffle at
        // the end so ordering carries no signal.
        for i in 0..total {
            let truth = EvalMethods {
                lines_of_code: i < loc,
                // CVE users overlap the LoC users by half, as real security
                // evaluations often cite both.
                cve_counts: i >= loc / 2 && i < loc / 2 + cve,
                formal_verification: i >= total - fv,
            };
            let mut sentences: Vec<&str> = Vec::new();
            if truth.lines_of_code {
                sentences.push(LOC_SENTENCES[rng.gen_range(0..LOC_SENTENCES.len())]);
            }
            if truth.cve_counts {
                sentences.push(CVE_SENTENCES[rng.gen_range(0..CVE_SENTENCES.len())]);
            }
            if truth.formal_verification {
                sentences.push(FV_SENTENCES[rng.gen_range(0..FV_SENTENCES.len())]);
            }
            for _ in 0..rng.gen_range(2..5) {
                sentences.push(FILLER_SENTENCES[rng.gen_range(0..FILLER_SENTENCES.len())]);
            }
            // Mild shuffle of sentence order.
            for k in (1..sentences.len()).rev() {
                let j = rng.gen_range(0..=k);
                sentences.swap(k, j);
            }
            papers.push(SurveyPaper {
                venue,
                title: format!(
                    "{} {} ({})",
                    TITLE_STEMS[rng.gen_range(0..TITLE_STEMS.len())],
                    TITLE_TOPICS[rng.gen_range(0..TITLE_TOPICS.len())],
                    i
                ),
                evaluation_text: sentences.join(" "),
                truth,
            });
        }
    }
    // Shuffle the whole corpus.
    for k in (1..papers.len()).rev() {
        let j = rng.gen_range(0..=k);
        papers.swap(k, j);
    }
    papers
}

/// Classify one paper's evaluation text by indicator phrases — the survey
/// methodology of Figure 1.
pub fn classify(text: &str) -> EvalMethods {
    let lower = text.to_ascii_lowercase();
    let has = |needles: &[&str]| needles.iter().any(|n| lower.contains(n));
    EvalMethods {
        lines_of_code: has(&["lines of code", "kloc", "mloc", "tcb size", "loc)"]),
        cve_counts: has(&["cve report", "cve database", "cve-", "entries from the cve"]),
        formal_verification: has(&[
            "formally verified",
            "machine-checked proof",
            "we prove functional correctness",
            "verified in coq",
        ]),
    }
}

/// Survey results: per-venue counts per method.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurveyResult {
    /// `(venue, loc, cve, verified)` rows in `Venue::ALL` order.
    pub rows: Vec<(Venue, usize, usize, usize)>,
}

impl SurveyResult {
    pub fn total_loc(&self) -> usize {
        self.rows.iter().map(|r| r.1).sum()
    }

    pub fn total_cve(&self) -> usize {
        self.rows.iter().map(|r| r.2).sum()
    }

    pub fn total_verified(&self) -> usize {
        self.rows.iter().map(|r| r.3).sum()
    }
}

/// Run the classifier over a proceedings corpus.
pub fn run_survey(papers: &[SurveyPaper]) -> SurveyResult {
    let mut rows: Vec<(Venue, usize, usize, usize)> =
        Venue::ALL.iter().map(|&v| (v, 0, 0, 0)).collect();
    for paper in papers {
        let methods = classify(&paper.evaluation_text);
        let row = rows
            .iter_mut()
            .find(|(v, ..)| *v == paper.venue)
            .expect("venue row exists");
        row.1 += methods.lines_of_code as usize;
        row.2 += methods.cve_counts as usize;
        row.3 += methods.formal_verification as usize;
    }
    SurveyResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_totals_match_figure_1() {
        let papers = generate_proceedings(1);
        let truth_loc = papers.iter().filter(|p| p.truth.lines_of_code).count();
        let truth_cve = papers.iter().filter(|p| p.truth.cve_counts).count();
        let truth_fv = papers
            .iter()
            .filter(|p| p.truth.formal_verification)
            .count();
        assert_eq!(truth_loc, 384);
        assert_eq!(truth_cve, 116);
        assert_eq!(truth_fv, 31);
    }

    #[test]
    fn classifier_recovers_ground_truth() {
        let papers = generate_proceedings(2);
        for p in &papers {
            let got = classify(&p.evaluation_text);
            assert_eq!(got, p.truth, "misclassified: {}", p.evaluation_text);
        }
    }

    #[test]
    fn survey_counts_match_paper() {
        let papers = generate_proceedings(3);
        let result = run_survey(&papers);
        assert_eq!(result.total_loc(), 384);
        assert_eq!(result.total_cve(), 116);
        assert_eq!(result.total_verified(), 31);
        assert_eq!(result.rows.len(), 5);
    }

    #[test]
    fn loc_dominates_in_every_systems_venue() {
        let papers = generate_proceedings(4);
        let result = run_survey(&papers);
        for (venue, loc, cve, fv) in &result.rows {
            if *venue != Venue::Pldi {
                assert!(loc > cve, "{}: {loc} vs {cve}", venue.name());
            }
            assert!(loc + cve > *fv, "{}", venue.name());
        }
    }

    #[test]
    fn classifier_handles_negatives() {
        let m = classify("Throughput improves by 2x; we evaluate on a 32-node cluster.");
        assert_eq!(m, EvalMethods::default());
        // A clock-related sentence must not trip the LoC matcher.
        let m = classify("The clock synchronization protocol has low overhead.");
        assert!(!m.lines_of_code);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_proceedings(9), generate_proceedings(9));
        assert_ne!(generate_proceedings(9), generate_proceedings(10));
    }

    #[test]
    fn venue_names() {
        let names: Vec<&str> = Venue::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["CCS", "PLDI", "SOSP", "ASPLOS", "EuroSys"]);
    }
}
