//! Program synthesis.
//!
//! Emits genuine MiniLang applications: layered modules, call graphs,
//! loops, buffers, endpoints and comments. The latent process-quality
//! factors of the [`AppSpec`] surface as *measurable* code properties:
//!
//! * low **review** → sparse comments, longer functions, duplicated blocks;
//! * low **expertise** → unguarded buffer writes, dead stores, deeper
//!   nesting, unvalidated parameters;
//! * low **maturity** → fewer validation branches, more unresolved externs.
//!
//! Every module is built as an AST, printed, decorated with comments, and
//! **re-parsed** — the analyses see exactly the final source text, and a
//! synthesis bug cannot produce unparseable code without failing loudly.

use crate::spec::{AppSpec, Domain};
use crate::vuln::{self, SeededVuln};
use cvedb::Cwe;
use minilang::ast::*;
use minilang::{print_module, Dialect, Span};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthesized application.
#[derive(Debug, Clone)]
pub struct SynthOutput {
    /// `(path, source)` pairs, in module order.
    pub files: Vec<(String, String)>,
    /// The parsed program (parsed back from `files`).
    pub program: Program,
    /// Ground truth: the vulnerabilities that were planted.
    pub seeded: Vec<SeededVuln>,
}

/// Plan for one function before body generation.
struct FnPlan {
    name: String,
    module: usize,
    params: Vec<(String, Type)>,
    ret: Type,
    annotations: Vec<Annotation>,
    /// CWE recipe to inject, if this function carries a seed.
    seed: Option<(Cwe, bool)>, // (cwe, exposed)
}

/// Synthesize an application, planting one carrier function per CWE entry
/// in `seeds` (`(cwe, exposed)` — exposed seeds are reachable from a
/// network endpoint).
pub fn synthesize(spec: &AppSpec, seeds: &[(Cwe, bool)]) -> SynthOutput {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let module_count = spec.module_count();
    let q = spec.quality();

    // ---- Plan functions ----------------------------------------------
    let mut plans: Vec<FnPlan> = Vec::new();
    let mut module_fn_count = vec![0usize; module_count];
    for (m, slot) in module_fn_count.iter_mut().enumerate() {
        // Heterogeneous module sizes: vulnerability carriers are later
        // biased toward the big modules, reproducing the empirical
        // clustering of vulnerabilities in large, complex files that the
        // Shin et al. replication (EXP-SHIN) depends on.
        let fn_count = rng.gen_range(3..=18);
        *slot = fn_count;
        for i in 0..fn_count {
            let stem = FN_STEMS[rng.gen_range(0..FN_STEMS.len())];
            let name = format!("{stem}_{m}_{i}");
            let mut params = Vec::new();
            for p in 0..rng.gen_range(0..4usize) {
                let ty = match rng.gen_range(0..4) {
                    0 => Type::Str,
                    1..=2 => Type::Int,
                    _ => Type::Bool,
                };
                params.push((format!("arg{p}"), ty));
            }
            let ret = match rng.gen_range(0..3) {
                0 => Type::Int,
                1 => Type::Void,
                _ => Type::Str,
            };
            plans.push(FnPlan {
                name,
                module: m,
                params,
                ret,
                annotations: vec![],
                seed: None,
            });
        }
    }

    // ---- Endpoints -----------------------------------------------------
    let endpoint_count = spec.endpoint_count().min(plans.len());
    for plan in plans.iter_mut().take(endpoint_count) {
        let channel = match spec.domain {
            Domain::Server => ChannelKind::Network,
            Domain::CliTool => ChannelKind::Local,
            Domain::Desktop => {
                if rng.gen_bool(0.5) {
                    ChannelKind::Local
                } else {
                    ChannelKind::File
                }
            }
            Domain::Library => ChannelKind::Local,
        };
        plan.annotations.push(Annotation::Endpoint(channel));
        // Endpoints always take attacker-facing data.
        if plan.params.is_empty() {
            plan.params.push(("req".into(), Type::Str));
        } else {
            plan.params[0].1 = Type::Str;
        }
        if rng.gen_bool(0.15) {
            plan.annotations.push(Annotation::Priv(PrivLevel::Root));
        }
    }

    // ---- Assign seeds to carrier functions ------------------------------
    // Exposed seeds go into endpoint functions (or get a fresh endpoint
    // annotation); internal seeds go anywhere else.
    let mut used: Vec<usize> = Vec::new();
    let mut hot_modules: Vec<usize> = Vec::new();
    let mut seeded: Vec<SeededVuln> = Vec::new();
    for &(cwe, exposed) in seeds {
        // Find an unused function; prefer endpoints for exposed seeds.
        let candidates: Vec<usize> = (0..plans.len())
            .filter(|i| !used.contains(i))
            .filter(|&i| {
                let is_endpoint = plans[i].annotations.iter().any(|a| a.is_endpoint());
                if exposed {
                    is_endpoint || i >= endpoint_count
                } else {
                    !is_endpoint
                }
            })
            .collect();
        // Tiny apps can run out of functions matching the exposure
        // constraint; fall back to any unused function so every planned
        // seed lands (the CVE count must match the calibration).
        let candidates: Vec<usize> = if candidates.is_empty() {
            (0..plans.len()).filter(|i| !used.contains(i)).collect()
        } else {
            candidates
        };
        if candidates.is_empty() {
            continue; // genuinely out of functions
        }
        // Vulnerabilities cluster: prefer modules that already carry a
        // seed (the Shin et al. "hot file" effect), and otherwise draw a
        // small tournament won by the module with the most functions —
        // vulnerabilities live in the large, busy files.
        let clustered: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| hot_modules.contains(&plans[i].module))
            .collect();
        let pool = if !clustered.is_empty() && rng.gen_bool(0.65) {
            clustered
        } else {
            candidates
        };
        let idx = (0..3)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .max_by_key(|&i| module_fn_count[plans[i].module])
            .expect("three draws");
        hot_modules.push(plans[idx].module);
        used.push(idx);
        let plan = &mut plans[idx];
        if exposed && !plan.annotations.iter().any(|a| a.is_endpoint()) {
            plan.annotations
                .push(Annotation::Endpoint(ChannelKind::Network));
            if plan.params.is_empty() {
                plan.params.push(("req".into(), Type::Str));
            } else {
                plan.params[0].1 = Type::Str;
            }
        }
        plan.seed = Some((cwe, exposed));
        let priv_root = plan
            .annotations
            .contains(&Annotation::Priv(PrivLevel::Root));
        seeded.push(SeededVuln {
            cwe,
            function: plan.name.clone(),
            module: format!("src/mod_{}.{}", plan.module, spec.dialect.extension()),
            exposed,
            priv_root,
        });
    }

    // ---- Generate bodies and print modules -------------------------------
    let mut files: Vec<(String, String)> = Vec::new();
    for m in 0..module_count {
        let path = format!("src/mod_{m}.{}", spec.dialect.extension());
        let mut module = Module {
            path: path.clone(),
            dialect: spec.dialect,
            source: String::new(),
            globals: Vec::new(),
            functions: Vec::new(),
        };
        // A couple of module globals.
        for g in 0..rng.gen_range(0..3usize) {
            module.globals.push(Global {
                name: format!("g_{m}_{g}"),
                ty: if rng.gen_bool(0.7) {
                    Type::Int
                } else {
                    Type::Str
                },
                init: rng.gen_bool(0.6).then(|| Expr::int(rng.gen_range(0..100))),
                span: Span::dummy(),
            });
        }
        // Callees available to this module: functions in later modules
        // (keeps the call graph acyclic and layered).
        let callees: Vec<(String, usize, Type)> = plans
            .iter()
            .filter(|p| p.module > m)
            .map(|p| (p.name.clone(), p.params.len(), p.ret.clone()))
            .collect();

        for plan in plans.iter().filter(|p| p.module == m) {
            let body = BodyGen {
                rng: &mut rng,
                quality: q,
                callees: &callees,
                params: &plan.params,
                ret: plan.ret.clone(),
            }
            .generate(plan.seed);
            module.functions.push(Function {
                name: plan.name.clone(),
                params: plan
                    .params
                    .iter()
                    .map(|(n, t)| Param {
                        name: n.clone(),
                        ty: t.clone(),
                        span: Span::dummy(),
                    })
                    .collect(),
                ret: plan.ret.clone(),
                body,
                annotations: plan.annotations.clone(),
                span: Span::dummy(),
            });
        }

        let printed = print_module(&module);
        let commented = insert_comments(&printed, spec.dialect, q, &mut rng);
        files.push((path, commented));
    }

    // ---- Re-parse: analyses must see the final text --------------------
    let program = minilang::parse_program(&spec.name, spec.dialect, &files)
        .unwrap_or_else(|e| panic!("synthesized program failed to parse: {e}"));

    SynthOutput {
        files,
        program,
        seeded,
    }
}

const FN_STEMS: &[&str] = &[
    "handle", "parse", "process", "dispatch", "update", "compute", "format", "validate", "encode",
    "decode", "lookup", "flush", "init", "scan", "merge", "route",
];

const COMMENTS: &[&str] = &[
    "fast path for the common case",
    "bounds were validated by the caller",
    "see the protocol spec, section 4.2",
    "TODO: revisit once the parser is rewritten",
    "invariant: the table is sorted here",
    "keep in sync with the on-disk layout",
    "legacy behaviour, kept for compatibility",
    "the lock is held by our caller",
];

/// Insert line comments (rate driven by review quality) between statements
/// of a printed module. Inserting whole comment lines between existing
/// lines can never break the grammar.
fn insert_comments(source: &str, dialect: Dialect, quality: f64, rng: &mut StdRng) -> String {
    let rate = 0.02 + 0.28 * quality; // 2%..30% of lines get a comment
    let intro = dialect.line_comment();
    let mut out = String::with_capacity(source.len() * 11 / 10);
    for line in source.lines() {
        if rng.gen_bool(rate) {
            let indent: String = line.chars().take_while(|c| *c == ' ').collect();
            let text = COMMENTS[rng.gen_range(0..COMMENTS.len())];
            out.push_str(&format!("{indent}{intro} {text}\n"));
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Generates one function body.
struct BodyGen<'a> {
    rng: &'a mut StdRng,
    quality: f64,
    callees: &'a [(String, usize, Type)],
    params: &'a [(String, Type)],
    ret: Type,
}

impl BodyGen<'_> {
    fn generate(mut self, seed: Option<(Cwe, bool)>) -> Block {
        let mut stmts: Vec<Stmt> = Vec::new();
        let mut locals: Vec<(String, Type)> = Vec::new();

        // Body length: low review quality produces occasional long methods.
        let base_len = self.rng.gen_range(4..14);
        let long_tail = if self.rng.gen_bool((1.0 - self.quality) * 0.15) {
            55
        } else {
            0
        };
        let len = base_len + long_tail;

        // Leading declarations.
        for i in 0..self.rng.gen_range(1..4usize) {
            let name = format!("v{i}");
            let (ty, init) = match self.rng.gen_range(0..4) {
                0 => (Type::Str, Some(Expr::str_lit("init"))),
                1 => (
                    Type::Array(Box::new(Type::Int), *self.rng.choose(&[8usize, 16, 32, 64])),
                    None,
                ),
                _ => (Type::Int, Some(Expr::int(self.rng.gen_range(0..64)))),
            };
            stmts.push(stmt(StmtKind::Let {
                name: name.clone(),
                ty: ty.clone(),
                init,
            }));
            locals.push((name, ty));
        }

        // Careful developers validate their parameters up front.
        if self.rng.gen_bool(0.2 + 0.6 * self.quality) {
            if let Some((pname, _)) = self.params.iter().find(|(_, t)| *t == Type::Int) {
                stmts.push(stmt(StmtKind::If {
                    cond: Expr::binary(
                        BinaryOp::Or,
                        Expr::binary(BinaryOp::Lt, Expr::var(pname), Expr::int(0)),
                        Expr::binary(BinaryOp::Gt, Expr::var(pname), Expr::int(4096)),
                    ),
                    then_branch: Block::new(vec![self.return_stmt()], Span::dummy()),
                    else_branch: None,
                }));
            } else if let Some((pname, _)) = self.params.iter().find(|(_, t)| *t == Type::Str) {
                stmts.push(stmt(StmtKind::If {
                    cond: Expr::binary(
                        BinaryOp::Gt,
                        Expr::call("strlen", vec![Expr::var(pname)]),
                        Expr::int(1024),
                    ),
                    then_branch: Block::new(vec![self.return_stmt()], Span::dummy()),
                    else_branch: None,
                }));
            }
        }

        // The seeded vulnerability pattern goes early so it is reachable.
        if let Some((cwe, _)) = seed {
            let int_params: Vec<&str> = self
                .params
                .iter()
                .filter(|(_, t)| *t == Type::Int)
                .map(|(n, _)| n.as_str())
                .collect();
            let str_params: Vec<&str> = self
                .params
                .iter()
                .filter(|(_, t)| *t == Type::Str)
                .map(|(n, _)| n.as_str())
                .collect();
            stmts.extend(vuln::recipe(cwe, &str_params, &int_params, self.rng));
        }

        // Filler statements.
        for _ in 0..len {
            let s = self.filler_stmt(&mut locals);
            stmts.push(s);
        }

        stmts.push(self.return_stmt());
        Block::new(stmts, Span::dummy())
    }

    fn return_stmt(&mut self) -> Stmt {
        let value = match self.ret {
            Type::Void => None,
            Type::Int => Some(Expr::int(self.rng.gen_range(0..4))),
            Type::Str => Some(Expr::str_lit("done")),
            Type::Bool => Some(Expr::new(ExprKind::Bool(true), Span::dummy())),
            _ => None,
        };
        stmt(StmtKind::Return(value))
    }

    fn int_operand(&mut self, locals: &[(String, Type)]) -> Expr {
        let int_locals: Vec<&str> = locals
            .iter()
            .filter(|(_, t)| *t == Type::Int)
            .map(|(n, _)| n.as_str())
            .collect();
        let int_params: Vec<&str> = self
            .params
            .iter()
            .filter(|(_, t)| *t == Type::Int)
            .map(|(n, _)| n.as_str())
            .collect();
        match (
            int_locals.is_empty(),
            int_params.is_empty(),
            self.rng.gen_range(0..3),
        ) {
            (false, _, 0) => Expr::var(int_locals[self.rng.gen_range(0..int_locals.len())]),
            (_, false, 1) => Expr::var(int_params[self.rng.gen_range(0..int_params.len())]),
            _ => Expr::int(self.rng.gen_range(0..256)),
        }
    }

    fn filler_stmt(&mut self, locals: &mut Vec<(String, Type)>) -> Stmt {
        let int_locals: Vec<String> = locals
            .iter()
            .filter(|(_, t)| *t == Type::Int)
            .map(|(n, _)| n.clone())
            .collect();
        match self.rng.gen_range(0..10) {
            // Arithmetic assignment (occasionally dead for low expertise).
            0 | 1 => {
                if let Some(name) = self.pick(&int_locals) {
                    let a = self.int_operand(locals);
                    let b = self.int_operand(locals);
                    let op = *self.rng.choose(&[
                        BinaryOp::Add,
                        BinaryOp::Sub,
                        BinaryOp::Mul,
                        BinaryOp::Rem,
                    ]);
                    stmt(StmtKind::Assign {
                        target: LValue::Var(name, Span::dummy()),
                        op: None,
                        value: Expr::binary(op, a, b),
                    })
                } else {
                    stmt(StmtKind::Expr(Expr::call(
                        "log_msg",
                        vec![Expr::str_lit("step")],
                    )))
                }
            }
            // New declaration.
            2 => {
                let name = format!("t{}", locals.len());
                let init = self.int_operand(locals);
                locals.push((name.clone(), Type::Int));
                stmt(StmtKind::Let {
                    name,
                    ty: Type::Int,
                    init: Some(init),
                })
            }
            // Branch.
            3 | 4 => {
                let cond = Expr::binary(
                    *self.rng.choose(&[BinaryOp::Lt, BinaryOp::Gt, BinaryOp::Eq]),
                    self.int_operand(locals),
                    self.int_operand(locals),
                );
                let inner = if let Some(name) = self.pick(&int_locals) {
                    stmt(StmtKind::Assign {
                        target: LValue::Var(name, Span::dummy()),
                        op: Some(BinaryOp::Add),
                        value: Expr::int(1),
                    })
                } else {
                    stmt(StmtKind::Expr(Expr::call(
                        "log_msg",
                        vec![Expr::str_lit("branch")],
                    )))
                };
                let with_else = self.rng.gen_bool(0.4);
                stmt(StmtKind::If {
                    cond,
                    then_branch: Block::new(vec![inner], Span::dummy()),
                    else_branch: with_else.then(|| {
                        Block::new(
                            vec![stmt(StmtKind::Expr(Expr::call(
                                "log_msg",
                                vec![Expr::str_lit("else")],
                            )))],
                            Span::dummy(),
                        )
                    }),
                })
            }
            // Guarded buffer loop (safe) or unguarded write (low expertise).
            5 => {
                let buf = locals
                    .iter()
                    .find(|(_, t)| matches!(t, Type::Array(_, _)))
                    .cloned();
                match buf {
                    Some((name, Type::Array(_, cap))) => {
                        let careful = self.rng.gen_bool(0.3 + 0.65 * self.quality);
                        if careful {
                            // for i = 0; i < cap; i += 1 { buf[i] = i; }
                            stmt(StmtKind::For {
                                init: Some(Box::new(stmt(StmtKind::Assign {
                                    target: LValue::Var("i".into(), Span::dummy()),
                                    op: None,
                                    value: Expr::int(0),
                                }))),
                                cond: Some(Expr::binary(
                                    BinaryOp::Lt,
                                    Expr::var("i"),
                                    Expr::int(cap as i64),
                                )),
                                step: Some(Box::new(stmt(StmtKind::Assign {
                                    target: LValue::Var("i".into(), Span::dummy()),
                                    op: Some(BinaryOp::Add),
                                    value: Expr::int(1),
                                }))),
                                body: Block::new(
                                    vec![stmt(StmtKind::Assign {
                                        target: LValue::Index {
                                            base: name,
                                            index: Expr::var("i"),
                                            span: Span::dummy(),
                                        },
                                        op: None,
                                        value: Expr::var("i"),
                                    })],
                                    Span::dummy(),
                                ),
                            })
                        } else {
                            // Unguarded: buf[n % cap] is actually fine, but
                            // buf[n] is the sloppy variant.
                            let idx = if self.rng.gen_bool(0.5) {
                                Expr::binary(
                                    BinaryOp::Rem,
                                    self.int_operand(locals),
                                    Expr::int(cap as i64),
                                )
                            } else {
                                self.int_operand(locals)
                            };
                            stmt(StmtKind::Assign {
                                target: LValue::Index {
                                    base: name,
                                    index: idx,
                                    span: Span::dummy(),
                                },
                                op: None,
                                value: Expr::int(1),
                            })
                        }
                    }
                    _ => stmt(StmtKind::Expr(Expr::call(
                        "log_msg",
                        vec![Expr::str_lit("tick")],
                    ))),
                }
            }
            // Bounded while loop.
            6 => {
                let name = format!("w{}", locals.len());
                locals.push((name.clone(), Type::Int));
                let bound = self.rng.gen_range(2..20);
                stmt(StmtKind::Block(Block::new(
                    vec![
                        stmt(StmtKind::Let {
                            name: name.clone(),
                            ty: Type::Int,
                            init: Some(Expr::int(0)),
                        }),
                        stmt(StmtKind::While {
                            cond: Expr::binary(BinaryOp::Lt, Expr::var(&name), Expr::int(bound)),
                            body: Block::new(
                                vec![stmt(StmtKind::Assign {
                                    target: LValue::Var(name.clone(), Span::dummy()),
                                    op: Some(BinaryOp::Add),
                                    value: Expr::int(1),
                                })],
                                Span::dummy(),
                            ),
                        }),
                    ],
                    Span::dummy(),
                )))
            }
            // Call a lower-layer function.
            7 | 8 => {
                if self.callees.is_empty() {
                    // Benign intrinsic use: always literal formats, bounded copies.
                    stmt(StmtKind::Expr(Expr::call(
                        "printf",
                        vec![Expr::str_lit("%d"), self.int_operand(locals)],
                    )))
                } else {
                    let (name, arity, _) =
                        self.callees[self.rng.gen_range(0..self.callees.len())].clone();
                    let args: Vec<Expr> = (0..arity)
                        .map(|_| {
                            // Benign calls pass constants or ints — strings
                            // from parameters would create accidental taint
                            // chains the seeder did not intend.
                            if self.rng.gen_bool(0.6) {
                                self.int_operand(&[])
                            } else {
                                Expr::str_lit("cfg")
                            }
                        })
                        .collect();
                    stmt(StmtKind::Expr(Expr::new(
                        ExprKind::Call { callee: name, args },
                        Span::dummy(),
                    )))
                }
            }
            // Benign I/O (logging / metrics).
            _ => stmt(StmtKind::Expr(Expr::call(
                "log_msg",
                vec![Expr::str_lit("ok")],
            ))),
        }
    }

    fn pick(&mut self, names: &[String]) -> Option<String> {
        if names.is_empty() {
            None
        } else {
            Some(names[self.rng.gen_range(0..names.len())].clone())
        }
    }
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt::new(kind, Span::dummy())
}

/// Tiny helper: choose one element.
trait Choose {
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T;
}

impl Choose for StdRng {
    fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppSpec;

    fn spec(kloc: f64, seed: u64) -> AppSpec {
        AppSpec {
            name: "test-app".into(),
            dialect: Dialect::C,
            domain: Domain::Server,
            target_kloc: kloc,
            maturity: 0.5,
            review: 0.5,
            expertise: 0.5,
            first_release_year: 2004,
            seed,
        }
    }

    #[test]
    fn output_parses_and_has_planned_shape() {
        let out = synthesize(&spec(0.8, 1), &[]);
        assert_eq!(out.files.len(), 3); // 0.8 kloc / 0.25 per module
        assert_eq!(out.program.modules.len(), 3);
        assert!(out.program.function_count() >= 9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = synthesize(&spec(0.5, 99), &[]);
        let b = synthesize(&spec(0.5, 99), &[]);
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&spec(0.5, 1), &[]);
        let b = synthesize(&spec(0.5, 2), &[]);
        assert_ne!(a.files, b.files);
    }

    #[test]
    fn seeds_are_planted_and_recorded() {
        let seeds = vec![(Cwe::StackBufferOverflow, true), (Cwe::FormatString, false)];
        let out = synthesize(&spec(1.2, 5), &seeds);
        assert_eq!(out.seeded.len(), 2);
        let carrier = out
            .seeded
            .iter()
            .find(|s| s.cwe == Cwe::StackBufferOverflow)
            .unwrap();
        assert!(carrier.exposed);
        // The carrier function exists and is an endpoint (exposed seed).
        let f = out
            .program
            .find_function(&carrier.function)
            .expect("carrier exists");
        assert!(!f.endpoint_channels().is_empty());
    }

    #[test]
    fn exposed_seed_produces_taint_flow() {
        let seeds = vec![(Cwe::StackBufferOverflow, true)];
        let out = synthesize(&spec(0.8, 11), &seeds);
        let report = static_analysis::taint::analyze(&out.program);
        assert!(
            !report.flows.is_empty(),
            "a seeded exposed CWE-121 must create a real taint flow"
        );
    }

    #[test]
    fn size_tracks_target_roughly() {
        let small = synthesize(&spec(0.4, 3), &[]);
        let big = synthesize(&spec(4.0, 3), &[]);
        let lines =
            |o: &SynthOutput| -> usize { o.files.iter().map(|(_, s)| s.lines().count()).sum() };
        assert!(lines(&big) > 4 * lines(&small));
    }

    #[test]
    fn endpoints_match_domain() {
        let out = synthesize(&spec(1.0, 7), &[]);
        let endpoint_channels: Vec<ChannelKind> = out
            .program
            .functions()
            .flat_map(|f| f.endpoint_channels())
            .collect();
        assert!(!endpoint_channels.is_empty());
        assert!(endpoint_channels.iter().all(|c| *c == ChannelKind::Network));
    }

    #[test]
    fn higher_review_quality_means_more_comments() {
        let mut lo = spec(1.5, 13);
        lo.review = 0.05;
        lo.expertise = 0.05;
        lo.maturity = 0.05;
        let mut hi = lo.clone();
        hi.review = 0.95;
        hi.expertise = 0.95;
        hi.maturity = 0.95;
        let comment_lines = |o: &SynthOutput| -> usize {
            o.files
                .iter()
                .map(|(_, s)| {
                    s.lines()
                        .filter(|l| l.trim_start().starts_with("//"))
                        .count()
                })
                .sum()
        };
        let lo_out = synthesize(&lo, &[]);
        let hi_out = synthesize(&hi, &[]);
        assert!(comment_lines(&hi_out) > comment_lines(&lo_out) * 2);
    }

    #[test]
    fn python_dialect_emits_hash_comments() {
        let mut s = spec(0.5, 17);
        s.dialect = Dialect::Python;
        s.review = 0.9;
        let out = synthesize(&s, &[]);
        let any_hash = out
            .files
            .iter()
            .any(|(_, src)| src.lines().any(|l| l.trim_start().starts_with('#')));
        assert!(any_hash);
        // And it still parses (comment syntax is dialect-consistent).
        assert!(!out.program.modules.is_empty());
    }
}
