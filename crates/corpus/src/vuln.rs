//! CWE seeding recipes.
//!
//! Each recipe emits the *real code pattern* of a weakness class, so the
//! testbed's analyses and the bug-finding tools have genuine signal to
//! detect, not an oracle label. The recipes assume the carrier function's
//! parameters are attacker-reachable when the seed is exposed (the
//! synthesizer annotates the carrier as an endpoint in that case).

use cvedb::Cwe;
use minilang::ast::*;
use minilang::Span;
use rand::rngs::StdRng;
use rand::Rng;

/// Ground-truth record of one planted vulnerability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededVuln {
    pub cwe: Cwe,
    /// Carrier function name.
    pub function: String,
    /// Module path.
    pub module: String,
    /// Reachable from a network endpoint (drives CVSS AV:N).
    pub exposed: bool,
    /// Carrier runs with root privilege (drives CVSS scope/impact).
    pub priv_root: bool,
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt::new(kind, Span::dummy())
}

fn let_str(name: &str, init: Expr) -> Stmt {
    stmt(StmtKind::Let {
        name: name.into(),
        ty: Type::Str,
        init: Some(init),
    })
}

/// The attacker-controlled string expression for this carrier: a string
/// parameter when one exists, else data read from the network.
fn tainted_str(str_params: &[&str], rng: &mut StdRng) -> Expr {
    if str_params.is_empty() {
        Expr::call("recv", vec![Expr::int(rng.gen_range(0..4))])
    } else {
        Expr::var(str_params[0])
    }
}

fn tainted_int(int_params: &[&str], str_params: &[&str], rng: &mut StdRng) -> Expr {
    if let Some(p) = int_params.first() {
        Expr::var(*p)
    } else {
        Expr::call("atoi", vec![tainted_str(str_params, rng)])
    }
}

/// Emit the statements of the recipe for `cwe`.
///
/// Unknown/unseedable classes fall back to the closest modelled pattern
/// (documented per arm) so the function is total over [`Cwe::ALL`].
pub fn recipe(cwe: Cwe, str_params: &[&str], int_params: &[&str], rng: &mut StdRng) -> Vec<Stmt> {
    let cap = [16i64, 32, 64, 128][rng.gen_range(0..4usize)];
    match cwe {
        // Stack buffer overflow: unbounded copy of attacker data into a
        // fixed stack buffer.
        Cwe::StackBufferOverflow => vec![
            stmt(StmtKind::Let {
                name: "sbuf".into(),
                ty: Type::Array(Box::new(Type::Str), cap as usize),
                init: None,
            }),
            stmt(StmtKind::Expr(Expr::call(
                "strcpy",
                vec![Expr::var("sbuf"), tainted_str(str_params, rng)],
            ))),
        ],
        // Heap buffer overflow: allocation sized by one length, copy sized
        // by another (classic mismatch).
        Cwe::HeapBufferOverflow => vec![
            let_str("hbuf", Expr::call("alloc", vec![Expr::int(cap)])),
            stmt(StmtKind::Expr(Expr::call(
                "memcpy",
                vec![
                    Expr::var("hbuf"),
                    tainted_str(str_params, rng),
                    Expr::binary(
                        BinaryOp::Add,
                        Expr::call("strlen", vec![tainted_str(str_params, rng)]),
                        Expr::int(1),
                    ),
                ],
            ))),
            stmt(StmtKind::Expr(Expr::call("free", vec![Expr::var("hbuf")]))),
        ],
        // Externally controlled format string.
        Cwe::FormatString => vec![stmt(StmtKind::Expr(Expr::call(
            "printf",
            vec![tainted_str(str_params, rng)],
        )))],
        // OS command injection.
        Cwe::CommandInjection => vec![
            let_str("cmd", tainted_str(str_params, rng)),
            stmt(StmtKind::Expr(Expr::call("system", vec![Expr::var("cmd")]))),
        ],
        // SQL injection: modelled as attacker data spliced into a query
        // string handed to an exec-style evaluator (same taint shape).
        Cwe::SqlInjection => vec![
            let_str("query", tainted_str(str_params, rng)),
            stmt(StmtKind::Expr(Expr::call("exec", vec![Expr::var("query")]))),
        ],
        // Cross-site scripting: attacker data echoed to the output channel
        // unescaped (same source→send shape; `send` is the render sink).
        Cwe::CrossSiteScripting => vec![
            let_str("page", tainted_str(str_params, rng)),
            stmt(StmtKind::Expr(Expr::call(
                "sprintf",
                vec![Expr::var("page"), tainted_str(str_params, rng)],
            ))),
            stmt(StmtKind::Expr(Expr::call(
                "send",
                vec![Expr::int(0), Expr::var("page")],
            ))),
        ],
        // Integer overflow: attacker-influenced multiplication sizes an
        // allocation.
        Cwe::IntegerOverflow => {
            let n = tainted_int(int_params, str_params, rng);
            let m = tainted_int(int_params, str_params, rng);
            vec![
                let_str(
                    "obuf",
                    Expr::call("alloc", vec![Expr::binary(BinaryOp::Mul, n, m)]),
                ),
                stmt(StmtKind::Expr(Expr::call("free", vec![Expr::var("obuf")]))),
            ]
        }
        // Improper input validation: attacker data drives a privileged
        // operation with no validating branch (the synthesizer skips the
        // up-front validation for seeded carriers of this class).
        Cwe::ImproperInputValidation => vec![stmt(StmtKind::Expr(Expr::call(
            "write_file",
            vec![
                Expr::str_lit("/var/lib/state"),
                tainted_str(str_params, rng),
            ],
        )))],
        // Path traversal: attacker-controlled path opened directly.
        Cwe::PathTraversal => vec![
            let_str("path", tainted_str(str_params, rng)),
            stmt(StmtKind::Let {
                name: "data".into(),
                ty: Type::Str,
                init: Some(Expr::call("read_file", vec![Expr::var("path")])),
            }),
            stmt(StmtKind::Expr(Expr::call(
                "send",
                vec![Expr::int(0), Expr::var("data")],
            ))),
        ],
        // TOCTOU: check-then-use on the same path.
        Cwe::Toctou => vec![
            let_str("tpath", Expr::str_lit("/tmp/work")),
            stmt(StmtKind::If {
                cond: Expr::call("access", vec![Expr::var("tpath")]),
                then_branch: Block::new(
                    vec![stmt(StmtKind::Let {
                        name: "fd".into(),
                        ty: Type::Int,
                        init: Some(Expr::call("open", vec![Expr::var("tpath")])),
                    })],
                    Span::dummy(),
                ),
                else_branch: None,
            }),
        ],
        // Hardcoded credentials.
        Cwe::HardcodedCredentials => vec![stmt(StmtKind::If {
            cond: Expr::call(
                "auth_check",
                vec![Expr::str_lit("admin"), Expr::str_lit("s3cr3t-k3y")],
            ),
            then_branch: Block::new(
                vec![stmt(StmtKind::Expr(Expr::call(
                    "log_msg",
                    vec![Expr::str_lit("auth ok")],
                )))],
                Span::dummy(),
            ),
            else_branch: None,
        })],
        // Information exposure: secret material written to an
        // attacker-observable channel.
        Cwe::InfoExposure => vec![
            let_str(
                "secret_key",
                Expr::call("getenv", vec![Expr::str_lit("API_SECRET")]),
            ),
            stmt(StmtKind::Expr(Expr::call(
                "send",
                vec![Expr::int(0), Expr::var("secret_key")],
            ))),
        ],
        // Uninitialized variable use.
        Cwe::UninitializedVariable => vec![
            stmt(StmtKind::Let {
                name: "uv".into(),
                ty: Type::Int,
                init: None,
            }),
            stmt(StmtKind::Expr(Expr::call(
                "printf",
                vec![
                    Expr::str_lit("%d"),
                    Expr::binary(BinaryOp::Add, Expr::var("uv"), Expr::int(1)),
                ],
            ))),
        ],
        // Improper / missing authentication: a privileged action guarded by
        // a trivially-true check (resp. no check).
        Cwe::ImproperAuthentication => vec![stmt(StmtKind::If {
            cond: Expr::binary(
                BinaryOp::Eq,
                Expr::call("strlen", vec![tainted_str(str_params, rng)]),
                Expr::call("strlen", vec![tainted_str(str_params, rng)]),
            ),
            then_branch: Block::new(
                vec![stmt(StmtKind::Expr(Expr::call(
                    "write_file",
                    vec![Expr::str_lit("/etc/passwd"), Expr::str_lit("x")],
                )))],
                Span::dummy(),
            ),
            else_branch: None,
        })],
        Cwe::MissingAuthentication => vec![stmt(StmtKind::Expr(Expr::call(
            "write_file",
            vec![Expr::str_lit("/etc/shadow"), tainted_str(str_params, rng)],
        )))],
        // Resource-management classes: alloc without free (leak), free then
        // use (UAF shape via a dangling name), null-ish deref modelled as an
        // unchecked index at a sentinel.
        Cwe::MemoryLeak => vec![
            let_str("leak", Expr::call("alloc", vec![Expr::int(cap)])),
            stmt(StmtKind::Expr(Expr::call(
                "log_msg",
                vec![Expr::var("leak")],
            ))),
        ],
        Cwe::UseAfterFree => vec![
            let_str("uaf", Expr::call("alloc", vec![Expr::int(cap)])),
            stmt(StmtKind::Expr(Expr::call("free", vec![Expr::var("uaf")]))),
            stmt(StmtKind::Expr(Expr::call(
                "log_msg",
                vec![Expr::var("uaf")],
            ))),
        ],
        Cwe::NullDereference => vec![
            stmt(StmtKind::Let {
                name: "nbuf".into(),
                ty: Type::Array(Box::new(Type::Int), 8),
                init: None,
            }),
            stmt(StmtKind::Assign {
                target: LValue::Index {
                    base: "nbuf".into(),
                    index: Expr::int(-1),
                    span: Span::dummy(),
                },
                op: None,
                value: Expr::int(0),
            }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::{parse_module, print_module, Dialect};
    use rand::SeedableRng;

    /// Wrap a recipe in a function and check it parses and round-trips.
    fn harness(cwe: Cwe) -> minilang::Module {
        let mut rng = StdRng::seed_from_u64(1);
        let stmts = recipe(cwe, &["req"], &["n"], &mut rng);
        let module = minilang::Module {
            path: "t.c".into(),
            dialect: Dialect::C,
            source: String::new(),
            globals: vec![],
            functions: vec![Function {
                name: "carrier".into(),
                params: vec![
                    Param {
                        name: "req".into(),
                        ty: Type::Str,
                        span: Span::dummy(),
                    },
                    Param {
                        name: "n".into(),
                        ty: Type::Int,
                        span: Span::dummy(),
                    },
                ],
                ret: Type::Void,
                body: Block::new(stmts, Span::dummy()),
                annotations: vec![Annotation::Endpoint(ChannelKind::Network)],
                span: Span::dummy(),
            }],
        };
        let printed = print_module(&module);
        parse_module("t.c", &printed, Dialect::C)
            .unwrap_or_else(|e| panic!("recipe for {cwe} does not parse: {e}\n{printed}"))
    }

    #[test]
    fn every_recipe_prints_and_parses() {
        for cwe in Cwe::ALL {
            let m = harness(cwe);
            assert_eq!(m.functions.len(), 1);
            assert!(
                !m.functions[0].body.stmts.is_empty(),
                "{cwe} emitted no code"
            );
        }
    }

    #[test]
    fn stack_overflow_recipe_triggers_bufcheck() {
        let m = harness(Cwe::StackBufferOverflow);
        let program = minilang::Program {
            name: "t".into(),
            dialect: Dialect::C,
            modules: vec![m],
        };
        let report = bugfind::MetaTool::new().run(&program);
        assert!(report.count_cwe(121) >= 1, "{:?}", report.by_rule);
    }

    #[test]
    fn format_string_recipe_triggers_fmtcheck() {
        let m = harness(Cwe::FormatString);
        let program = minilang::Program {
            name: "t".into(),
            dialect: Dialect::C,
            modules: vec![m],
        };
        let report = bugfind::MetaTool::new().run(&program);
        assert!(report.count_cwe(134) >= 1);
    }

    #[test]
    fn toctou_recipe_triggers_racecheck() {
        let m = harness(Cwe::Toctou);
        let program = minilang::Program {
            name: "t".into(),
            dialect: Dialect::C,
            modules: vec![m],
        };
        let report = bugfind::MetaTool::new().run(&program);
        assert!(report.count_cwe(367) >= 1);
    }

    #[test]
    fn credential_recipe_triggers_credcheck() {
        let m = harness(Cwe::HardcodedCredentials);
        let program = minilang::Program {
            name: "t".into(),
            dialect: Dialect::C,
            modules: vec![m],
        };
        let report = bugfind::MetaTool::new().run(&program);
        assert!(report.count_cwe(798) >= 1);
    }

    #[test]
    fn command_injection_recipe_creates_taint_flow() {
        let m = harness(Cwe::CommandInjection);
        let program = minilang::Program {
            name: "t".into(),
            dialect: Dialect::C,
            modules: vec![m],
        };
        let taint = static_analysis::taint::analyze(&program);
        assert_eq!(taint.flows.len(), 1);
        assert!(taint.flows[0].via_parameters);
    }

    #[test]
    fn recipes_without_params_still_work() {
        let mut rng = StdRng::seed_from_u64(2);
        for cwe in [
            Cwe::CommandInjection,
            Cwe::FormatString,
            Cwe::IntegerOverflow,
        ] {
            let stmts = recipe(cwe, &[], &[], &mut rng);
            assert!(!stmts.is_empty());
        }
    }
}
