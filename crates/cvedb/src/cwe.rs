//! Common Weakness Enumeration subset.
//!
//! The paper's classification hypotheses are CWE-indexed ("Does an
//! application suffer any stack-based buffer overflow (i.e., CWE = 121)?").
//! This module carries the weakness classes the corpus can seed and the
//! testbed's checkers can detect.

use std::fmt;

/// The weakness classes modelled by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cwe {
    /// CWE-20: Improper Input Validation.
    ImproperInputValidation,
    /// CWE-22: Path Traversal.
    PathTraversal,
    /// CWE-78: OS Command Injection.
    CommandInjection,
    /// CWE-79: Cross-site Scripting (substituted by tainted `send` output).
    CrossSiteScripting,
    /// CWE-89: SQL Injection (substituted by tainted query strings).
    SqlInjection,
    /// CWE-121: Stack-based Buffer Overflow — the paper's worked example.
    StackBufferOverflow,
    /// CWE-122: Heap-based Buffer Overflow.
    HeapBufferOverflow,
    /// CWE-134: Use of Externally-Controlled Format String.
    FormatString,
    /// CWE-190: Integer Overflow or Wraparound.
    IntegerOverflow,
    /// CWE-200: Exposure of Sensitive Information.
    InfoExposure,
    /// CWE-287: Improper Authentication.
    ImproperAuthentication,
    /// CWE-306: Missing Authentication for Critical Function.
    MissingAuthentication,
    /// CWE-367: Time-of-check Time-of-use (TOCTOU) Race Condition.
    Toctou,
    /// CWE-401: Memory Leak (missing release).
    MemoryLeak,
    /// CWE-416: Use After Free.
    UseAfterFree,
    /// CWE-457: Use of Uninitialized Variable.
    UninitializedVariable,
    /// CWE-476: NULL Pointer Dereference.
    NullDereference,
    /// CWE-798: Use of Hard-coded Credentials.
    HardcodedCredentials,
}

/// Coarse weakness categories, used for per-category hypotheses and for the
/// corpus seeding priors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CweCategory {
    MemorySafety,
    Injection,
    InputValidation,
    Authentication,
    ResourceManagement,
    InformationLeak,
    Concurrency,
}

impl Cwe {
    /// All modelled weaknesses.
    pub const ALL: [Cwe; 18] = [
        Cwe::ImproperInputValidation,
        Cwe::PathTraversal,
        Cwe::CommandInjection,
        Cwe::CrossSiteScripting,
        Cwe::SqlInjection,
        Cwe::StackBufferOverflow,
        Cwe::HeapBufferOverflow,
        Cwe::FormatString,
        Cwe::IntegerOverflow,
        Cwe::InfoExposure,
        Cwe::ImproperAuthentication,
        Cwe::MissingAuthentication,
        Cwe::Toctou,
        Cwe::MemoryLeak,
        Cwe::UseAfterFree,
        Cwe::UninitializedVariable,
        Cwe::NullDereference,
        Cwe::HardcodedCredentials,
    ];

    /// The numeric CWE id.
    pub fn id(self) -> u32 {
        match self {
            Cwe::ImproperInputValidation => 20,
            Cwe::PathTraversal => 22,
            Cwe::CommandInjection => 78,
            Cwe::CrossSiteScripting => 79,
            Cwe::SqlInjection => 89,
            Cwe::StackBufferOverflow => 121,
            Cwe::HeapBufferOverflow => 122,
            Cwe::FormatString => 134,
            Cwe::IntegerOverflow => 190,
            Cwe::InfoExposure => 200,
            Cwe::ImproperAuthentication => 287,
            Cwe::MissingAuthentication => 306,
            Cwe::Toctou => 367,
            Cwe::MemoryLeak => 401,
            Cwe::UseAfterFree => 416,
            Cwe::UninitializedVariable => 457,
            Cwe::NullDereference => 476,
            Cwe::HardcodedCredentials => 798,
        }
    }

    /// Lookup by numeric id.
    pub fn from_id(id: u32) -> Option<Cwe> {
        Cwe::ALL.iter().copied().find(|c| c.id() == id)
    }

    /// Official short name.
    pub fn name(self) -> &'static str {
        match self {
            Cwe::ImproperInputValidation => "Improper Input Validation",
            Cwe::PathTraversal => "Path Traversal",
            Cwe::CommandInjection => "OS Command Injection",
            Cwe::CrossSiteScripting => "Cross-site Scripting",
            Cwe::SqlInjection => "SQL Injection",
            Cwe::StackBufferOverflow => "Stack-based Buffer Overflow",
            Cwe::HeapBufferOverflow => "Heap-based Buffer Overflow",
            Cwe::FormatString => "Use of Externally-Controlled Format String",
            Cwe::IntegerOverflow => "Integer Overflow or Wraparound",
            Cwe::InfoExposure => "Exposure of Sensitive Information",
            Cwe::ImproperAuthentication => "Improper Authentication",
            Cwe::MissingAuthentication => "Missing Authentication for Critical Function",
            Cwe::Toctou => "Time-of-check Time-of-use Race Condition",
            Cwe::MemoryLeak => "Missing Release of Memory",
            Cwe::UseAfterFree => "Use After Free",
            Cwe::UninitializedVariable => "Use of Uninitialized Variable",
            Cwe::NullDereference => "NULL Pointer Dereference",
            Cwe::HardcodedCredentials => "Use of Hard-coded Credentials",
        }
    }

    /// The coarse category.
    pub fn category(self) -> CweCategory {
        match self {
            Cwe::StackBufferOverflow
            | Cwe::HeapBufferOverflow
            | Cwe::UseAfterFree
            | Cwe::NullDereference
            | Cwe::UninitializedVariable
            | Cwe::IntegerOverflow => CweCategory::MemorySafety,
            Cwe::CommandInjection
            | Cwe::SqlInjection
            | Cwe::CrossSiteScripting
            | Cwe::FormatString => CweCategory::Injection,
            Cwe::ImproperInputValidation | Cwe::PathTraversal => CweCategory::InputValidation,
            Cwe::ImproperAuthentication
            | Cwe::MissingAuthentication
            | Cwe::HardcodedCredentials => CweCategory::Authentication,
            Cwe::MemoryLeak => CweCategory::ResourceManagement,
            Cwe::InfoExposure => CweCategory::InformationLeak,
            Cwe::Toctou => CweCategory::Concurrency,
        }
    }

    /// Whether this weakness can occur in a memory-safe language — the
    /// corpus only seeds memory-corruption classes into C/C++ applications,
    /// mirroring the paper's "pointer errors are precluded by higher-level
    /// languages" observation.
    pub fn requires_memory_unsafety(self) -> bool {
        matches!(
            self,
            Cwe::StackBufferOverflow
                | Cwe::HeapBufferOverflow
                | Cwe::UseAfterFree
                | Cwe::NullDereference
                | Cwe::UninitializedVariable
        )
    }
}

impl fmt::Display for Cwe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CWE-{}", self.id())
    }
}

impl CweCategory {
    pub const ALL: [CweCategory; 7] = [
        CweCategory::MemorySafety,
        CweCategory::Injection,
        CweCategory::InputValidation,
        CweCategory::Authentication,
        CweCategory::ResourceManagement,
        CweCategory::InformationLeak,
        CweCategory::Concurrency,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CweCategory::MemorySafety => "memory-safety",
            CweCategory::Injection => "injection",
            CweCategory::InputValidation => "input-validation",
            CweCategory::Authentication => "authentication",
            CweCategory::ResourceManagement => "resource-management",
            CweCategory::InformationLeak => "information-leak",
            CweCategory::Concurrency => "concurrency",
        }
    }
}

impl fmt::Display for CweCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for c in Cwe::ALL {
            assert_eq!(Cwe::from_id(c.id()), Some(c));
        }
        assert_eq!(Cwe::from_id(99999), None);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<u32> = Cwe::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Cwe::ALL.len());
    }

    #[test]
    fn papers_worked_example_is_cwe_121() {
        assert_eq!(Cwe::StackBufferOverflow.id(), 121);
        assert_eq!(Cwe::StackBufferOverflow.to_string(), "CWE-121");
        assert_eq!(
            Cwe::StackBufferOverflow.category(),
            CweCategory::MemorySafety
        );
        assert!(Cwe::StackBufferOverflow.requires_memory_unsafety());
    }

    #[test]
    fn injection_classes_are_language_agnostic() {
        assert!(!Cwe::CommandInjection.requires_memory_unsafety());
        assert!(!Cwe::FormatString.requires_memory_unsafety());
        assert!(!Cwe::HardcodedCredentials.requires_memory_unsafety());
    }

    #[test]
    fn every_category_is_populated() {
        for cat in CweCategory::ALL {
            assert!(
                Cwe::ALL.iter().any(|c| c.category() == cat),
                "category {cat} has no weaknesses"
            );
        }
    }
}
