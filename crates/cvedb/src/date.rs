//! A minimal calendar date.
//!
//! The selection rule of §5.1 only needs year-resolution arithmetic ("at
//! least a 5-year history": newest report minus oldest report), so a simple
//! `(year, month, day)` triple with day-count conversion suffices — no
//! external date crate.

use std::fmt;

/// A calendar date (proleptic Gregorian, validity-checked on construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Construct a date; returns `None` for out-of-range components.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Days since 0000-03-01 (a civil-calendar epoch that keeps leap-day
    /// handling simple; only differences matter here).
    pub fn day_number(&self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = self.year as i64 - (self.month <= 2) as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }

    /// Whole days from `self` to `other` (positive when `other` is later).
    pub fn days_until(&self, other: &Date) -> i64 {
        other.day_number() - self.day_number()
    }

    /// Fractional years from `self` to `other`.
    pub fn years_until(&self, other: &Date) -> f64 {
        self.days_until(other) as f64 / 365.25
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Date::new(2017, 4, 30).is_some());
        assert!(Date::new(2017, 13, 1).is_none());
        assert!(Date::new(2017, 0, 1).is_none());
        assert!(Date::new(2017, 2, 29).is_none()); // not a leap year
        assert!(Date::new(2016, 2, 29).is_some()); // leap year
        assert!(Date::new(2000, 2, 29).is_some()); // 400-rule leap year
        assert!(Date::new(1900, 2, 29).is_none()); // 100-rule non-leap
        assert!(Date::new(2017, 4, 31).is_none());
    }

    #[test]
    fn day_differences() {
        let a = Date::new(2017, 1, 1).unwrap();
        let b = Date::new(2017, 1, 2).unwrap();
        assert_eq!(a.days_until(&b), 1);
        assert_eq!(b.days_until(&a), -1);
        let y2016 = Date::new(2016, 1, 1).unwrap();
        let y2017 = Date::new(2017, 1, 1).unwrap();
        assert_eq!(y2016.days_until(&y2017), 366); // 2016 is a leap year
    }

    #[test]
    fn years_until_fractional() {
        let a = Date::new(2010, 6, 15).unwrap();
        let b = Date::new(2015, 6, 15).unwrap();
        let y = a.years_until(&b);
        assert!((y - 5.0).abs() < 0.01, "{y}");
    }

    #[test]
    fn ordering_is_chronological() {
        let early = Date::new(2012, 5, 1).unwrap();
        let later = Date::new(2012, 5, 2).unwrap();
        let much_later = Date::new(2013, 1, 1).unwrap();
        assert!(early < later);
        assert!(later < much_later);
    }

    #[test]
    fn display_iso() {
        assert_eq!(Date::new(2017, 4, 9).unwrap().to_string(), "2017-04-09");
    }
}
