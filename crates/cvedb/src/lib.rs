//! CVE database substrate.
//!
//! §5.1 of the paper: *"We propose to collect the past vulnerabilities from
//! the CVE (Common Vulnerabilities and Exposures) database. … Our study will
//! focus on open-source applications which have at least a 5-year history in
//! the CVE database."* This crate models that database offline:
//!
//! * [`cwe`] — a working subset of the Common Weakness Enumeration
//!   taxonomy (ids, names, categories, per-language applicability);
//! * [`record`] — CVE records with ids, dates, CWE classification, and
//!   CVSS v3 / v2 vectors;
//! * [`store`] — the queryable database: per-application history, severity
//!   and classification aggregation, and the paper's selection rules
//!   (≥ 5-year history, converging report rate);
//! * [`date`] — a minimal calendar date (no external chrono dependency).
//!
//! The records themselves are synthesized by the `corpus` crate; this crate
//! is only the storage/query layer, mirroring the role the real CVE/NVD
//! export plays for the paper.

pub mod cwe;
pub mod date;
pub mod record;
pub mod store;

pub use cwe::{Cwe, CweCategory};
pub use date::Date;
pub use record::{CveId, CveRecord};
pub use store::{AppHistory, CveDatabase, SelectionCriteria};
