//! CVE records.

use crate::cwe::Cwe;
use crate::date::Date;
use cvss::{Cvss2, Cvss3, Severity};
use std::fmt;
use std::str::FromStr;

/// A CVE identifier, e.g. `CVE-2016-10142`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CveId {
    pub year: i32,
    pub number: u32,
}

impl CveId {
    pub fn new(year: i32, number: u32) -> CveId {
        CveId { year, number }
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVE-{}-{:04}", self.year, self.number)
    }
}

/// Error parsing a CVE identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCveIdError(pub String);

impl fmt::Display for ParseCveIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVE id: {}", self.0)
    }
}

impl std::error::Error for ParseCveIdError {}

impl FromStr for CveId {
    type Err = ParseCveIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCveIdError(s.to_string());
        let rest = s.strip_prefix("CVE-").ok_or_else(err)?;
        let (year, number) = rest.split_once('-').ok_or_else(err)?;
        Ok(CveId {
            year: year.parse().map_err(|_| err())?,
            number: number.parse().map_err(|_| err())?,
        })
    }
}

/// One vulnerability report.
#[derive(Debug, Clone, PartialEq)]
pub struct CveRecord {
    pub id: CveId,
    /// Name of the affected application.
    pub app: String,
    /// Publication date.
    pub published: Date,
    /// Weakness classification.
    pub cwe: Cwe,
    /// CVSS v3.0 vector (records from 2016 onward, as in NVD).
    pub cvss3: Option<Cvss3>,
    /// CVSS v2 vector (all records carry one in NVD's export).
    pub cvss2: Option<Cvss2>,
    /// Free-text description.
    pub description: String,
}

impl CveRecord {
    /// The effective numeric score: v3 when present, else v2, else 0.
    pub fn score(&self) -> f64 {
        match (&self.cvss3, &self.cvss2) {
            (Some(v3), _) => v3.base_score(),
            (None, Some(v2)) => v2.base_score(),
            (None, None) => 0.0,
        }
    }

    /// Severity band of the effective score.
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.score())
    }

    /// The paper's H1 label contribution: CVSS > 7.
    pub fn is_high_severity(&self) -> bool {
        self.score() > 7.0
    }

    /// The paper's H2 label contribution: attack vector = network.
    pub fn is_network_attackable(&self) -> bool {
        match (&self.cvss3, &self.cvss2) {
            (Some(v3), _) => v3.is_network_attackable(),
            (None, Some(v2)) => v2.av == cvss::v2::AccessVector::Network,
            (None, None) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvss::v3::{
        AttackComplexity, AttackVector, Impact, PrivilegesRequired, Scope, UserInteraction,
    };

    fn record(cvss3: Option<Cvss3>, cvss2: Option<Cvss2>) -> CveRecord {
        CveRecord {
            id: CveId::new(2016, 1234),
            app: "httpd".into(),
            published: Date::new(2016, 7, 1).unwrap(),
            cwe: Cwe::StackBufferOverflow,
            cvss3,
            cvss2,
            description: "test".into(),
        }
    }

    #[test]
    fn cve_id_parse_and_display() {
        let id: CveId = "CVE-2016-10142".parse().unwrap();
        assert_eq!(id, CveId::new(2016, 10142));
        assert_eq!(id.to_string(), "CVE-2016-10142");
        assert_eq!(CveId::new(2016, 7).to_string(), "CVE-2016-0007");
        assert!("CVE-xx-1".parse::<CveId>().is_err());
        assert!("2016-10142".parse::<CveId>().is_err());
    }

    #[test]
    fn score_prefers_v3() {
        let v3 = Cvss3::base(
            AttackVector::Network,
            AttackComplexity::Low,
            PrivilegesRequired::None,
            UserInteraction::None,
            Scope::Unchanged,
            Impact::High,
            Impact::High,
            Impact::High,
        );
        let v2: Cvss2 = "AV:L/AC:H/Au:M/C:P/I:N/A:N".parse().unwrap();
        let r = record(Some(v3), Some(v2));
        assert_eq!(r.score(), 9.8);
        assert!(r.is_high_severity());
        assert!(r.is_network_attackable());
    }

    #[test]
    fn falls_back_to_v2() {
        let v2: Cvss2 = "AV:N/AC:L/Au:N/C:C/I:C/A:C".parse().unwrap();
        let r = record(None, Some(v2));
        assert_eq!(r.score(), 10.0);
        assert!(r.is_network_attackable());
    }

    #[test]
    fn no_vector_scores_zero() {
        let r = record(None, None);
        assert_eq!(r.score(), 0.0);
        assert!(!r.is_high_severity());
        assert!(!r.is_network_attackable());
        assert_eq!(r.severity(), cvss::Severity::None);
    }

    #[test]
    fn ids_order_chronologically_then_numerically() {
        let a = CveId::new(2015, 9999);
        let b = CveId::new(2016, 1);
        let c = CveId::new(2016, 2);
        assert!(a < b && b < c);
    }
}
