//! The queryable CVE store and the paper's application-selection rules.

use crate::cwe::{Cwe, CweCategory};
use crate::date::Date;
use crate::record::CveRecord;
use cvss::Severity;
use std::collections::BTreeMap;

/// The paper's §5.1 selection criteria.
#[derive(Debug, Clone, Copy)]
pub struct SelectionCriteria {
    /// Minimum span between the oldest and newest report ("at least a
    /// 5-year history in the CVE database").
    pub min_history_years: f64,
    /// Minimum total reports (degenerate one-report histories have no
    /// meaningful span).
    pub min_reports: usize,
    /// "Converging history": the report rate over the most recent
    /// `recent_window_years` must not exceed `max_recent_rate_ratio` times
    /// the application's lifetime average rate — applications still in a
    /// vulnerability-discovery boom are excluded as unstable ground truth.
    pub recent_window_years: f64,
    pub max_recent_rate_ratio: f64,
}

impl Default for SelectionCriteria {
    fn default() -> Self {
        SelectionCriteria {
            min_history_years: 5.0,
            min_reports: 2,
            recent_window_years: 2.0,
            max_recent_rate_ratio: 2.0,
        }
    }
}

/// Aggregated view of one application's vulnerability history — the label
/// source for every hypothesis in the training phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AppHistory {
    pub app: String,
    pub total: usize,
    pub oldest: Date,
    pub newest: Date,
    pub high_severity: usize,
    pub network_attackable: usize,
    pub by_severity: BTreeMap<Severity, usize>,
    pub by_cwe: BTreeMap<Cwe, usize>,
    pub by_category: BTreeMap<CweCategory, usize>,
    pub max_score: f64,
    pub mean_score: f64,
}

impl AppHistory {
    /// Years between the oldest and newest report.
    pub fn span_years(&self) -> f64 {
        self.oldest.years_until(&self.newest)
    }

    /// Count of reports classified under `cwe`.
    pub fn cwe_count(&self, cwe: Cwe) -> usize {
        self.by_cwe.get(&cwe).copied().unwrap_or(0)
    }

    /// Count of reports in a weakness category.
    pub fn category_count(&self, cat: CweCategory) -> usize {
        self.by_category.get(&cat).copied().unwrap_or(0)
    }
}

/// An in-memory CVE database with per-application indexes.
#[derive(Debug, Clone, Default)]
pub struct CveDatabase {
    records: Vec<CveRecord>,
    by_app: BTreeMap<String, Vec<usize>>,
}

impl CveDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one record.
    pub fn insert(&mut self, record: CveRecord) {
        let idx = self.records.len();
        self.by_app.entry(record.app.clone()).or_default().push(idx);
        self.records.push(record);
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, unordered.
    pub fn records(&self) -> &[CveRecord] {
        &self.records
    }

    /// Application names with at least one record.
    pub fn apps(&self) -> impl Iterator<Item = &str> {
        self.by_app.keys().map(|s| s.as_str())
    }

    /// Records for one application, in publication order.
    pub fn records_for(&self, app: &str) -> Vec<&CveRecord> {
        let mut out: Vec<&CveRecord> = self
            .by_app
            .get(app)
            .into_iter()
            .flatten()
            .map(|&i| &self.records[i])
            .collect();
        out.sort_by_key(|r| (r.published, r.id));
        out
    }

    /// Aggregate one application's history (None when it has no records).
    pub fn history(&self, app: &str) -> Option<AppHistory> {
        let records = self.records_for(app);
        if records.is_empty() {
            return None;
        }
        let mut h = AppHistory {
            app: app.to_string(),
            total: records.len(),
            oldest: records[0].published,
            newest: records[records.len() - 1].published,
            high_severity: 0,
            network_attackable: 0,
            by_severity: BTreeMap::new(),
            by_cwe: BTreeMap::new(),
            by_category: BTreeMap::new(),
            max_score: 0.0,
            mean_score: 0.0,
        };
        let mut score_sum = 0.0;
        for r in &records {
            let score = r.score();
            score_sum += score;
            h.max_score = h.max_score.max(score);
            h.high_severity += r.is_high_severity() as usize;
            h.network_attackable += r.is_network_attackable() as usize;
            *h.by_severity.entry(r.severity()).or_insert(0) += 1;
            *h.by_cwe.entry(r.cwe).or_insert(0) += 1;
            *h.by_category.entry(r.cwe.category()).or_insert(0) += 1;
        }
        h.mean_score = score_sum / records.len() as f64;
        Some(h)
    }

    /// Apply the paper's selection: applications with a sufficiently long,
    /// converging history. Returns histories sorted by application name.
    pub fn select(&self, criteria: &SelectionCriteria) -> Vec<AppHistory> {
        let mut out = Vec::new();
        for app in self.by_app.keys() {
            let Some(h) = self.history(app) else { continue };
            if h.total < criteria.min_reports {
                continue;
            }
            if h.span_years() < criteria.min_history_years {
                continue;
            }
            // Converging history: recent report rate vs lifetime rate.
            let span = h.span_years().max(0.1);
            let lifetime_rate = h.total as f64 / span;
            let records = self.records_for(app);
            let cutoff_days = (criteria.recent_window_years * 365.25) as i64;
            let recent = records
                .iter()
                .filter(|r| r.published.days_until(&h.newest) < cutoff_days)
                .count();
            let recent_rate = recent as f64 / criteria.recent_window_years;
            // Small-sample guard: with few reports the newest one always
            // falls inside the window, which would spuriously reject every
            // low-count history. A boom needs at least 3 recent reports.
            if recent >= 3 && recent_rate > criteria.max_recent_rate_ratio * lifetime_rate {
                continue;
            }
            out.push(h);
        }
        out
    }

    /// Count of records per publication year — used to render the dataset
    /// card (TAB-A).
    pub fn counts_by_year(&self) -> BTreeMap<i32, usize> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            *out.entry(r.published.year).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CveId;
    use cvss::Cvss3;

    fn rec(app: &str, year: i32, month: u8, n: u32, vector: &str, cwe: Cwe) -> CveRecord {
        CveRecord {
            id: CveId::new(year, n),
            app: app.to_string(),
            published: Date::new(year, month, 1).unwrap(),
            cwe,
            cvss3: Some(vector.parse::<Cvss3>().unwrap()),
            cvss2: None,
            description: String::new(),
        }
    }

    const CRIT: &str = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"; // 9.8
    const MED: &str = "CVSS:3.0/AV:L/AC:H/PR:L/UI:N/S:U/C:L/I:L/A:N"; // ~4.x
    const LOCAL_HIGH: &str = "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"; // 7.8

    fn sample_db() -> CveDatabase {
        let mut db = CveDatabase::new();
        // httpd: 2010–2016 history, mixed severities.
        db.insert(rec("httpd", 2010, 1, 1, CRIT, Cwe::StackBufferOverflow));
        db.insert(rec("httpd", 2012, 6, 2, MED, Cwe::ImproperInputValidation));
        db.insert(rec("httpd", 2014, 3, 3, LOCAL_HIGH, Cwe::Toctou));
        db.insert(rec("httpd", 2016, 9, 4, CRIT, Cwe::FormatString));
        // libtiny: short 1-year history — excluded by the 5-year rule.
        db.insert(rec("libtiny", 2015, 1, 5, MED, Cwe::InfoExposure));
        db.insert(rec("libtiny", 2016, 1, 6, MED, Cwe::InfoExposure));
        // booming: 6-year span but all reports in the last year — excluded
        // as non-converging.
        db.insert(rec("booming", 2010, 1, 7, MED, Cwe::InfoExposure));
        for n in 8..20 {
            db.insert(rec("booming", 2016, 6, n, MED, Cwe::InfoExposure));
        }
        db
    }

    #[test]
    fn insert_and_lookup() {
        let db = sample_db();
        assert_eq!(db.len(), 4 + 2 + 13);
        assert_eq!(db.apps().count(), 3);
        let recs = db.records_for("httpd");
        assert_eq!(recs.len(), 4);
        // Publication-ordered.
        assert!(recs.windows(2).all(|w| w[0].published <= w[1].published));
        assert!(db.records_for("nope").is_empty());
    }

    #[test]
    fn history_aggregates() {
        let db = sample_db();
        let h = db.history("httpd").unwrap();
        assert_eq!(h.total, 4);
        assert_eq!(h.high_severity, 3); // two 9.8s and one 7.8
        assert_eq!(h.network_attackable, 2);
        assert_eq!(h.cwe_count(Cwe::StackBufferOverflow), 1);
        assert_eq!(h.category_count(CweCategory::MemorySafety), 1);
        assert!(h.span_years() > 6.0);
        assert_eq!(h.max_score, 9.8);
        assert!(h.mean_score > 0.0 && h.mean_score < 9.8);
        assert!(db.history("ghost").is_none());
    }

    #[test]
    fn selection_applies_five_year_rule() {
        let db = sample_db();
        let selected = db.select(&SelectionCriteria::default());
        let names: Vec<&str> = selected.iter().map(|h| h.app.as_str()).collect();
        assert!(names.contains(&"httpd"));
        assert!(
            !names.contains(&"libtiny"),
            "short history must be excluded"
        );
    }

    #[test]
    fn selection_excludes_non_converging() {
        let db = sample_db();
        let selected = db.select(&SelectionCriteria::default());
        let names: Vec<&str> = selected.iter().map(|h| h.app.as_str()).collect();
        assert!(
            !names.contains(&"booming"),
            "boom-phase app must be excluded"
        );
    }

    #[test]
    fn selection_min_reports() {
        let mut db = CveDatabase::new();
        db.insert(rec("single", 2010, 1, 1, CRIT, Cwe::StackBufferOverflow));
        let selected = db.select(&SelectionCriteria::default());
        assert!(selected.is_empty());
    }

    #[test]
    fn counts_by_year() {
        let db = sample_db();
        let by_year = db.counts_by_year();
        assert_eq!(by_year[&2010], 2);
        assert_eq!(by_year[&2016], 1 + 1 + 12);
    }

    #[test]
    fn relaxed_criteria_admit_more() {
        let db = sample_db();
        let relaxed = SelectionCriteria {
            min_history_years: 0.5,
            max_recent_rate_ratio: 100.0,
            ..Default::default()
        };
        assert_eq!(db.select(&relaxed).len(), 3);
    }
}
