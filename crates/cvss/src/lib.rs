//! CVSS — Common Vulnerability Scoring System.
//!
//! The paper's ground truth (§5.1) is the CVE database, where "for each
//! vulnerability, its classification, impact, and severity is represented by
//! a metric called Common Vulnerability Scoring System (CVSS) (the current
//! version is v3.0)". The hypotheses the model trains on are CVSS-derived:
//! `CVSS > 7?`, `AV = N?`, per-factor impact questions.
//!
//! This crate is a from-scratch, spec-complete implementation of:
//!
//! * **CVSS v3.0** base, temporal and environmental scores ([`v3`]),
//!   validated against worked examples from the FIRST specification and
//!   published NVD scores;
//! * **CVSS v2** base scores ([`v2`]) for legacy records;
//! * vector-string parsing and printing for both, round-trip tested;
//! * the qualitative severity bands ([`severity`]).

pub mod severity;
pub mod v2;
pub mod v3;

pub use severity::Severity;
pub use v2::Cvss2;
pub use v3::{
    AttackComplexity, AttackVector, Cvss3, Impact, PrivilegesRequired, Scope, UserInteraction,
};
