//! Qualitative severity rating scale (CVSS v3.0 §5).

use std::fmt;

/// The five qualitative severity bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Score 0.0.
    None,
    /// Score 0.1 – 3.9.
    Low,
    /// Score 4.0 – 6.9.
    Medium,
    /// Score 7.0 – 8.9.
    High,
    /// Score 9.0 – 10.0.
    Critical,
}

impl Severity {
    /// Classify a CVSS score (scores are clamped into `[0, 10]` first).
    pub fn from_score(score: f64) -> Severity {
        let s = score.clamp(0.0, 10.0);
        if s < 0.05 {
            Severity::None
        } else if s < 3.95 {
            Severity::Low
        } else if s < 6.95 {
            Severity::Medium
        } else if s < 8.95 {
            Severity::High
        } else {
            Severity::Critical
        }
    }

    /// Name as printed by NVD.
    pub fn name(self) -> &'static str {
        match self {
            Severity::None => "NONE",
            Severity::Low => "LOW",
            Severity::Medium => "MEDIUM",
            Severity::High => "HIGH",
            Severity::Critical => "CRITICAL",
        }
    }

    /// The paper's headline hypothesis: "how many high-severity
    /// vulnerabilities exist in an application (i.e., CVSS > 7)?"
    pub fn is_high_or_critical(self) -> bool {
        matches!(self, Severity::High | Severity::Critical)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_boundaries() {
        assert_eq!(Severity::from_score(0.0), Severity::None);
        assert_eq!(Severity::from_score(0.1), Severity::Low);
        assert_eq!(Severity::from_score(3.9), Severity::Low);
        assert_eq!(Severity::from_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_score(7.0), Severity::High);
        assert_eq!(Severity::from_score(8.9), Severity::High);
        assert_eq!(Severity::from_score(9.0), Severity::Critical);
        assert_eq!(Severity::from_score(10.0), Severity::Critical);
    }

    #[test]
    fn out_of_range_scores_clamped() {
        assert_eq!(Severity::from_score(-1.0), Severity::None);
        assert_eq!(Severity::from_score(11.0), Severity::Critical);
    }

    #[test]
    fn ordering_matches_badness() {
        assert!(Severity::Critical > Severity::High);
        assert!(Severity::High > Severity::Medium);
        assert!(Severity::Medium > Severity::Low);
        assert!(Severity::Low > Severity::None);
    }

    #[test]
    fn high_or_critical_split() {
        assert!(Severity::High.is_high_or_critical());
        assert!(Severity::Critical.is_high_or_critical());
        assert!(!Severity::Medium.is_high_or_critical());
    }
}
