//! CVSS v2 base scoring, for legacy CVE records (pre-2016 entries in the
//! corpus carry v2 vectors only, as in the real CVE database).

use crate::severity::Severity;
use std::fmt;
use std::str::FromStr;

/// Access Vector (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessVector {
    Local,
    AdjacentNetwork,
    Network,
}

impl AccessVector {
    fn weight(self) -> f64 {
        match self {
            AccessVector::Local => 0.395,
            AccessVector::AdjacentNetwork => 0.646,
            AccessVector::Network => 1.0,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            AccessVector::Local => "L",
            AccessVector::AdjacentNetwork => "A",
            AccessVector::Network => "N",
        }
    }
}

/// Access Complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessComplexity {
    High,
    Medium,
    Low,
}

impl AccessComplexity {
    fn weight(self) -> f64 {
        match self {
            AccessComplexity::High => 0.35,
            AccessComplexity::Medium => 0.61,
            AccessComplexity::Low => 0.71,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            AccessComplexity::High => "H",
            AccessComplexity::Medium => "M",
            AccessComplexity::Low => "L",
        }
    }
}

/// Authentication (Au).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Authentication {
    Multiple,
    Single,
    None,
}

impl Authentication {
    fn weight(self) -> f64 {
        match self {
            Authentication::Multiple => 0.45,
            Authentication::Single => 0.56,
            Authentication::None => 0.704,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            Authentication::Multiple => "M",
            Authentication::Single => "S",
            Authentication::None => "N",
        }
    }
}

/// C/I/A impact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImpactV2 {
    None,
    Partial,
    Complete,
}

impl ImpactV2 {
    fn weight(self) -> f64 {
        match self {
            ImpactV2::None => 0.0,
            ImpactV2::Partial => 0.275,
            ImpactV2::Complete => 0.660,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            ImpactV2::None => "N",
            ImpactV2::Partial => "P",
            ImpactV2::Complete => "C",
        }
    }
}

/// A CVSS v2 base vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cvss2 {
    pub av: AccessVector,
    pub ac: AccessComplexity,
    pub au: Authentication,
    pub c: ImpactV2,
    pub i: ImpactV2,
    pub a: ImpactV2,
}

impl Cvss2 {
    /// Impact = 10.41 × (1 − (1−C)(1−I)(1−A)).
    pub fn impact(&self) -> f64 {
        10.41 * (1.0 - (1.0 - self.c.weight()) * (1.0 - self.i.weight()) * (1.0 - self.a.weight()))
    }

    /// Exploitability = 20 × AV × AC × Au.
    pub fn exploitability(&self) -> f64 {
        20.0 * self.av.weight() * self.ac.weight() * self.au.weight()
    }

    /// BaseScore = round₁(((0.6·Impact) + (0.4·Exploitability) − 1.5) × f(Impact)).
    pub fn base_score(&self) -> f64 {
        let impact = self.impact();
        let f = if impact == 0.0 { 0.0 } else { 1.176 };
        let raw = ((0.6 * impact) + (0.4 * self.exploitability()) - 1.5) * f;
        (raw * 10.0).round() / 10.0
    }

    /// v2 has no official bands; NVD maps v2 scores onto Low/Medium/High.
    /// We reuse the v3 bands for uniform aggregation.
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// Vector string, e.g. `AV:N/AC:L/Au:N/C:C/I:C/A:C`.
    pub fn vector(&self) -> String {
        format!(
            "AV:{}/AC:{}/Au:{}/C:{}/I:{}/A:{}",
            self.av.letter(),
            self.ac.letter(),
            self.au.letter(),
            self.c.letter(),
            self.i.letter(),
            self.a.letter(),
        )
    }
}

impl fmt::Display for Cvss2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.vector())
    }
}

/// Error parsing a v2 vector string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseV2Error(pub String);

impl fmt::Display for ParseV2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVSS v2 vector: {}", self.0)
    }
}

impl std::error::Error for ParseV2Error {}

impl FromStr for Cvss2 {
    type Err = ParseV2Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |msg: &str| ParseV2Error(format!("{msg} in `{s}`"));
        let body = s.strip_prefix('(').unwrap_or(s);
        let body = body.strip_suffix(')').unwrap_or(body);
        let mut av = None;
        let mut ac = None;
        let mut au = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        for part in body.split('/') {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| err("metric missing `:`"))?;
            match key {
                "AV" => {
                    av = Some(match value {
                        "L" => AccessVector::Local,
                        "A" => AccessVector::AdjacentNetwork,
                        "N" => AccessVector::Network,
                        _ => return Err(err("bad AV")),
                    })
                }
                "AC" => {
                    ac = Some(match value {
                        "H" => AccessComplexity::High,
                        "M" => AccessComplexity::Medium,
                        "L" => AccessComplexity::Low,
                        _ => return Err(err("bad AC")),
                    })
                }
                "Au" => {
                    au = Some(match value {
                        "M" => Authentication::Multiple,
                        "S" => Authentication::Single,
                        "N" => Authentication::None,
                        _ => return Err(err("bad Au")),
                    })
                }
                "C" | "I" | "A" => {
                    let v = match value {
                        "N" => ImpactV2::None,
                        "P" => ImpactV2::Partial,
                        "C" => ImpactV2::Complete,
                        _ => return Err(err("bad impact")),
                    };
                    match key {
                        "C" => c = Some(v),
                        "I" => i = Some(v),
                        _ => a = Some(v),
                    }
                }
                _ => return Err(err("unknown metric")),
            }
        }
        Ok(Cvss2 {
            av: av.ok_or_else(|| err("missing AV"))?,
            ac: ac.ok_or_else(|| err("missing AC"))?,
            au: au.ok_or_else(|| err("missing Au"))?,
            c: c.ok_or_else(|| err("missing C"))?,
            i: i.ok_or_else(|| err("missing I"))?,
            a: a.ok_or_else(|| err("missing A"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(vector: &str) -> f64 {
        vector.parse::<Cvss2>().unwrap().base_score()
    }

    /// Worked examples from the CVSS v2 guide and NVD.
    #[test]
    fn nvd_reference_scores() {
        // CVE-2002-0392 (Apache chunked encoding) — 7.5.
        assert_eq!(score("AV:N/AC:L/Au:N/C:P/I:P/A:P"), 7.5);
        // Full remote root — 10.0.
        assert_eq!(score("AV:N/AC:L/Au:N/C:C/I:C/A:C"), 10.0);
        // CVE-2003-0818 (MS04-007) variants — 6.8 for AC:M single-auth free.
        assert_eq!(score("AV:N/AC:M/Au:N/C:P/I:P/A:P"), 6.8);
        // Local complete compromise (classic kernel bug) — 7.2.
        assert_eq!(score("AV:L/AC:L/Au:N/C:C/I:C/A:C"), 7.2);
        // Remote DoS — 5.0.
        assert_eq!(score("AV:N/AC:L/Au:N/C:N/I:N/A:P"), 5.0);
    }

    #[test]
    fn zero_impact_is_zero_score() {
        assert_eq!(score("AV:N/AC:L/Au:N/C:N/I:N/A:N"), 0.0);
    }

    #[test]
    fn parenthesized_vector_accepted() {
        assert_eq!(score("(AV:N/AC:L/Au:N/C:C/I:C/A:C)"), 10.0);
    }

    #[test]
    fn round_trip() {
        for s in [
            "AV:N/AC:L/Au:N/C:C/I:C/A:C",
            "AV:L/AC:H/Au:M/C:P/I:N/A:P",
            "AV:A/AC:M/Au:S/C:N/I:P/A:C",
        ] {
            assert_eq!(s.parse::<Cvss2>().unwrap().vector(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<Cvss2>().is_err());
        assert!("AV:N/AC:L/Au:N/C:C/I:C".parse::<Cvss2>().is_err());
        assert!("AV:N/AC:Q/Au:N/C:C/I:C/A:C".parse::<Cvss2>().is_err());
    }

    #[test]
    fn severity_mapping() {
        assert_eq!(
            "AV:N/AC:L/Au:N/C:C/I:C/A:C"
                .parse::<Cvss2>()
                .unwrap()
                .severity(),
            Severity::Critical
        );
        assert_eq!(
            "AV:N/AC:L/Au:N/C:N/I:N/A:P"
                .parse::<Cvss2>()
                .unwrap()
                .severity(),
            Severity::Medium
        );
    }
}
