//! CVSS v3.0 — base, temporal and environmental scoring.
//!
//! Implements the equations of the FIRST "Common Vulnerability Scoring
//! System v3.0: Specification Document" exactly, including the Scope-changed
//! impact curve and the round-up-to-one-decimal semantics.

use crate::severity::Severity;
use std::fmt;
use std::str::FromStr;

/// Attack Vector (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackVector {
    Network,
    Adjacent,
    Local,
    Physical,
}

impl AttackVector {
    fn weight(self) -> f64 {
        match self {
            AttackVector::Network => 0.85,
            AttackVector::Adjacent => 0.62,
            AttackVector::Local => 0.55,
            AttackVector::Physical => 0.2,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            AttackVector::Network => "N",
            AttackVector::Adjacent => "A",
            AttackVector::Local => "L",
            AttackVector::Physical => "P",
        }
    }
}

/// Attack Complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackComplexity {
    Low,
    High,
}

impl AttackComplexity {
    fn weight(self) -> f64 {
        match self {
            AttackComplexity::Low => 0.77,
            AttackComplexity::High => 0.44,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            AttackComplexity::Low => "L",
            AttackComplexity::High => "H",
        }
    }
}

/// Privileges Required (PR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrivilegesRequired {
    None,
    Low,
    High,
}

impl PrivilegesRequired {
    /// PR weight depends on whether Scope is changed.
    fn weight(self, scope: Scope) -> f64 {
        match (self, scope) {
            (PrivilegesRequired::None, _) => 0.85,
            (PrivilegesRequired::Low, Scope::Unchanged) => 0.62,
            (PrivilegesRequired::Low, Scope::Changed) => 0.68,
            (PrivilegesRequired::High, Scope::Unchanged) => 0.27,
            (PrivilegesRequired::High, Scope::Changed) => 0.5,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            PrivilegesRequired::None => "N",
            PrivilegesRequired::Low => "L",
            PrivilegesRequired::High => "H",
        }
    }
}

/// User Interaction (UI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UserInteraction {
    None,
    Required,
}

impl UserInteraction {
    fn weight(self) -> f64 {
        match self {
            UserInteraction::None => 0.85,
            UserInteraction::Required => 0.62,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            UserInteraction::None => "N",
            UserInteraction::Required => "R",
        }
    }
}

/// Scope (S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    Unchanged,
    Changed,
}

impl Scope {
    fn letter(self) -> &'static str {
        match self {
            Scope::Unchanged => "U",
            Scope::Changed => "C",
        }
    }
}

/// Confidentiality / Integrity / Availability impact (C, I, A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Impact {
    None,
    Low,
    High,
}

impl Impact {
    fn weight(self) -> f64 {
        match self {
            Impact::None => 0.0,
            Impact::Low => 0.22,
            Impact::High => 0.56,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            Impact::None => "N",
            Impact::Low => "L",
            Impact::High => "H",
        }
    }
}

/// Exploit Code Maturity (E) — temporal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExploitMaturity {
    #[default]
    NotDefined,
    Unproven,
    ProofOfConcept,
    Functional,
    High,
}

impl ExploitMaturity {
    fn weight(self) -> f64 {
        match self {
            ExploitMaturity::NotDefined | ExploitMaturity::High => 1.0,
            ExploitMaturity::Functional => 0.97,
            ExploitMaturity::ProofOfConcept => 0.94,
            ExploitMaturity::Unproven => 0.91,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            ExploitMaturity::NotDefined => "X",
            ExploitMaturity::Unproven => "U",
            ExploitMaturity::ProofOfConcept => "P",
            ExploitMaturity::Functional => "F",
            ExploitMaturity::High => "H",
        }
    }
}

/// Remediation Level (RL) — temporal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RemediationLevel {
    #[default]
    NotDefined,
    OfficialFix,
    TemporaryFix,
    Workaround,
    Unavailable,
}

impl RemediationLevel {
    fn weight(self) -> f64 {
        match self {
            RemediationLevel::NotDefined | RemediationLevel::Unavailable => 1.0,
            RemediationLevel::Workaround => 0.97,
            RemediationLevel::TemporaryFix => 0.96,
            RemediationLevel::OfficialFix => 0.95,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            RemediationLevel::NotDefined => "X",
            RemediationLevel::OfficialFix => "O",
            RemediationLevel::TemporaryFix => "T",
            RemediationLevel::Workaround => "W",
            RemediationLevel::Unavailable => "U",
        }
    }
}

/// Report Confidence (RC) — temporal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReportConfidence {
    #[default]
    NotDefined,
    Unknown,
    Reasonable,
    Confirmed,
}

impl ReportConfidence {
    fn weight(self) -> f64 {
        match self {
            ReportConfidence::NotDefined | ReportConfidence::Confirmed => 1.0,
            ReportConfidence::Reasonable => 0.96,
            ReportConfidence::Unknown => 0.92,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            ReportConfidence::NotDefined => "X",
            ReportConfidence::Unknown => "U",
            ReportConfidence::Reasonable => "R",
            ReportConfidence::Confirmed => "C",
        }
    }
}

/// Security requirement (CR / IR / AR) — environmental.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Requirement {
    #[default]
    NotDefined,
    Low,
    Medium,
    High,
}

impl Requirement {
    fn weight(self) -> f64 {
        match self {
            Requirement::NotDefined | Requirement::Medium => 1.0,
            Requirement::High => 1.5,
            Requirement::Low => 0.5,
        }
    }

    fn letter(self) -> &'static str {
        match self {
            Requirement::NotDefined => "X",
            Requirement::Low => "L",
            Requirement::Medium => "M",
            Requirement::High => "H",
        }
    }
}

/// A full CVSS v3.0 vector (base mandatory; temporal/environmental optional).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cvss3 {
    pub av: AttackVector,
    pub ac: AttackComplexity,
    pub pr: PrivilegesRequired,
    pub ui: UserInteraction,
    pub scope: Scope,
    pub c: Impact,
    pub i: Impact,
    pub a: Impact,
    // Temporal.
    pub e: ExploitMaturity,
    pub rl: RemediationLevel,
    pub rc: ReportConfidence,
    // Environmental (security requirements; modified base metrics omitted —
    // the corpus never emits them, and NotDefined means "same as base").
    pub cr: Requirement,
    pub ir: Requirement,
    pub ar: Requirement,
}

impl Cvss3 {
    /// A base-only vector.
    #[allow(clippy::too_many_arguments)]
    pub fn base(
        av: AttackVector,
        ac: AttackComplexity,
        pr: PrivilegesRequired,
        ui: UserInteraction,
        scope: Scope,
        c: Impact,
        i: Impact,
        a: Impact,
    ) -> Cvss3 {
        Cvss3 {
            av,
            ac,
            pr,
            ui,
            scope,
            c,
            i,
            a,
            e: ExploitMaturity::default(),
            rl: RemediationLevel::default(),
            rc: ReportConfidence::default(),
            cr: Requirement::default(),
            ir: Requirement::default(),
            ar: Requirement::default(),
        }
    }

    /// Impact Sub-Score Base: `1 − (1−C)(1−I)(1−A)`.
    fn isc_base(&self) -> f64 {
        1.0 - (1.0 - self.c.weight()) * (1.0 - self.i.weight()) * (1.0 - self.a.weight())
    }

    /// Impact sub-score, with the Scope-changed curve.
    pub fn impact_subscore(&self) -> f64 {
        let isc = self.isc_base();
        match self.scope {
            Scope::Unchanged => 6.42 * isc,
            Scope::Changed => 7.52 * (isc - 0.029) - 3.25 * (isc - 0.02).powi(15),
        }
    }

    /// Exploitability sub-score: `8.22 × AV × AC × PR × UI`.
    pub fn exploitability_subscore(&self) -> f64 {
        8.22 * self.av.weight() * self.ac.weight() * self.pr.weight(self.scope) * self.ui.weight()
    }

    /// The base score (0.0 – 10.0, one decimal).
    pub fn base_score(&self) -> f64 {
        let impact = self.impact_subscore();
        if impact <= 0.0 {
            return 0.0;
        }
        let sum = impact + self.exploitability_subscore();
        match self.scope {
            Scope::Unchanged => roundup(sum.min(10.0)),
            Scope::Changed => roundup((1.08 * sum).min(10.0)),
        }
    }

    /// The temporal score: `Roundup(Base × E × RL × RC)`.
    pub fn temporal_score(&self) -> f64 {
        roundup(self.base_score() * self.e.weight() * self.rl.weight() * self.rc.weight())
    }

    /// The environmental score with modified metrics = base metrics and
    /// security requirements applied (CR/IR/AR).
    pub fn environmental_score(&self) -> f64 {
        let misc_base = (1.0
            - (1.0 - self.c.weight() * self.cr.weight())
                * (1.0 - self.i.weight() * self.ir.weight())
                * (1.0 - self.a.weight() * self.ar.weight()))
        .min(0.915);
        let m_impact = match self.scope {
            Scope::Unchanged => 6.42 * misc_base,
            Scope::Changed => 7.52 * (misc_base - 0.029) - 3.25 * (misc_base - 0.02).powi(15),
        };
        if m_impact <= 0.0 {
            return 0.0;
        }
        let m_exploitability = self.exploitability_subscore();
        let inner = match self.scope {
            Scope::Unchanged => roundup((m_impact + m_exploitability).min(10.0)),
            Scope::Changed => roundup((1.08 * (m_impact + m_exploitability)).min(10.0)),
        };
        roundup(inner * self.e.weight() * self.rl.weight() * self.rc.weight())
    }

    /// Severity band of the base score.
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// The paper's hypothesis H1: is this a high-severity vulnerability
    /// (CVSS > 7)?
    pub fn is_high_severity(&self) -> bool {
        self.base_score() > 7.0
    }

    /// The paper's hypothesis H2: network attack vector (AV = N)?
    pub fn is_network_attackable(&self) -> bool {
        self.av == AttackVector::Network
    }

    /// Format the base (plus any non-default temporal/environmental
    /// metrics) as a vector string.
    pub fn vector(&self) -> String {
        let mut s = format!(
            "CVSS:3.0/AV:{}/AC:{}/PR:{}/UI:{}/S:{}/C:{}/I:{}/A:{}",
            self.av.letter(),
            self.ac.letter(),
            self.pr.letter(),
            self.ui.letter(),
            self.scope.letter(),
            self.c.letter(),
            self.i.letter(),
            self.a.letter(),
        );
        if self.e != ExploitMaturity::NotDefined {
            s.push_str(&format!("/E:{}", self.e.letter()));
        }
        if self.rl != RemediationLevel::NotDefined {
            s.push_str(&format!("/RL:{}", self.rl.letter()));
        }
        if self.rc != ReportConfidence::NotDefined {
            s.push_str(&format!("/RC:{}", self.rc.letter()));
        }
        if self.cr != Requirement::NotDefined {
            s.push_str(&format!("/CR:{}", self.cr.letter()));
        }
        if self.ir != Requirement::NotDefined {
            s.push_str(&format!("/IR:{}", self.ir.letter()));
        }
        if self.ar != Requirement::NotDefined {
            s.push_str(&format!("/AR:{}", self.ar.letter()));
        }
        s
    }
}

impl fmt::Display for Cvss3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.vector())
    }
}

/// CVSS v3.0 Roundup: the smallest number with one decimal place that is
/// equal to or higher than the input. Implemented on a fixed-point grid to
/// dodge binary floating-point artifacts (the v3.1 clarification).
pub fn roundup(value: f64) -> f64 {
    let int = (value * 100_000.0).round() as i64;
    if int % 10_000 == 0 {
        int as f64 / 100_000.0
    } else {
        ((int / 10_000) + 1) as f64 / 10.0
    }
}

/// Error parsing a vector string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVectorError(pub String);

impl fmt::Display for ParseVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVSS v3 vector: {}", self.0)
    }
}

impl std::error::Error for ParseVectorError {}

impl FromStr for Cvss3 {
    type Err = ParseVectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |msg: &str| ParseVectorError(format!("{msg} in `{s}`"));
        let body = s
            .strip_prefix("CVSS:3.0/")
            .or_else(|| s.strip_prefix("CVSS:3.1/"))
            .ok_or_else(|| err("missing CVSS:3.x prefix"))?;

        let mut av = None;
        let mut ac = None;
        let mut pr = None;
        let mut ui = None;
        let mut scope = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        let mut e = ExploitMaturity::NotDefined;
        let mut rl = RemediationLevel::NotDefined;
        let mut rc = ReportConfidence::NotDefined;
        let mut cr = Requirement::NotDefined;
        let mut ir = Requirement::NotDefined;
        let mut ar = Requirement::NotDefined;

        for part in body.split('/') {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| err("metric missing `:`"))?;
            match key {
                "AV" => {
                    av = Some(match value {
                        "N" => AttackVector::Network,
                        "A" => AttackVector::Adjacent,
                        "L" => AttackVector::Local,
                        "P" => AttackVector::Physical,
                        _ => return Err(err("bad AV")),
                    })
                }
                "AC" => {
                    ac = Some(match value {
                        "L" => AttackComplexity::Low,
                        "H" => AttackComplexity::High,
                        _ => return Err(err("bad AC")),
                    })
                }
                "PR" => {
                    pr = Some(match value {
                        "N" => PrivilegesRequired::None,
                        "L" => PrivilegesRequired::Low,
                        "H" => PrivilegesRequired::High,
                        _ => return Err(err("bad PR")),
                    })
                }
                "UI" => {
                    ui = Some(match value {
                        "N" => UserInteraction::None,
                        "R" => UserInteraction::Required,
                        _ => return Err(err("bad UI")),
                    })
                }
                "S" => {
                    scope = Some(match value {
                        "U" => Scope::Unchanged,
                        "C" => Scope::Changed,
                        _ => return Err(err("bad S")),
                    })
                }
                "C" | "I" | "A" => {
                    let v = match value {
                        "N" => Impact::None,
                        "L" => Impact::Low,
                        "H" => Impact::High,
                        _ => return Err(err("bad impact")),
                    };
                    match key {
                        "C" => c = Some(v),
                        "I" => i = Some(v),
                        _ => a = Some(v),
                    }
                }
                "E" => {
                    e = match value {
                        "X" => ExploitMaturity::NotDefined,
                        "U" => ExploitMaturity::Unproven,
                        "P" => ExploitMaturity::ProofOfConcept,
                        "F" => ExploitMaturity::Functional,
                        "H" => ExploitMaturity::High,
                        _ => return Err(err("bad E")),
                    }
                }
                "RL" => {
                    rl = match value {
                        "X" => RemediationLevel::NotDefined,
                        "O" => RemediationLevel::OfficialFix,
                        "T" => RemediationLevel::TemporaryFix,
                        "W" => RemediationLevel::Workaround,
                        "U" => RemediationLevel::Unavailable,
                        _ => return Err(err("bad RL")),
                    }
                }
                "RC" => {
                    rc = match value {
                        "X" => ReportConfidence::NotDefined,
                        "U" => ReportConfidence::Unknown,
                        "R" => ReportConfidence::Reasonable,
                        "C" => ReportConfidence::Confirmed,
                        _ => return Err(err("bad RC")),
                    }
                }
                "CR" | "IR" | "AR" => {
                    let v = match value {
                        "X" => Requirement::NotDefined,
                        "L" => Requirement::Low,
                        "M" => Requirement::Medium,
                        "H" => Requirement::High,
                        _ => return Err(err("bad requirement")),
                    };
                    match key {
                        "CR" => cr = v,
                        "IR" => ir = v,
                        _ => ar = v,
                    }
                }
                _ => return Err(err("unknown metric")),
            }
        }

        Ok(Cvss3 {
            av: av.ok_or_else(|| err("missing AV"))?,
            ac: ac.ok_or_else(|| err("missing AC"))?,
            pr: pr.ok_or_else(|| err("missing PR"))?,
            ui: ui.ok_or_else(|| err("missing UI"))?,
            scope: scope.ok_or_else(|| err("missing S"))?,
            c: c.ok_or_else(|| err("missing C"))?,
            i: i.ok_or_else(|| err("missing I"))?,
            a: a.ok_or_else(|| err("missing A"))?,
            e,
            rl,
            rc,
            cr,
            ir,
            ar,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(vector: &str) -> f64 {
        vector.parse::<Cvss3>().unwrap().base_score()
    }

    /// Published NVD v3.0 base scores.
    #[test]
    fn nvd_reference_scores() {
        // Full remote compromise (e.g. CVE-2014-6271 "Shellshock" rescored).
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
        // Scope-changed full compromise caps at 10.0.
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"), 10.0);
        // Local privilege escalation (classic kernel LPE shape).
        assert_eq!(score("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"), 7.8);
        // Reflected XSS (CVE-2013-1937 shape).
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N"), 6.1);
        // Information disclosure.
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N"), 5.3);
        // DoS only.
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"), 7.5);
        // Physical, high complexity, low impact.
        assert_eq!(score("CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"), 1.6);
    }

    #[test]
    fn no_impact_is_zero() {
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"), 0.0);
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N"), 0.0);
    }

    #[test]
    fn scope_changed_pr_weights() {
        // Same metrics, PR:L — scope change lifts the PR weight 0.62 → 0.68.
        let unchanged = score("CVSS:3.0/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H");
        let changed = score("CVSS:3.0/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H");
        assert_eq!(unchanged, 8.8);
        assert_eq!(changed, 9.9);
    }

    #[test]
    fn roundup_matches_spec() {
        assert_eq!(roundup(4.02), 4.1);
        assert_eq!(roundup(4.0), 4.0);
        assert_eq!(roundup(4.00000001), 4.0); // grid snap (v3.1 clarification)
        assert_eq!(roundup(0.0), 0.0);
        assert_eq!(roundup(9.86), 9.9);
    }

    #[test]
    fn temporal_score_discounts() {
        let v: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:U/RL:O/RC:U"
            .parse()
            .unwrap();
        // 9.8 × 0.91 × 0.95 × 0.92 = 7.79... → 7.8
        assert_eq!(v.temporal_score(), 7.8);
        // Not-defined temporal metrics leave the score unchanged.
        let base_only: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap();
        assert_eq!(base_only.temporal_score(), base_only.base_score());
    }

    #[test]
    fn environmental_requirements_shift_score() {
        let base: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"
            .parse()
            .unwrap();
        assert_eq!(base.environmental_score(), base.base_score());
        let high_cr: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N/CR:H"
            .parse()
            .unwrap();
        assert!(high_cr.environmental_score() > base.base_score());
        let low_cr: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N/CR:L"
            .parse()
            .unwrap();
        assert!(low_cr.environmental_score() < base.base_score());
    }

    #[test]
    fn vector_round_trip() {
        for s in [
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:C/C:L/I:L/A:N",
            "CVSS:3.0/AV:P/AC:L/PR:L/UI:N/S:U/C:N/I:L/A:H",
            "CVSS:3.0/AV:A/AC:H/PR:N/UI:R/S:U/C:H/I:N/A:N/E:P/RL:W/RC:R",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/CR:H/IR:L/AR:M",
        ] {
            let parsed: Cvss3 = s.parse().unwrap();
            assert_eq!(parsed.vector(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<Cvss3>().is_err());
        assert!("CVSS:3.0/AV:N".parse::<Cvss3>().is_err()); // missing metrics
        assert!("CVSS:3.0/AV:Z/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse::<Cvss3>()
            .is_err());
        assert!("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse::<Cvss3>()
            .is_err()); // no prefix
        assert!("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/ZZ:Q"
            .parse::<Cvss3>()
            .is_err());
    }

    #[test]
    fn v31_prefix_accepted() {
        let v: Cvss3 = "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap();
        assert_eq!(v.base_score(), 9.8);
    }

    #[test]
    fn hypothesis_helpers() {
        let v: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap();
        assert!(v.is_high_severity());
        assert!(v.is_network_attackable());
        assert_eq!(v.severity(), Severity::Critical);
        let low: Cvss3 = "CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"
            .parse()
            .unwrap();
        assert!(!low.is_high_severity());
        assert!(!low.is_network_attackable());
        assert_eq!(low.severity(), Severity::Low);
    }

    #[test]
    fn subscores_are_in_spec_ranges() {
        let v: Cvss3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap();
        assert!((v.exploitability_subscore() - 3.887).abs() < 0.01);
        assert!((v.impact_subscore() - 5.873).abs() < 0.01);
    }

    #[test]
    fn base_scores_cover_all_bands() {
        let vectors_and_bands = [
            (
                "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N",
                Severity::None,
            ),
            (
                "CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N",
                Severity::Low,
            ),
            (
                "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N",
                Severity::Medium,
            ),
            (
                "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
                Severity::High,
            ),
            (
                "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
                Severity::Critical,
            ),
        ];
        for (v, band) in vectors_and_bands {
            assert_eq!(v.parse::<Cvss3>().unwrap().severity(), band, "{v}");
        }
    }
}
