//! Property tests: CVSS scoring invariants over the whole metric space.

// Offline build: `proptest` is not vendored, so this whole suite is
// compiled out unless the crate's `proptest` feature is enabled (which
// additionally requires registry access and restoring the `proptest`
// dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

use cvss::v3::*;
use cvss::{Cvss2, Severity};
use proptest::prelude::*;

fn av() -> impl Strategy<Value = AttackVector> {
    prop_oneof![
        Just(AttackVector::Network),
        Just(AttackVector::Adjacent),
        Just(AttackVector::Local),
        Just(AttackVector::Physical),
    ]
}

fn ac() -> impl Strategy<Value = AttackComplexity> {
    prop_oneof![Just(AttackComplexity::Low), Just(AttackComplexity::High)]
}

fn pr() -> impl Strategy<Value = PrivilegesRequired> {
    prop_oneof![
        Just(PrivilegesRequired::None),
        Just(PrivilegesRequired::Low),
        Just(PrivilegesRequired::High),
    ]
}

fn ui() -> impl Strategy<Value = UserInteraction> {
    prop_oneof![Just(UserInteraction::None), Just(UserInteraction::Required)]
}

fn scope() -> impl Strategy<Value = Scope> {
    prop_oneof![Just(Scope::Unchanged), Just(Scope::Changed)]
}

fn impact() -> impl Strategy<Value = Impact> {
    prop_oneof![Just(Impact::None), Just(Impact::Low), Just(Impact::High)]
}

fn base() -> impl Strategy<Value = Cvss3> {
    (
        av(),
        ac(),
        pr(),
        ui(),
        scope(),
        impact(),
        impact(),
        impact(),
    )
        .prop_map(|(av, ac, pr, ui, s, c, i, a)| Cvss3::base(av, ac, pr, ui, s, c, i, a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Scores are always in [0, 10] with one decimal digit.
    #[test]
    fn base_score_in_range_and_one_decimal(v in base()) {
        let score = v.base_score();
        prop_assert!((0.0..=10.0).contains(&score));
        let tenths = score * 10.0;
        prop_assert!((tenths - tenths.round()).abs() < 1e-9, "{score} not one-decimal");
    }

    /// Vector strings round-trip exactly.
    #[test]
    fn vector_round_trip(v in base()) {
        let text = v.vector();
        let parsed: Cvss3 = text.parse().unwrap();
        prop_assert_eq!(parsed, v);
        prop_assert_eq!(parsed.vector(), text);
    }

    /// Zero impact always scores zero; any impact scores above zero.
    #[test]
    fn zero_impact_iff_zero_score(v in base()) {
        let no_impact = v.c == Impact::None && v.i == Impact::None && v.a == Impact::None;
        prop_assert_eq!(v.base_score() == 0.0, no_impact, "{}", v.vector());
    }

    /// Monotonicity: raising confidentiality impact never lowers the score.
    #[test]
    fn raising_impact_is_monotone(v in base()) {
        let bump = |imp: Impact| match imp {
            Impact::None => Impact::Low,
            Impact::Low | Impact::High => Impact::High,
        };
        let mut worse = v;
        worse.c = bump(v.c);
        prop_assert!(worse.base_score() >= v.base_score());
    }

    /// Network attack vector is never easier to defend than physical.
    #[test]
    fn network_scores_at_least_physical(v in base()) {
        let mut net = v;
        net.av = AttackVector::Network;
        let mut phys = v;
        phys.av = AttackVector::Physical;
        prop_assert!(net.base_score() >= phys.base_score());
    }

    /// Temporal score never exceeds the base score.
    #[test]
    fn temporal_bounded_by_base(v in base(), e in 0usize..5, rl in 0usize..5, rc in 0usize..4) {
        let mut t = v;
        t.e = [ExploitMaturity::NotDefined, ExploitMaturity::Unproven,
               ExploitMaturity::ProofOfConcept, ExploitMaturity::Functional,
               ExploitMaturity::High][e];
        t.rl = [RemediationLevel::NotDefined, RemediationLevel::OfficialFix,
                RemediationLevel::TemporaryFix, RemediationLevel::Workaround,
                RemediationLevel::Unavailable][rl];
        t.rc = [ReportConfidence::NotDefined, ReportConfidence::Unknown,
                ReportConfidence::Reasonable, ReportConfidence::Confirmed][rc];
        prop_assert!(t.temporal_score() <= t.base_score() + 1e-9);
        prop_assert!((0.0..=10.0).contains(&t.temporal_score()));
    }

    /// Severity bands are consistent with scores.
    #[test]
    fn severity_band_matches_score(v in base()) {
        let score = v.base_score();
        let sev = v.severity();
        match sev {
            Severity::None => prop_assert!(score == 0.0),
            Severity::Low => prop_assert!((0.1..=3.9).contains(&score)),
            Severity::Medium => prop_assert!((4.0..=6.9).contains(&score)),
            Severity::High => prop_assert!((7.0..=8.9).contains(&score)),
            Severity::Critical => prop_assert!(score >= 9.0),
        }
    }

    /// The parser never panics on arbitrary strings.
    #[test]
    fn parser_total(s in "\\PC{0,60}") {
        let _ = s.parse::<Cvss3>();
        let _ = s.parse::<Cvss2>();
    }
}
