//! Abstract syntax tree.
//!
//! The AST is the shared substrate for every code-property analysis in the
//! framework: the testbed (LoC, complexity, Halstead, counts), the data- and
//! control-flow analyses, the path explorer, the code-smell detectors, the
//! bug-finding tools, and the attack-surface enumeration.

use crate::dialect::Dialect;
use crate::span::Span;
use std::fmt;

/// A whole application: a set of modules plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Application name (e.g. `"httpd"`).
    pub name: String,
    /// The primary dialect (language) of the application, per Figure 2's
    /// "primarily C / C++ / Python / Java" categorization.
    pub dialect: Dialect,
    /// Source modules (files).
    pub modules: Vec<Module>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: impl Into<String>, dialect: Dialect) -> Self {
        Program {
            name: name.into(),
            dialect,
            modules: Vec::new(),
        }
    }

    /// Iterate all functions across all modules.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.modules.iter().flat_map(|m| m.functions.iter())
    }

    /// Total number of functions.
    pub fn function_count(&self) -> usize {
        self.modules.iter().map(|m| m.functions.len()).sum()
    }

    /// Find a function by name anywhere in the program.
    pub fn find_function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

/// One source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// File path, e.g. `"src/net/server.c"`.
    pub path: String,
    /// Dialect this file is written in (normally the program's dialect).
    pub dialect: Dialect,
    /// The raw source text the module was parsed from; kept so line-oriented
    /// analyses (cloc-style LoC classification) can run without re-emission.
    pub source: String,
    /// Module-level (global) variable declarations.
    pub globals: Vec<Global>,
    /// Function definitions in declaration order.
    pub functions: Vec<Function>,
}

/// A module-level variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    pub name: String,
    pub ty: Type,
    /// Optional constant initializer.
    pub init: Option<Expr>,
    pub span: Span,
}

/// A security-relevant annotation attached to a function.
///
/// Annotations model the deployment facts (which interfaces are exposed to
/// the network, which code runs privileged) that the RASQ attack-surface
/// measure and the attack-graph builder need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// `@endpoint(network | local | file)` — the function is an entry point
    /// reachable through the named channel kind.
    Endpoint(ChannelKind),
    /// `@priv(root | user)` — privilege level the function executes at.
    Priv(PrivLevel),
    /// `@untrusted` — every parameter is attacker-controlled.
    Untrusted,
    /// `@deprecated` — counted as a code smell.
    Deprecated,
}

impl Annotation {
    /// True if this is any `@endpoint(..)` annotation.
    pub fn is_endpoint(&self) -> bool {
        matches!(self, Annotation::Endpoint(_))
    }
}

/// The kind of channel through which an endpoint is reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChannelKind {
    /// Remote network access — maps to CVSS `AV:N`.
    Network,
    /// Local IPC / CLI — maps to CVSS `AV:L`.
    Local,
    /// File-based input — maps to CVSS `AV:L` with higher complexity.
    File,
}

impl ChannelKind {
    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::Network => "network",
            ChannelKind::Local => "local",
            ChannelKind::File => "file",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "network" => ChannelKind::Network,
            "local" => ChannelKind::Local,
            "file" => ChannelKind::File,
            _ => return None,
        })
    }
}

/// Privilege level a function executes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrivLevel {
    User,
    Root,
}

impl PrivLevel {
    pub fn name(self) -> &'static str {
        match self {
            PrivLevel::User => "user",
            PrivLevel::Root => "root",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "user" => PrivLevel::User,
            "root" => PrivLevel::Root,
            _ => return None,
        })
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Param>,
    pub ret: Type,
    pub body: Block,
    pub annotations: Vec<Annotation>,
    pub span: Span,
}

impl Function {
    /// The channel kinds this function is directly exposed on.
    pub fn endpoint_channels(&self) -> Vec<ChannelKind> {
        self.annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::Endpoint(k) => Some(*k),
                _ => None,
            })
            .collect()
    }

    /// The declared privilege level (defaults to [`PrivLevel::User`]).
    pub fn privilege(&self) -> PrivLevel {
        self.annotations
            .iter()
            .find_map(|a| match a {
                Annotation::Priv(p) => Some(*p),
                _ => None,
            })
            .unwrap_or(PrivLevel::User)
    }

    /// True if parameters are marked attacker-controlled.
    pub fn is_untrusted(&self) -> bool {
        self.annotations.contains(&Annotation::Untrusted)
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// MiniLang types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Int,
    Float,
    Bool,
    Str,
    /// A fixed-size buffer of the element type, e.g. `int[64]` / `str[256]`.
    /// Buffers are the substrate for the memory-corruption CWE recipes.
    Array(Box<Type>, usize),
    Void,
}

impl Type {
    /// The declared capacity if this is a buffer type.
    pub fn buffer_capacity(&self) -> Option<usize> {
        match self {
            Type::Array(_, n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "str"),
            Type::Array(elem, n) => write!(f, "{elem}[{n}]"),
            Type::Void => write!(f, "void"),
        }
    }
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>, span: Span) -> Self {
        Block { stmts, span }
    }
}

/// A statement with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let name: ty = init;`
    Let {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// `lhs = rhs;` or `lhs[i] = rhs;` — `op` is `None` for plain `=`,
    /// or the compound operator for `+=` etc.
    Assign {
        target: LValue,
        op: Option<BinaryOp>,
        value: Expr,
    },
    /// `if cond { .. } else { .. }`
    If {
        cond: Expr,
        then_branch: Block,
        else_branch: Option<Block>,
    },
    /// `while cond { .. }`
    While { cond: Expr, body: Block },
    /// `for init; cond; step { .. }` — `init`/`step` are simple statements.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
    },
    /// `switch expr { case k: {..} ... default: {..} }`
    Switch {
        scrutinee: Expr,
        cases: Vec<SwitchCase>,
        default: Option<Block>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return expr?;`
    Return(Option<Expr>),
    /// A bare expression (usually a call) followed by `;`.
    Expr(Expr),
    /// A nested `{ ... }` block.
    Block(Block),
}

/// One `case k: { .. }` arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    pub value: i64,
    pub body: Block,
    pub span: Span,
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `x = ..`
    Var(String, Span),
    /// `buf[i] = ..`
    Index {
        base: String,
        index: Expr,
        span: Span,
    },
}

impl LValue {
    /// The root variable being written.
    pub fn base_name(&self) -> &str {
        match self {
            LValue::Var(name, _) => name,
            LValue::Index { base, .. } => base,
        }
    }

    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, s) => *s,
            LValue::Index { span, .. } => *span,
        }
    }
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructors used by the corpus synthesizer.
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::Int(v), Span::dummy())
    }

    pub fn var(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Var(name.into()), Span::dummy())
    }

    pub fn str_lit(s: impl Into<String>) -> Self {
        Expr::new(ExprKind::Str(s.into()), Span::dummy())
    }

    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::new(
            ExprKind::Call {
                callee: name.into(),
                args,
            },
            Span::dummy(),
        )
    }

    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::new(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            Span::dummy(),
        )
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Var(String),
    /// `buf[i]`
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `callee(args...)` — callee may be a user function or an intrinsic.
    Call {
        callee: String,
        args: Vec<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

impl UnaryOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "!",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinaryOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
        }
    }

    /// True for `== != < <= > >=` — these create decision points in McCabe
    /// complexity only when used in branch conditions, and they bound buffer
    /// indices for the overflow checker's dominance test.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// True for `&&` / `||` — each short-circuit adds a decision point.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// True for arithmetic operators that can overflow an `int`.
    pub fn can_overflow(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Shl
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_function() -> Function {
        Function {
            name: "f".into(),
            params: vec![],
            ret: Type::Void,
            body: Block::default(),
            annotations: vec![
                Annotation::Endpoint(ChannelKind::Network),
                Annotation::Priv(PrivLevel::Root),
            ],
            span: Span::dummy(),
        }
    }

    #[test]
    fn endpoint_channels_extracted() {
        let f = sample_function();
        assert_eq!(f.endpoint_channels(), vec![ChannelKind::Network]);
        assert_eq!(f.privilege(), PrivLevel::Root);
        assert!(!f.is_untrusted());
    }

    #[test]
    fn default_privilege_is_user() {
        let mut f = sample_function();
        f.annotations.clear();
        assert_eq!(f.privilege(), PrivLevel::User);
    }

    #[test]
    fn buffer_capacity() {
        assert_eq!(
            Type::Array(Box::new(Type::Int), 64).buffer_capacity(),
            Some(64)
        );
        assert_eq!(Type::Int.buffer_capacity(), None);
    }

    #[test]
    fn type_display() {
        assert_eq!(
            Type::Array(Box::new(Type::Str), 256).to_string(),
            "str[256]"
        );
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn channel_and_priv_names_round_trip() {
        for k in [ChannelKind::Network, ChannelKind::Local, ChannelKind::File] {
            assert_eq!(ChannelKind::from_name(k.name()), Some(k));
        }
        for p in [PrivLevel::User, PrivLevel::Root] {
            assert_eq!(PrivLevel::from_name(p.name()), Some(p));
        }
        assert_eq!(ChannelKind::from_name("bluetooth"), None);
    }

    #[test]
    fn operator_classifications() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert!(BinaryOp::Add.can_overflow());
        assert!(!BinaryOp::Div.can_overflow());
        assert!(!BinaryOp::Add.is_comparison());
    }

    #[test]
    fn lvalue_base_name() {
        let lv = LValue::Index {
            base: "buf".into(),
            index: Expr::int(3),
            span: Span::dummy(),
        };
        assert_eq!(lv.base_name(), "buf");
        assert_eq!(LValue::Var("x".into(), Span::dummy()).base_name(), "x");
    }

    #[test]
    fn program_function_lookup() {
        let mut p = Program::new("app", Dialect::C);
        p.modules.push(Module {
            path: "m.c".into(),
            dialect: Dialect::C,
            source: String::new(),
            globals: vec![],
            functions: vec![sample_function()],
        });
        assert_eq!(p.function_count(), 1);
        assert!(p.find_function("f").is_some());
        assert!(p.find_function("g").is_none());
    }
}
