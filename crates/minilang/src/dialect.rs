//! Surface dialects.
//!
//! The paper's Figure 2 categorizes the 164 surveyed applications by primary
//! programming language (126 C, 20 C++, 6 Python, 12 Java) and asks whether
//! language choice correlates with vulnerability counts. MiniLang keeps one
//! core grammar but exposes four *dialects* that differ in:
//!
//! * comment syntax (what the lexer skips and the cloc-equivalent counts);
//! * memory-safety priors (the `corpus` generator seeds pointer-style bugs
//!   such as CWE-121 only in unsafe dialects);
//! * cosmetic keyword spellings handled by the pretty-printer.
//!
//! This gives the per-language analyses in `static-analysis` and the
//! language-prior logic in `corpus` real work, instead of a tag field.

use std::fmt;

/// The surface language an application module is (notionally) written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dialect {
    /// C-style surface: `//` and `/* ... */` comments, unsafe buffers.
    C,
    /// C++-style surface: same comments as C, unsafe buffers, richer stdlib.
    Cpp,
    /// Python-style surface: `#` line comments and `"""..."""` block
    /// comments; memory-safe (no raw buffer overflow recipes).
    Python,
    /// Java-style surface: `//`, `/* ... */` and `/** ... */` doc comments;
    /// memory-safe.
    Java,
}

impl Dialect {
    /// All dialects, in the order the paper lists them.
    pub const ALL: [Dialect; 4] = [Dialect::C, Dialect::Cpp, Dialect::Python, Dialect::Java];

    /// The line-comment introducer for this dialect.
    pub fn line_comment(self) -> &'static str {
        match self {
            Dialect::C | Dialect::Cpp | Dialect::Java => "//",
            Dialect::Python => "#",
        }
    }

    /// The block-comment delimiters, `(open, close)`.
    pub fn block_comment(self) -> (&'static str, &'static str) {
        match self {
            Dialect::C | Dialect::Cpp | Dialect::Java => ("/*", "*/"),
            Dialect::Python => ("\"\"\"", "\"\"\""),
        }
    }

    /// Whether the dialect permits raw, bounds-unchecked buffer writes.
    ///
    /// The corpus generator only seeds memory-corruption CWEs (121, 122) in
    /// unsafe dialects, mirroring the paper's observation that "some common
    /// bug patterns, such as pointer errors, are precluded by higher-level
    /// languages".
    pub fn is_memory_unsafe(self) -> bool {
        matches!(self, Dialect::C | Dialect::Cpp)
    }

    /// Conventional source-file extension, used by module path synthesis.
    pub fn extension(self) -> &'static str {
        match self {
            Dialect::C => "c",
            Dialect::Cpp => "cc",
            Dialect::Python => "py",
            Dialect::Java => "java",
        }
    }

    /// Human-readable name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Dialect::C => "C",
            Dialect::Cpp => "C++",
            Dialect::Python => "Python",
            Dialect::Java => "Java",
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_syntax_is_per_dialect() {
        assert_eq!(Dialect::C.line_comment(), "//");
        assert_eq!(Dialect::Python.line_comment(), "#");
        assert_eq!(Dialect::Java.block_comment(), ("/*", "*/"));
        assert_eq!(Dialect::Python.block_comment(), ("\"\"\"", "\"\"\""));
    }

    #[test]
    fn memory_safety_split_matches_paper() {
        assert!(Dialect::C.is_memory_unsafe());
        assert!(Dialect::Cpp.is_memory_unsafe());
        assert!(!Dialect::Python.is_memory_unsafe());
        assert!(!Dialect::Java.is_memory_unsafe());
    }

    #[test]
    fn names_match_figure_legend() {
        let names: Vec<&str> = Dialect::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["C", "C++", "Python", "Java"]);
    }

    #[test]
    fn extensions_are_distinct() {
        let mut exts: Vec<&str> = Dialect::ALL.iter().map(|d| d.extension()).collect();
        exts.sort_unstable();
        exts.dedup();
        assert_eq!(exts.len(), 4);
    }
}
