//! Lex and parse errors.

use crate::span::Span;
use std::fmt;

/// An error produced while tokenizing a module.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub span: Span,
}

impl LexError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        LexError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// An error produced while parsing a module.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
}

impl ParseError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_location() {
        let e = ParseError::new("expected `;`", Span::new(0, 1, 3, 9));
        assert_eq!(e.to_string(), "parse error at 3:9: expected `;`");
        let l = LexError::new("unterminated string", Span::new(0, 1, 2, 4));
        assert_eq!(l.to_string(), "lex error at 2:4: unterminated string");
    }

    #[test]
    fn lex_error_converts_to_parse_error() {
        let l = LexError::new("bad char", Span::new(5, 6, 1, 6));
        let p: ParseError = l.into();
        assert_eq!(p.message, "bad char");
        assert_eq!(p.span.start, 5);
    }
}
