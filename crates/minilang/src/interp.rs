//! A concrete interpreter with dynamic taint and bounds tracking.
//!
//! §5.3 of the paper: *"One potential improvement is to collect dynamic
//! traces; dynamic properties of a program may further yield additional
//! insights or accuracy."* This module is that improvement: it executes a
//! function with synthetic attacker-controlled inputs and records an
//! [`ExecutionTrace`] — statement/branch coverage, loop behaviour, dynamic
//! taint reaching dangerous sinks, and out-of-bounds writes observed at
//! runtime (events static analysis can only approximate).
//!
//! The interpreter is deliberately defensive: fuel-bounded, recursion-
//! bounded, and total — malformed programs produce truncated traces, never
//! panics.

use crate::ast::*;
use crate::intrinsics::Intrinsic;
use std::collections::{BTreeSet, HashMap};

/// A runtime value, carrying a dynamic taint bit.
#[derive(Debug, Clone, PartialEq)]
pub struct TValue {
    pub value: Value,
    pub tainted: bool,
}

impl TValue {
    pub fn clean(value: Value) -> TValue {
        TValue {
            value,
            tainted: false,
        }
    }

    pub fn tainted(value: Value) -> TValue {
        TValue {
            value,
            tainted: true,
        }
    }

    fn truthy(&self) -> bool {
        match &self.value {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) => true,
            Value::Void => false,
        }
    }
}

/// Concrete values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    /// Fixed-capacity buffer; the length never exceeds the declared
    /// capacity (out-of-bounds writes are recorded and dropped).
    Array(Vec<TValue>),
    Void,
}

impl Value {
    fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Bool(b) => *b as i64,
            Value::Float(v) => *v as i64,
            Value::Str(s) => s.len() as i64,
            _ => 0,
        }
    }

    fn as_str(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            _ => String::new(),
        }
    }
}

/// Interpreter limits and synthetic-input configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Statement budget (shared across calls).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// The attacker-controlled string served by `read_input`/`recv`/…
    pub attacker_string: String,
    /// The attacker-controlled integer served by `read_int`.
    pub attacker_int: i64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            fuel: 50_000,
            max_depth: 32,
            attacker_string: format!("{}%n%s", "A".repeat(96)),
            attacker_int: 1 << 20,
        }
    }
}

/// What one execution observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Statements executed.
    pub statements: u64,
    /// Branches taken (true edge / false edge).
    pub branches_true: u64,
    pub branches_false: u64,
    /// Distinct user functions that ran.
    pub functions_called: BTreeSet<String>,
    /// Largest single-loop iteration count observed.
    pub max_loop_iterations: u64,
    /// Out-of-bounds writes observed (index writes past capacity, or
    /// unbounded copies larger than the destination buffer).
    pub oob_writes: u64,
    /// Dangerous-sink calls that received tainted data at runtime.
    pub tainted_sink_calls: u64,
    /// Reads of never-written locals.
    pub uninitialized_reads: u64,
    /// True when the fuel budget stopped execution.
    pub fuel_exhausted: bool,
    /// The function ran to completion (an explicit or implicit return).
    pub completed: bool,
}

impl ExecutionTrace {
    /// Fraction of branch decisions that went to the true edge — a crude
    /// balance statistic (0.5 ≈ balanced).
    pub fn branch_bias(&self) -> f64 {
        let total = self.branches_true + self.branches_false;
        if total == 0 {
            0.5
        } else {
            self.branches_true as f64 / total as f64
        }
    }
}

/// Outcome of a statement or block.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(TValue),
    /// Fuel exhausted — unwind everything.
    Stop,
}

/// Run `function` of `program` with every parameter set to an
/// attacker-controlled value (the paper's threat model for endpoints).
pub fn run_function(program: &Program, function: &str, config: &InterpConfig) -> ExecutionTrace {
    let mut interp = Interp {
        program,
        config,
        fuel: config.fuel,
        trace: ExecutionTrace::default(),
    };
    let Some(f) = program.find_function(function) else {
        return interp.trace;
    };
    let args: Vec<TValue> = f
        .params
        .iter()
        .map(|p| interp.attacker_value(&p.ty))
        .collect();
    let flow = interp.call(f, args, 0);
    interp.trace.completed = matches!(flow, Flow::Normal | Flow::Return(_));
    interp.trace
}

struct Interp<'a> {
    program: &'a Program,
    config: &'a InterpConfig,
    fuel: u64,
    trace: ExecutionTrace,
}

/// One lexical environment (no closures; flat per-call scope).
type Env = HashMap<String, TValue>;

impl<'a> Interp<'a> {
    fn attacker_value(&self, ty: &Type) -> TValue {
        match ty {
            Type::Int => TValue::tainted(Value::Int(self.config.attacker_int)),
            Type::Float => TValue::tainted(Value::Float(1e9)),
            Type::Bool => TValue::tainted(Value::Bool(true)),
            Type::Str => TValue::tainted(Value::Str(self.config.attacker_string.clone())),
            Type::Array(elem, n) => {
                TValue::tainted(Value::Array(vec![self.attacker_value(elem); (*n).min(64)]))
            }
            Type::Void => TValue::clean(Value::Void),
        }
    }

    fn default_value(&self, ty: &Type) -> TValue {
        match ty {
            Type::Int => TValue::clean(Value::Int(0)),
            Type::Float => TValue::clean(Value::Float(0.0)),
            Type::Bool => TValue::clean(Value::Bool(false)),
            Type::Str => TValue::clean(Value::Str(String::new())),
            Type::Array(elem, n) => {
                TValue::clean(Value::Array(vec![self.default_value(elem); (*n).min(4096)]))
            }
            Type::Void => TValue::clean(Value::Void),
        }
    }

    fn call(&mut self, f: &Function, args: Vec<TValue>, depth: usize) -> Flow {
        if depth >= self.config.max_depth {
            return Flow::Normal; // treat as an opaque no-op call
        }
        self.trace.functions_called.insert(f.name.clone());
        let mut env: Env = Env::new();
        for (param, arg) in f.params.iter().zip(args) {
            env.insert(param.name.clone(), arg);
        }
        // Missing arguments become defaults.
        for param in f.params.iter().skip(env.len()) {
            env.insert(param.name.clone(), self.default_value(&param.ty));
        }
        self.block(&f.body, &mut env, depth)
    }

    fn block(&mut self, block: &Block, env: &mut Env, depth: usize) -> Flow {
        for stmt in &block.stmts {
            match self.stmt(stmt, env, depth) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn burn(&mut self) -> bool {
        if self.fuel == 0 {
            self.trace.fuel_exhausted = true;
            return false;
        }
        self.fuel -= 1;
        self.trace.statements += 1;
        true
    }

    fn stmt(&mut self, stmt: &Stmt, env: &mut Env, depth: usize) -> Flow {
        if !self.burn() {
            return Flow::Stop;
        }
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let value = match init {
                    Some(e) => self.eval(e, env, depth),
                    None => {
                        // Track "declared but never written" via a sentinel:
                        // defaults are fine to read for arrays/strings, but
                        // reading an uninitialized int is recorded lazily in
                        // eval (we mark with Void here for scalars).
                        match ty {
                            Type::Array(..) => self.default_value(ty),
                            _ => TValue::clean(Value::Void),
                        }
                    }
                };
                env.insert(name.clone(), value);
                Flow::Normal
            }
            StmtKind::Assign { target, op, value } => {
                let mut rhs = self.eval(value, env, depth);
                match target {
                    LValue::Var(name, _) => {
                        if let Some(binary) = op {
                            let cur = self.read_var(name, env);
                            rhs = self.binary(*binary, cur, rhs);
                        }
                        env.insert(name.clone(), rhs);
                    }
                    LValue::Index { base, index, .. } => {
                        let idx = self.eval(index, env, depth).value.as_int();
                        if let Some(binary) = op {
                            let cur = self.index_read(base, idx, env);
                            rhs = self.binary(*binary, cur, rhs);
                        }
                        self.index_write(base, idx, rhs, env);
                    }
                }
                Flow::Normal
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval(cond, env, depth).truthy();
                if taken {
                    self.trace.branches_true += 1;
                    self.block(then_branch, env, depth)
                } else {
                    self.trace.branches_false += 1;
                    match else_branch {
                        Some(eb) => self.block(eb, env, depth),
                        None => Flow::Normal,
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let mut iterations: u64 = 0;
                loop {
                    if !self.burn() {
                        return Flow::Stop;
                    }
                    if !self.eval(cond, env, depth).truthy() {
                        self.trace.branches_false += 1;
                        break;
                    }
                    self.trace.branches_true += 1;
                    iterations += 1;
                    match self.block(body, env, depth) {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return other,
                    }
                }
                self.trace.max_loop_iterations = self.trace.max_loop_iterations.max(iterations);
                Flow::Normal
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    match self.stmt(i, env, depth) {
                        Flow::Normal => {}
                        other => return other,
                    }
                }
                let mut iterations: u64 = 0;
                loop {
                    if !self.burn() {
                        return Flow::Stop;
                    }
                    let go = match cond {
                        Some(c) => self.eval(c, env, depth).truthy(),
                        None => true,
                    };
                    if !go {
                        self.trace.branches_false += 1;
                        break;
                    }
                    if cond.is_some() {
                        self.trace.branches_true += 1;
                    }
                    iterations += 1;
                    match self.block(body, env, depth) {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        other => return other,
                    }
                    if let Some(s) = step {
                        match self.stmt(s, env, depth) {
                            Flow::Normal => {}
                            other => return other,
                        }
                    }
                }
                self.trace.max_loop_iterations = self.trace.max_loop_iterations.max(iterations);
                Flow::Normal
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let v = self.eval(scrutinee, env, depth).value.as_int();
                for case in cases {
                    if case.value == v {
                        return match self.block(&case.body, env, depth) {
                            Flow::Break => Flow::Normal,
                            other => other,
                        };
                    }
                }
                match default {
                    Some(d) => match self.block(d, env, depth) {
                        Flow::Break => Flow::Normal,
                        other => other,
                    },
                    None => Flow::Normal,
                }
            }
            StmtKind::Break => Flow::Break,
            StmtKind::Continue => Flow::Continue,
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, env, depth),
                    None => TValue::clean(Value::Void),
                };
                Flow::Return(v)
            }
            StmtKind::Expr(e) => {
                self.eval(e, env, depth);
                Flow::Normal
            }
            StmtKind::Block(b) => self.block(b, env, depth),
        }
    }

    fn read_var(&mut self, name: &str, env: &Env) -> TValue {
        match env.get(name) {
            Some(v) => {
                if v.value == Value::Void {
                    self.trace.uninitialized_reads += 1;
                    TValue::clean(Value::Int(0))
                } else {
                    v.clone()
                }
            }
            // Globals and never-declared names read as clean zero.
            None => TValue::clean(Value::Int(0)),
        }
    }

    fn index_read(&mut self, base: &str, idx: i64, env: &Env) -> TValue {
        match env.get(base).map(|v| &v.value) {
            Some(Value::Array(items)) => {
                if idx >= 0 && (idx as usize) < items.len() {
                    items[idx as usize].clone()
                } else {
                    TValue::clean(Value::Int(0))
                }
            }
            Some(Value::Str(s)) => {
                let tainted = env.get(base).map(|v| v.tainted).unwrap_or(false);
                let ch = s
                    .as_bytes()
                    .get(idx.max(0) as usize)
                    .map(|&b| (b as char).to_string())
                    .unwrap_or_default();
                TValue {
                    value: Value::Str(ch),
                    tainted,
                }
            }
            _ => TValue::clean(Value::Int(0)),
        }
    }

    fn index_write(&mut self, base: &str, idx: i64, value: TValue, env: &mut Env) {
        match env.get_mut(base) {
            Some(TValue {
                value: Value::Array(items),
                tainted,
            }) => {
                if idx >= 0 && (idx as usize) < items.len() {
                    *tainted |= value.tainted;
                    items[idx as usize] = value;
                } else {
                    self.trace.oob_writes += 1;
                }
            }
            _ => {
                // Writing into a non-array (str buffers): treat as an
                // append-at-index; out of declared range is unobservable
                // here, so only negative indices count.
                if idx < 0 {
                    self.trace.oob_writes += 1;
                }
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, lhs: TValue, rhs: TValue) -> TValue {
        let tainted = lhs.tainted || rhs.tainted;
        let value = match op {
            BinaryOp::Add => match (&lhs.value, &rhs.value) {
                (Value::Str(a), b) => Value::Str(format!("{a}{}", b.as_str())),
                (a, Value::Str(b)) => Value::Str(format!("{}{b}", a.as_str())),
                (Value::Float(a), b) => Value::Float(a + b.as_int() as f64),
                (a, Value::Float(b)) => Value::Float(a.as_int() as f64 + b),
                (a, b) => Value::Int(a.as_int().wrapping_add(b.as_int())),
            },
            BinaryOp::Sub => Value::Int(lhs.value.as_int().wrapping_sub(rhs.value.as_int())),
            BinaryOp::Mul => Value::Int(lhs.value.as_int().wrapping_mul(rhs.value.as_int())),
            BinaryOp::Div => {
                let d = rhs.value.as_int();
                Value::Int(if d == 0 {
                    0
                } else {
                    lhs.value.as_int().wrapping_div(d)
                })
            }
            BinaryOp::Rem => {
                let d = rhs.value.as_int();
                Value::Int(if d == 0 {
                    0
                } else {
                    lhs.value.as_int().wrapping_rem(d)
                })
            }
            BinaryOp::And => Value::Bool(lhs.truthy() && rhs.truthy()),
            BinaryOp::Or => Value::Bool(lhs.truthy() || rhs.truthy()),
            BinaryOp::BitAnd => Value::Int(lhs.value.as_int() & rhs.value.as_int()),
            BinaryOp::BitOr => Value::Int(lhs.value.as_int() | rhs.value.as_int()),
            BinaryOp::BitXor => Value::Int(lhs.value.as_int() ^ rhs.value.as_int()),
            BinaryOp::Shl => Value::Int(
                lhs.value
                    .as_int()
                    .wrapping_shl(rhs.value.as_int() as u32 & 63),
            ),
            BinaryOp::Shr => Value::Int(
                lhs.value
                    .as_int()
                    .wrapping_shr(rhs.value.as_int() as u32 & 63),
            ),
            BinaryOp::Eq => Value::Bool(compare(&lhs.value, &rhs.value) == 0),
            BinaryOp::Ne => Value::Bool(compare(&lhs.value, &rhs.value) != 0),
            BinaryOp::Lt => Value::Bool(compare(&lhs.value, &rhs.value) < 0),
            BinaryOp::Le => Value::Bool(compare(&lhs.value, &rhs.value) <= 0),
            BinaryOp::Gt => Value::Bool(compare(&lhs.value, &rhs.value) > 0),
            BinaryOp::Ge => Value::Bool(compare(&lhs.value, &rhs.value) >= 0),
        };
        TValue { value, tainted }
    }

    fn eval(&mut self, expr: &Expr, env: &mut Env, depth: usize) -> TValue {
        match &expr.kind {
            ExprKind::Int(v) => TValue::clean(Value::Int(*v)),
            ExprKind::Float(v) => TValue::clean(Value::Float(*v)),
            ExprKind::Str(s) => TValue::clean(Value::Str(s.clone())),
            ExprKind::Bool(b) => TValue::clean(Value::Bool(*b)),
            ExprKind::Var(name) => self.read_var(name, env),
            ExprKind::Index { base, index } => {
                let idx = self.eval(index, env, depth).value.as_int();
                if let ExprKind::Var(name) = &base.kind {
                    self.index_read(name, idx, env)
                } else {
                    TValue::clean(Value::Int(0))
                }
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand, env, depth);
                let value = match op {
                    UnaryOp::Neg => Value::Int(v.value.as_int().wrapping_neg()),
                    UnaryOp::Not => Value::Bool(!v.truthy()),
                };
                TValue {
                    value,
                    tainted: v.tainted,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, env, depth);
                // Short-circuit without evaluating the right side.
                match op {
                    BinaryOp::And if !l.truthy() => {
                        return TValue {
                            value: Value::Bool(false),
                            tainted: l.tainted,
                        }
                    }
                    BinaryOp::Or if l.truthy() => {
                        return TValue {
                            value: Value::Bool(true),
                            tainted: l.tainted,
                        }
                    }
                    _ => {}
                }
                let r = self.eval(rhs, env, depth);
                self.binary(*op, l, r)
            }
            ExprKind::Call { callee, args } => {
                let arg_values: Vec<TValue> =
                    args.iter().map(|a| self.eval(a, env, depth)).collect();
                if let Some(intrinsic) = Intrinsic::from_name(callee) {
                    return self.intrinsic(intrinsic, args, arg_values, env);
                }
                if let Some(f) = self.program.find_function(callee) {
                    return match self.call(f, arg_values, depth + 1) {
                        Flow::Return(v) => v,
                        _ => TValue::clean(Value::Void),
                    };
                }
                // Unresolved extern: clean zero.
                TValue::clean(Value::Int(0))
            }
        }
    }

    fn intrinsic(
        &mut self,
        intrinsic: Intrinsic,
        arg_exprs: &[Expr],
        args: Vec<TValue>,
        env: &mut Env,
    ) -> TValue {
        use Intrinsic::*;
        let any_tainted = args.iter().any(|a| a.tainted);
        if intrinsic.is_dangerous_sink() && any_tainted {
            self.trace.tainted_sink_calls += 1;
        }
        match intrinsic {
            ReadInput | Recv | Getenv | ReadFile => {
                TValue::tainted(Value::Str(self.config.attacker_string.clone()))
            }
            ReadInt => TValue::tainted(Value::Int(self.config.attacker_int)),
            Atoi => {
                let s = args.first().map(|a| a.value.as_str()).unwrap_or_default();
                let parsed = s
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap_or(self.config.attacker_int);
                TValue {
                    value: Value::Int(parsed),
                    tainted: any_tainted,
                }
            }
            Strlen => {
                let n = args.first().map(|a| a.value.as_str().len()).unwrap_or(0);
                TValue {
                    value: Value::Int(n as i64),
                    tainted: any_tainted,
                }
            }
            Hash => TValue {
                value: Value::Int(
                    args.first()
                        .map(|a| a.value.as_str().len() as i64 * 31)
                        .unwrap_or(0),
                ),
                tainted: any_tainted,
            },
            Strcpy | Strcat | Memcpy | Sprintf => {
                // Copy into the destination variable; detect overflow of the
                // declared buffer capacity when it is still known (buffers
                // decay to plain strings after the first copy, after which
                // the attacker-string-length heuristic applies).
                let payload = args
                    .get(1)
                    .cloned()
                    .unwrap_or(TValue::clean(Value::Str(String::new())));
                if let Some(ExprKind::Var(dst)) = arg_exprs.first().map(|e| &e.kind) {
                    let capacity = match env.get(dst.as_str()).map(|v| &v.value) {
                        Some(Value::Array(items)) => Some(items.len()),
                        _ => None,
                    };
                    let overflowed = match capacity {
                        Some(cap) => payload.value.as_str().len() > cap,
                        None => payload.value.as_str().len() > 64,
                    };
                    if overflowed {
                        self.trace.oob_writes += 1;
                    }
                    let existing = env.get(dst.as_str()).map(|v| v.value.clone());
                    let new_value = match (intrinsic, existing) {
                        (Strcat, Some(Value::Str(old))) => {
                            Value::Str(format!("{old}{}", payload.value.as_str()))
                        }
                        _ => Value::Str(payload.value.as_str()),
                    };
                    env.insert(
                        dst.clone(),
                        TValue {
                            value: new_value,
                            tainted: payload.tainted,
                        },
                    );
                }
                TValue::clean(Value::Void)
            }
            Strncpy => {
                let payload = args
                    .get(1)
                    .cloned()
                    .unwrap_or(TValue::clean(Value::Str(String::new())));
                let n = args
                    .get(2)
                    .map(|a| a.value.as_int().max(0) as usize)
                    .unwrap_or(0);
                if let Some(ExprKind::Var(dst)) = arg_exprs.first().map(|e| &e.kind) {
                    let truncated: String = payload.value.as_str().chars().take(n).collect();
                    env.insert(
                        dst.clone(),
                        TValue {
                            value: Value::Str(truncated),
                            tainted: payload.tainted,
                        },
                    );
                }
                TValue::clean(Value::Void)
            }
            Alloc => {
                let n = args.first().map(|a| a.value.as_int()).unwrap_or(0);
                TValue::clean(Value::Str(" ".repeat(n.clamp(0, 4096) as usize)))
            }
            RandInt => {
                // Deterministic "random": keeps traces reproducible.
                let n = args.first().map(|a| a.value.as_int()).unwrap_or(1).max(1);
                TValue::clean(Value::Int(n / 2))
            }
            AuthCheck => TValue::clean(Value::Bool(false)),
            Access => TValue::clean(Value::Bool(true)),
            Open => TValue::clean(Value::Int(3)),
            Printf | Send | WriteFile | Exec | System | LogMsg | Free => TValue::clean(Value::Void),
        }
    }
}

fn compare(a: &Value, b: &Value) -> i32 {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y) as i32,
        (Value::Float(x), y) => {
            let y = y.as_int() as f64;
            if *x < y {
                -1
            } else if *x > y {
                1
            } else {
                0
            }
        }
        (x, Value::Float(y)) => -compare(&Value::Float(*y), x),
        (x, y) => x.as_int().cmp(&y.as_int()) as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, Dialect};

    fn trace(src: &str, function: &str) -> ExecutionTrace {
        let p = parse_program("t", Dialect::C, &[("m.c".into(), src.into())]).unwrap();
        run_function(&p, function, &InterpConfig::default())
    }

    #[test]
    fn straight_line_completes() {
        let t = trace("fn f() { let x: int = 1; x = x + 2; }", "f");
        assert!(t.completed);
        assert_eq!(t.statements, 2);
        assert!(!t.fuel_exhausted);
        assert!(t.functions_called.contains("f"));
    }

    #[test]
    fn branches_counted_by_direction() {
        let t = trace(
            "fn f() { let x: int = 5; if x > 3 { x = 1; } if x > 3 { x = 2; } }",
            "f",
        );
        assert_eq!(t.branches_true, 1);
        assert_eq!(t.branches_false, 1);
    }

    #[test]
    fn loops_count_iterations() {
        let t = trace("fn f() { let i: int = 0; while i < 7 { i = i + 1; } }", "f");
        assert_eq!(t.max_loop_iterations, 7);
        assert!(t.completed);
    }

    #[test]
    fn for_loop_with_break() {
        let t = trace(
            "fn f() { for i = 0; i < 100; i += 1 { if i == 3 { break; } } }",
            "f",
        );
        assert_eq!(t.max_loop_iterations, 4);
    }

    #[test]
    fn infinite_loop_exhausts_fuel_not_time() {
        let t = trace("fn f() { while true { log_msg(\"spin\"); } }", "f");
        assert!(t.fuel_exhausted);
        assert!(!t.completed);
    }

    #[test]
    fn tainted_input_reaching_sink_is_recorded() {
        let t = trace("fn f() { let s: str = read_input(); system(s); }", "f");
        assert_eq!(t.tainted_sink_calls, 1);
    }

    #[test]
    fn attacker_parameters_are_tainted() {
        let t = trace("fn handle(req: str) { exec(req); }", "handle");
        assert_eq!(t.tainted_sink_calls, 1);
    }

    #[test]
    fn sanitized_value_is_clean_at_sink() {
        let t = trace(
            "fn f() { let s: str = read_input(); s = \"fixed\"; system(s); }",
            "f",
        );
        assert_eq!(t.tainted_sink_calls, 0);
    }

    #[test]
    fn dynamic_oob_write_detected() {
        let t = trace("fn f(n: int) { let buf: int[8]; buf[n] = 1; }", "f");
        // n is the attacker int (1<<20) — way past capacity.
        assert_eq!(t.oob_writes, 1);
    }

    #[test]
    fn in_bounds_write_is_silent() {
        let t = trace("fn f() { let buf: int[8]; buf[3] = 1; }", "f");
        assert_eq!(t.oob_writes, 0);
    }

    #[test]
    fn guarded_write_is_safe_at_runtime() {
        let t = trace(
            "fn f(n: int) { let buf: int[8]; if n >= 0 && n < 8 { buf[n] = 1; } }",
            "f",
        );
        assert_eq!(t.oob_writes, 0);
        assert_eq!(t.branches_false, 1); // the guard rejected the attacker value
    }

    #[test]
    fn strcpy_overflow_detected_dynamically() {
        let t = trace(
            "fn handle(req: str) { let b: str[16]; strcpy(b, req); }",
            "handle",
        );
        // The synthetic attacker string is longer than any small buffer.
        assert!(t.oob_writes >= 1);
    }

    #[test]
    fn strncpy_is_bounded() {
        let t = trace(
            "fn handle(req: str) { let b: str[16]; strncpy(b, req, 15); log_msg(b); }",
            "handle",
        );
        assert_eq!(t.oob_writes, 0);
    }

    #[test]
    fn user_calls_recurse_and_record_coverage() {
        let t = trace(
            "fn a() { b(); }
             fn b() { c(); }
             fn c() { log_msg(\"leaf\"); }",
            "a",
        );
        assert_eq!(t.functions_called.len(), 3);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        let t = trace("fn f(n: int) -> int { return f(n - 1); }", "f");
        assert!(t.completed, "depth bound must terminate recursion");
    }

    #[test]
    fn uninitialized_scalar_read_recorded() {
        let t = trace("fn f() -> int { let x: int; return x + 1; }", "f");
        assert_eq!(t.uninitialized_reads, 1);
    }

    #[test]
    fn switch_dispatch() {
        let t = trace(
            "fn f() { let x: int = 2; switch x { case 1: { log_msg(\"a\"); } case 2: { log_msg(\"b\"); } default: { } } }",
            "f",
        );
        assert!(t.completed);
    }

    #[test]
    fn atoi_propagates_dynamic_taint() {
        let t = trace(
            "fn f() { let n: int = atoi(read_input()); printf(\"%d\", n); }",
            "f",
        );
        assert_eq!(t.tainted_sink_calls, 1);
    }

    #[test]
    fn branch_bias_statistic() {
        let t = trace("fn f() { let i: int = 0; while i < 3 { i += 1; } }", "f");
        // 3 true + 1 false.
        assert!((t.branch_bias() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn missing_function_returns_empty_trace() {
        let t = trace("fn f() { }", "ghost");
        assert_eq!(t.statements, 0);
        assert!(!t.completed);
    }

    #[test]
    fn division_by_zero_is_total() {
        let t = trace(
            "fn f(n: int) { let x: int = 10 / (n - n); let y: int = 10 % (n - n); }",
            "f",
        );
        assert!(t.completed);
    }
}
