//! I/O and library intrinsics.
//!
//! MiniLang programs call a fixed set of intrinsic functions modelled on the
//! C standard library and POSIX calls that dominate real CVE root causes.
//! The taint analysis, the attack-surface analysis (RASQ), and the §4.2
//! bug-finding tools all key off these: `read_input`/`recv`/`getenv` are
//! taint *sources*, `strcpy`/`sprintf`/`exec`/`system` are dangerous *sinks*.

use std::fmt;

/// The fixed set of intrinsic functions known to every analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `read_input() -> str` — read untrusted data from stdin.
    ReadInput,
    /// `read_int() -> int` — read an untrusted integer from stdin.
    ReadInt,
    /// `recv(chan: int) -> str` — read untrusted data from a network channel.
    Recv,
    /// `send(chan: int, data: str)` — write to a network channel.
    Send,
    /// `getenv(name: str) -> str` — read an environment variable (untrusted).
    Getenv,
    /// `read_file(path: str) -> str` — read a file.
    ReadFile,
    /// `write_file(path: str, data: str)` — write a file.
    WriteFile,
    /// `open(path: str) -> int` — open a file descriptor.
    Open,
    /// `access(path: str) -> bool` — check file permissions (TOCTOU pair of `open`).
    Access,
    /// `exec(cmd: str)` — execute a program (command-injection sink).
    Exec,
    /// `system(cmd: str)` — shell out (command-injection sink).
    System,
    /// `printf(fmt: str, ...)` — formatted output (format-string sink).
    Printf,
    /// `sprintf(dst: str, fmt: str, ...)` — formatted copy into a buffer.
    Sprintf,
    /// `strcpy(dst: str, src: str)` — unchecked string copy (CWE-121 sink).
    Strcpy,
    /// `strncpy(dst: str, src: str, n: int)` — bounded string copy.
    Strncpy,
    /// `memcpy(dst: str, src: str, n: int)` — unchecked memory copy.
    Memcpy,
    /// `strlen(s: str) -> int` — string length.
    Strlen,
    /// `strcat(dst: str, src: str)` — unchecked concatenation.
    Strcat,
    /// `atoi(s: str) -> int` — parse integer (propagates taint).
    Atoi,
    /// `alloc(n: int) -> str` — allocate a buffer of `n` bytes.
    Alloc,
    /// `free(p: str)` — release a buffer.
    Free,
    /// `hash(s: str) -> int` — pure helper.
    Hash,
    /// `log_msg(s: str)` — diagnostic logging (benign sink).
    LogMsg,
    /// `rand_int(n: int) -> int` — pseudo-random value.
    RandInt,
    /// `auth_check(user: str, pass: str) -> bool` — credential comparison
    /// (hardcoded-credential checker watches its literal arguments).
    AuthCheck,
}

impl Intrinsic {
    /// All intrinsics.
    pub const ALL: [Intrinsic; 25] = [
        Intrinsic::ReadInput,
        Intrinsic::ReadInt,
        Intrinsic::Recv,
        Intrinsic::Send,
        Intrinsic::Getenv,
        Intrinsic::ReadFile,
        Intrinsic::WriteFile,
        Intrinsic::Open,
        Intrinsic::Access,
        Intrinsic::Exec,
        Intrinsic::System,
        Intrinsic::Printf,
        Intrinsic::Sprintf,
        Intrinsic::Strcpy,
        Intrinsic::Strncpy,
        Intrinsic::Memcpy,
        Intrinsic::Strlen,
        Intrinsic::Strcat,
        Intrinsic::Atoi,
        Intrinsic::Alloc,
        Intrinsic::Free,
        Intrinsic::Hash,
        Intrinsic::LogMsg,
        Intrinsic::RandInt,
        Intrinsic::AuthCheck,
    ];

    /// Resolve a callee name to an intrinsic, if it is one.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Intrinsic::ALL.iter().copied().find(|i| i.name() == name)
    }

    /// The spelling used in source code.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::ReadInput => "read_input",
            Intrinsic::ReadInt => "read_int",
            Intrinsic::Recv => "recv",
            Intrinsic::Send => "send",
            Intrinsic::Getenv => "getenv",
            Intrinsic::ReadFile => "read_file",
            Intrinsic::WriteFile => "write_file",
            Intrinsic::Open => "open",
            Intrinsic::Access => "access",
            Intrinsic::Exec => "exec",
            Intrinsic::System => "system",
            Intrinsic::Printf => "printf",
            Intrinsic::Sprintf => "sprintf",
            Intrinsic::Strcpy => "strcpy",
            Intrinsic::Strncpy => "strncpy",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Strlen => "strlen",
            Intrinsic::Strcat => "strcat",
            Intrinsic::Atoi => "atoi",
            Intrinsic::Alloc => "alloc",
            Intrinsic::Free => "free",
            Intrinsic::Hash => "hash",
            Intrinsic::LogMsg => "log_msg",
            Intrinsic::RandInt => "rand_int",
            Intrinsic::AuthCheck => "auth_check",
        }
    }

    /// True for intrinsics that introduce attacker-controlled data.
    pub fn is_taint_source(self) -> bool {
        matches!(
            self,
            Intrinsic::ReadInput
                | Intrinsic::ReadInt
                | Intrinsic::Recv
                | Intrinsic::Getenv
                | Intrinsic::ReadFile
        )
    }

    /// True for intrinsics where tainted data is dangerous.
    pub fn is_dangerous_sink(self) -> bool {
        matches!(
            self,
            Intrinsic::Exec
                | Intrinsic::System
                | Intrinsic::Sprintf
                | Intrinsic::Strcpy
                | Intrinsic::Strcat
                | Intrinsic::Memcpy
                | Intrinsic::Printf
        )
    }

    /// True for intrinsics that propagate taint from arguments to result.
    pub fn propagates_taint(self) -> bool {
        matches!(self, Intrinsic::Atoi | Intrinsic::Hash | Intrinsic::Strlen)
    }

    /// True for intrinsics that perform external I/O — these count toward
    /// the RASQ attack-surface channel enumeration.
    pub fn is_io_channel(self) -> bool {
        matches!(
            self,
            Intrinsic::ReadInput
                | Intrinsic::ReadInt
                | Intrinsic::Recv
                | Intrinsic::Send
                | Intrinsic::ReadFile
                | Intrinsic::WriteFile
                | Intrinsic::Open
                | Intrinsic::Access
                | Intrinsic::Exec
                | Intrinsic::System
                | Intrinsic::Getenv
        )
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trips() {
        for i in Intrinsic::ALL {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
    }

    #[test]
    fn unknown_names_are_user_functions() {
        assert_eq!(Intrinsic::from_name("handle_request"), None);
        assert_eq!(Intrinsic::from_name(""), None);
    }

    #[test]
    fn sources_and_sinks_are_disjoint() {
        for i in Intrinsic::ALL {
            assert!(
                !(i.is_taint_source() && i.is_dangerous_sink()),
                "{i} is both source and sink"
            );
        }
    }

    #[test]
    fn classic_cwe_sinks_are_flagged() {
        assert!(Intrinsic::Strcpy.is_dangerous_sink());
        assert!(Intrinsic::System.is_dangerous_sink());
        assert!(Intrinsic::Printf.is_dangerous_sink());
        assert!(!Intrinsic::Strncpy.is_dangerous_sink());
        assert!(!Intrinsic::LogMsg.is_dangerous_sink());
    }

    #[test]
    fn io_channels_cover_sources() {
        for i in Intrinsic::ALL {
            if i.is_taint_source() {
                assert!(
                    i.is_io_channel(),
                    "{i} reads external data but is not a channel"
                );
            }
        }
    }
}
