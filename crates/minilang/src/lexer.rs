//! Hand-written lexer.
//!
//! The lexer is dialect-aware only for comments: `//` + `/* */` in the
//! C-family dialects, `#` + `"""..."""` in the Python dialect. Comments are
//! skipped (with a count kept for sanity checks); all other tokens are shared
//! across dialects.

use crate::dialect::Dialect;
use crate::error::LexError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Streaming tokenizer over a module's source text.
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    col: u32,
    dialect: Dialect,
    /// Number of comments skipped (line + block), for diagnostics.
    pub comments_skipped: usize,
}

impl<'src> Lexer<'src> {
    /// Create a lexer for `src` in the given dialect.
    pub fn new(src: &'src str, dialect: Dialect) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            dialect,
            comments_skipped: 0,
        }
    }

    /// Tokenize the entire input, ending with a single [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        // Byte-level comparison: `self.pos` may sit mid-way through a
        // multi-byte character while skipping comment bodies.
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump_str(&mut self, s: &str) {
        for _ in 0..s.len() {
            self.bump();
        }
    }

    fn here(&self) -> Span {
        Span::new(self.pos, self.pos, self.line, self.col)
    }

    /// Skip whitespace and comments; returns an error on an unterminated
    /// block comment.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                _ => {
                    let line_intro = self.dialect.line_comment();
                    let (block_open, block_close) = self.dialect.block_comment();
                    if self.starts_with(line_intro) {
                        self.comments_skipped += 1;
                        while let Some(b) = self.peek() {
                            if b == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                        continue;
                    }
                    if self.starts_with(block_open) {
                        let open_span = self.here();
                        self.comments_skipped += 1;
                        self.bump_str(block_open);
                        loop {
                            if self.starts_with(block_close) {
                                self.bump_str(block_close);
                                break;
                            }
                            if self.bump().is_none() {
                                return Err(LexError::new("unterminated block comment", open_span));
                            }
                        }
                        continue;
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let span_from = |lexer: &Self| Span::new(start, lexer.pos, line, col);

        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, span_from(self)));
        };

        // MiniLang source is ASCII outside comments; reject other bytes
        // up front so slicing below never straddles a char boundary.
        if !b.is_ascii() {
            let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
            for _ in 0..ch.len_utf8() {
                self.bump();
            }
            return Err(LexError::new(
                format!("unexpected character `{ch}`"),
                span_from(self),
            ));
        }

        // Identifiers and keywords.
        if b.is_ascii_alphabetic() || b == b'_' {
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            let kind =
                TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
            return Ok(Token::new(kind, span_from(self)));
        }

        // Numbers: integer or float (single dot, digits either side).
        if b.is_ascii_digit() {
            let mut saw_dot = false;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    self.bump();
                } else if c == b'.' && !saw_dot && self.peek2().is_some_and(|d| d.is_ascii_digit())
                {
                    saw_dot = true;
                    self.bump();
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            let kind = if saw_dot {
                TokenKind::Float(text.parse().map_err(|_| {
                    LexError::new(format!("invalid float literal `{text}`"), span_from(self))
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| {
                    LexError::new(
                        format!("integer literal `{text}` out of range"),
                        span_from(self),
                    )
                })?)
            };
            return Ok(Token::new(kind, span_from(self)));
        }

        // String literals with simple escapes.
        if b == b'"' {
            self.bump();
            let mut value = String::new();
            loop {
                match self.bump() {
                    None | Some(b'\n') => {
                        return Err(LexError::new(
                            "unterminated string literal",
                            span_from(self),
                        ))
                    }
                    Some(b'"') => break,
                    Some(b'\\') => match self.bump() {
                        Some(b'n') => value.push('\n'),
                        Some(b't') => value.push('\t'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'%') => value.push('%'),
                        other => {
                            return Err(LexError::new(
                                format!(
                                    "unknown escape `\\{}`",
                                    other.map(|c| c as char).unwrap_or('?')
                                ),
                                span_from(self),
                            ))
                        }
                    },
                    Some(c) if c.is_ascii() => value.push(c as char),
                    Some(_) => {
                        return Err(LexError::new(
                            "non-ASCII character in string literal",
                            span_from(self),
                        ))
                    }
                }
            }
            return Ok(Token::new(TokenKind::Str(value), span_from(self)));
        }

        // Operators and punctuation (longest match first).
        let end = (self.pos + 2).min(self.src.len());
        let two: &str = self.src.get(self.pos..end).unwrap_or("");
        let two_kind = match two {
            "->" => Some(TokenKind::Arrow),
            "==" => Some(TokenKind::EqEq),
            "!=" => Some(TokenKind::NotEq),
            "<=" => Some(TokenKind::Le),
            ">=" => Some(TokenKind::Ge),
            "&&" => Some(TokenKind::AndAnd),
            "||" => Some(TokenKind::OrOr),
            "<<" => Some(TokenKind::Shl),
            ">>" => Some(TokenKind::Shr),
            "+=" => Some(TokenKind::PlusEq),
            "-=" => Some(TokenKind::MinusEq),
            "*=" => Some(TokenKind::StarEq),
            "/=" => Some(TokenKind::SlashEq),
            _ => None,
        };
        if let Some(kind) = two_kind {
            self.bump();
            self.bump();
            return Ok(Token::new(kind, span_from(self)));
        }

        let one_kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'@' => TokenKind::At,
            b'=' => TokenKind::Assign,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'!' => TokenKind::Bang,
            b'&' => TokenKind::Amp,
            b'|' => TokenKind::Pipe,
            b'^' => TokenKind::Caret,
            b'<' => TokenKind::Lt,
            b'>' => TokenKind::Gt,
            other => {
                return Err(LexError::new(
                    format!("unexpected character `{}`", other as char),
                    span_from(self),
                ))
            }
        };
        self.bump();
        Ok(Token::new(one_kind, span_from(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str, dialect: Dialect) -> Vec<TokenKind> {
        Lexer::new(src, dialect)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_function_header() {
        let ks = kinds("fn f(x: int) -> int {", Dialect::C);
        assert_eq!(
            ks,
            vec![
                TokenKind::KwFn,
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::KwInt,
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::KwInt,
                TokenKind::LBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_c_comments() {
        let ks = kinds("a // comment\n/* block\nspanning */ b", Dialect::C);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_python_comments() {
        let ks = kinds("a # comment\n\"\"\" docstring \"\"\" b", Dialect::Python);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn hash_is_error_in_c_dialect() {
        let err = Lexer::new("#", Dialect::C).tokenize().unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn numbers_int_and_float() {
        let ks = kinds("42 3.25 7", Dialect::C);
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_without_following_digit_is_not_float() {
        // `1.` should lex as Int(1) then an error on the bare dot.
        let err = Lexer::new("1.", Dialect::C).tokenize().unwrap_err();
        assert!(err.message.contains("unexpected character `.`"));
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#""a\n\t\"\\%d""#, Dialect::C);
        assert_eq!(ks[0], TokenKind::Str("a\n\t\"\\%d".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = Lexer::new("\"abc", Dialect::C).tokenize().unwrap_err();
        assert!(err.message.contains("unterminated string"));
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        let err = Lexer::new("/* never closed", Dialect::C)
            .tokenize()
            .unwrap_err();
        assert!(err.message.contains("unterminated block comment"));
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        let ks = kinds("<= < << =", Dialect::C);
        assert_eq!(
            ks,
            vec![
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Shl,
                TokenKind::Assign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = Lexer::new("a\n  b", Dialect::C).tokenize().unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn counts_skipped_comments() {
        let mut lx = Lexer::new("// one\n/* two */ x", Dialect::C);
        let mut toks = Vec::new();
        loop {
            let t = lx.next_token().unwrap();
            let eof = t.kind == TokenKind::Eof;
            toks.push(t);
            if eof {
                break;
            }
        }
        assert_eq!(lx.comments_skipped, 2);
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds("", Dialect::Java), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t ", Dialect::Java), vec![TokenKind::Eof]);
    }
}
