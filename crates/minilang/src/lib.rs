//! MiniLang — a small imperative language used as the analysis substrate for
//! the Clairvoyant security-metric framework.
//!
//! The HotOS '17 paper runs its "testbed" (static analyses collecting code
//! properties) over real open-source applications written in C, C++, Python
//! and Java. Offline we cannot ship that corpus, so the `corpus` crate
//! synthesizes applications in MiniLang — a language deliberately rich enough
//! that every analysis the paper cites has real work to do:
//!
//! * functions, globals, locals, parameters;
//! * integers, floats, booleans, strings, fixed-size buffers (`int[64]`);
//! * `if`/`else`, `while`, `for`, `switch`, `break`/`continue`/`return`;
//! * calls (user functions and a fixed set of I/O intrinsics such as
//!   [`Intrinsic::ReadInput`], `recv`, `exec`, `printf`, `strcpy`);
//! * security annotations (`@endpoint(network)`, `@priv(root)`,
//!   `@untrusted`) consumed by the attack-surface analysis.
//!
//! Surface *dialects* ([`Dialect`]) change comment syntax and a few token
//! spellings so the cloc-equivalent line counter and the language-prior logic
//! in the paper's Figure 2 have genuine per-language behaviour to measure.
//!
//! # Quick example
//!
//! ```
//! use minilang::{parse_module, Dialect};
//!
//! let src = r#"
//!     // handle one request
//!     @endpoint(network)
//!     fn handle(req: str) -> int {
//!         let buf: str[64];
//!         strcpy(buf, req);      // unchecked copy: CWE-121 pattern
//!         return strlen(buf);
//!     }
//! "#;
//! let module = parse_module("server.ml", src, Dialect::C).unwrap();
//! assert_eq!(module.functions.len(), 1);
//! assert!(module.functions[0].annotations.iter().any(|a| a.is_endpoint()));
//! ```

pub mod ast;
pub mod dialect;
pub mod error;
pub mod interp;
pub mod intrinsics;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{
    Annotation, BinaryOp, Block, Expr, ExprKind, Function, Global, Module, Param, Program, Stmt,
    StmtKind, Type, UnaryOp,
};
pub use dialect::Dialect;
pub use error::{LexError, ParseError};
pub use interp::{run_function, ExecutionTrace, InterpConfig};
pub use intrinsics::Intrinsic;
pub use lexer::Lexer;
pub use parser::{parse_module, parse_program, Parser};
pub use printer::print_module;
pub use span::Span;
pub use token::{Token, TokenKind};
