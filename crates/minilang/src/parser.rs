//! Recursive-descent parser.
//!
//! Grammar (informal):
//!
//! ```text
//! module     := item*
//! item       := annotation* "fn" ident "(" params ")" ("->" type)? block
//!             | "global" ident ":" type ("=" expr)? ";"
//! annotation := "@" ident ("(" ident ")")?
//! block      := "{" stmt* "}"
//! stmt       := "let" ident ":" type ("=" expr)? ";"
//!             | "if" expr block ("else" (block | if-stmt))?
//!             | "while" expr block
//!             | "for" simple? ";" expr? ";" simple? block
//!             | "switch" expr "{" ("case" int ":" block)* ("default" ":" block)? "}"
//!             | "break" ";" | "continue" ";" | "return" expr? ";"
//!             | block
//!             | simple ";"
//! simple     := lvalue ("=" | "+=" | "-=" | "*=" | "/=") expr | expr
//! expr       := precedence-climbing over || && | ^ & == != < <= > >= << >> + - * / %
//! unary      := ("-" | "!") unary | postfix
//! postfix    := primary ("[" expr "]")*
//! primary    := literal | ident ("(" args ")")? | "(" expr ")"
//! ```

use crate::ast::*;
use crate::dialect::Dialect;
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse one source file into a [`Module`].
pub fn parse_module(path: &str, source: &str, dialect: Dialect) -> Result<Module, ParseError> {
    let tokens = Lexer::new(source, dialect).tokenize()?;
    let mut parser = Parser::new(tokens);
    let (globals, functions) = parser.module_items()?;
    Ok(Module {
        path: path.to_string(),
        dialect,
        source: source.to_string(),
        globals,
        functions,
    })
}

/// Parse a set of `(path, source)` files into a [`Program`].
pub fn parse_program(
    name: &str,
    dialect: Dialect,
    files: &[(String, String)],
) -> Result<Program, ParseError> {
    let mut program = Program::new(name, dialect);
    for (path, source) in files {
        program.modules.push(parse_module(path, source, dialect)?);
    }
    Ok(program)
}

/// Token-stream parser. Construct via [`Parser::new`] and call
/// [`Parser::module_items`], or use the [`parse_module`] convenience wrapper.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.check(&kind) {
            Ok(self.advance())
        } else {
            Err(ParseError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.peek().span,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok((name, span))
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }

    /// Parse all top-level items.
    pub fn module_items(&mut self) -> Result<(Vec<Global>, Vec<Function>), ParseError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while !self.check(&TokenKind::Eof) {
            if self.check(&TokenKind::KwGlobal) {
                globals.push(self.global()?);
            } else {
                functions.push(self.function()?);
            }
        }
        Ok((globals, functions))
    }

    fn global(&mut self) -> Result<Global, ParseError> {
        let start = self.expect(TokenKind::KwGlobal)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.ty()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Global {
            name,
            ty,
            init,
            span: start.to(end),
        })
    }

    fn annotations(&mut self) -> Result<Vec<Annotation>, ParseError> {
        let mut out = Vec::new();
        while self.eat(&TokenKind::At) {
            let (name, span) = self.expect_ident()?;
            let arg = if self.eat(&TokenKind::LParen) {
                let (a, _) = self.expect_ident()?;
                self.expect(TokenKind::RParen)?;
                Some(a)
            } else {
                None
            };
            let ann = match (name.as_str(), arg.as_deref()) {
                ("endpoint", Some(kind)) => ChannelKind::from_name(kind)
                    .map(Annotation::Endpoint)
                    .ok_or_else(|| {
                        ParseError::new(format!("unknown endpoint kind `{kind}`"), span)
                    })?,
                ("priv", Some(level)) => PrivLevel::from_name(level)
                    .map(Annotation::Priv)
                    .ok_or_else(|| {
                        ParseError::new(format!("unknown privilege level `{level}`"), span)
                    })?,
                ("untrusted", None) => Annotation::Untrusted,
                ("deprecated", None) => Annotation::Deprecated,
                _ => {
                    return Err(ParseError::new(
                        format!("unknown annotation `@{name}`"),
                        span,
                    ));
                }
            };
            out.push(ann);
        }
        Ok(out)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let annotations = self.annotations()?;
        let start = self.expect(TokenKind::KwFn)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                let (pname, pspan) = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) {
            self.ty()?
        } else {
            Type::Void
        };
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(Function {
            name,
            params,
            ret,
            body,
            annotations,
            span,
        })
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let base = match self.peek_kind() {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwFloat => Type::Float,
            TokenKind::KwBool => Type::Bool,
            TokenKind::KwStr => Type::Str,
            TokenKind::KwVoid => Type::Void,
            other => {
                return Err(ParseError::new(
                    format!("expected type, found {}", other.describe()),
                    self.peek().span,
                ))
            }
        };
        self.advance();
        if self.eat(&TokenKind::LBracket) {
            let size = match self.peek_kind() {
                TokenKind::Int(n) if *n > 0 => *n as usize,
                other => {
                    return Err(ParseError::new(
                        format!("expected positive array size, found {}", other.describe()),
                        self.peek().span,
                    ))
                }
            };
            self.advance();
            self.expect(TokenKind::RBracket)?;
            Ok(Type::Array(Box::new(base), size))
        } else {
            Ok(base)
        }
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            if self.check(&TokenKind::Eof) {
                return Err(ParseError::new("unterminated block", start));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Block::new(stmts, start.to(end)))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::KwLet => {
                self.advance();
                let (name, _) = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Let { name, ty, init }, start.to(end)))
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt::new(StmtKind::While { cond, body }, span))
            }
            TokenKind::KwFor => {
                self.advance();
                let init = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(TokenKind::Semi)?;
                let cond = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.check(&TokenKind::LBrace) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt::new(
                    StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span,
                ))
            }
            TokenKind::KwSwitch => {
                self.advance();
                let scrutinee = self.expr()?;
                self.expect(TokenKind::LBrace)?;
                let mut cases = Vec::new();
                let mut default = None;
                loop {
                    if self.eat(&TokenKind::KwCase) {
                        let case_start = self.peek().span;
                        let negative = self.eat(&TokenKind::Minus);
                        let value = match self.peek_kind() {
                            TokenKind::Int(n) => {
                                let v = *n;
                                self.advance();
                                if negative {
                                    -v
                                } else {
                                    v
                                }
                            }
                            other => {
                                return Err(ParseError::new(
                                    format!(
                                        "expected integer case label, found {}",
                                        other.describe()
                                    ),
                                    self.peek().span,
                                ))
                            }
                        };
                        self.expect(TokenKind::Colon)?;
                        let body = self.block()?;
                        let span = case_start.to(body.span);
                        cases.push(SwitchCase { value, body, span });
                    } else if self.eat(&TokenKind::KwDefault) {
                        self.expect(TokenKind::Colon)?;
                        if default.is_some() {
                            return Err(ParseError::new(
                                "duplicate `default` arm",
                                self.peek().span,
                            ));
                        }
                        default = Some(self.block()?);
                    } else {
                        break;
                    }
                }
                let end = self.expect(TokenKind::RBrace)?.span;
                Ok(Stmt::new(
                    StmtKind::Switch {
                        scrutinee,
                        cases,
                        default,
                    },
                    start.to(end),
                ))
            }
            TokenKind::KwBreak => {
                self.advance();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Break, start.to(end)))
            }
            TokenKind::KwContinue => {
                self.advance();
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Continue, start.to(end)))
            }
            TokenKind::KwReturn => {
                self.advance();
                let value = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Return(value), start.to(end)))
            }
            TokenKind::LBrace => {
                let block = self.block()?;
                let span = block.span;
                Ok(Stmt::new(StmtKind::Block(block), span))
            }
            _ => {
                let stmt = self.simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(stmt)
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(TokenKind::KwIf)?.span;
        let cond = self.expr()?;
        let then_branch = self.block()?;
        let else_branch = if self.eat(&TokenKind::KwElse) {
            if self.check(&TokenKind::KwIf) {
                // `else if` desugars to `else { if .. }`.
                let nested = self.if_stmt()?;
                let span = nested.span;
                Some(Block::new(vec![nested], span))
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        let end = else_branch
            .as_ref()
            .map(|b| b.span)
            .unwrap_or(then_branch.span);
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            start.to(end),
        ))
    }

    /// An assignment or bare expression, without the trailing `;`
    /// (shared between expression statements and `for` init/step slots).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let expr = self.expr()?;
        let compound = match self.peek_kind() {
            TokenKind::Assign => Some(None),
            TokenKind::PlusEq => Some(Some(BinaryOp::Add)),
            TokenKind::MinusEq => Some(Some(BinaryOp::Sub)),
            TokenKind::StarEq => Some(Some(BinaryOp::Mul)),
            TokenKind::SlashEq => Some(Some(BinaryOp::Div)),
            _ => None,
        };
        if let Some(op) = compound {
            self.advance();
            let target = Self::expr_to_lvalue(&expr)?;
            let value = self.expr()?;
            let span = start.to(value.span);
            Ok(Stmt::new(StmtKind::Assign { target, op, value }, span))
        } else {
            let span = start.to(expr.span);
            Ok(Stmt::new(StmtKind::Expr(expr), span))
        }
    }

    fn expr_to_lvalue(expr: &Expr) -> Result<LValue, ParseError> {
        match &expr.kind {
            ExprKind::Var(name) => Ok(LValue::Var(name.clone(), expr.span)),
            ExprKind::Index { base, index } => match &base.kind {
                ExprKind::Var(name) => Ok(LValue::Index {
                    base: name.clone(),
                    index: (**index).clone(),
                    span: expr.span,
                }),
                _ => Err(ParseError::new(
                    "assignment target must be `name[index]`",
                    expr.span,
                )),
            },
            _ => Err(ParseError::new("invalid assignment target", expr.span)),
        }
    }

    /// Expression entry point (precedence climbing).
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_expr(0)
    }

    /// Binding powers, loosest to tightest:
    /// `||` < `&&` < `|` < `^` < `&` < comparisons < shifts < `+ -` < `* / %`.
    fn binop_at(&self, min_bp: u8) -> Option<(BinaryOp, u8)> {
        let (op, bp) = match self.peek_kind() {
            TokenKind::OrOr => (BinaryOp::Or, 1),
            TokenKind::AndAnd => (BinaryOp::And, 2),
            TokenKind::Pipe => (BinaryOp::BitOr, 3),
            TokenKind::Caret => (BinaryOp::BitXor, 4),
            TokenKind::Amp => (BinaryOp::BitAnd, 5),
            TokenKind::EqEq => (BinaryOp::Eq, 6),
            TokenKind::NotEq => (BinaryOp::Ne, 6),
            TokenKind::Lt => (BinaryOp::Lt, 6),
            TokenKind::Le => (BinaryOp::Le, 6),
            TokenKind::Gt => (BinaryOp::Gt, 6),
            TokenKind::Ge => (BinaryOp::Ge, 6),
            TokenKind::Shl => (BinaryOp::Shl, 7),
            TokenKind::Shr => (BinaryOp::Shr, 7),
            TokenKind::Plus => (BinaryOp::Add, 8),
            TokenKind::Minus => (BinaryOp::Sub, 8),
            TokenKind::Star => (BinaryOp::Mul, 9),
            TokenKind::Slash => (BinaryOp::Div, 9),
            TokenKind::Percent => (BinaryOp::Rem, 9),
            _ => return None,
        };
        (bp >= min_bp).then_some((op, bp))
    }

    fn binary_expr(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, bp)) = self.binop_at(min_bp) {
            self.advance();
            let rhs = self.binary_expr(bp + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let operand = self.unary_expr()?;
            let span = start.to(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary_expr()?;
        while self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            let span = expr.span.to(end);
            expr = Expr::new(
                ExprKind::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                },
                span,
            );
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::new(ExprKind::Int(v), tok.span))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::new(ExprKind::Float(v), tok.span))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::new(ExprKind::Str(s), tok.span))
            }
            TokenKind::KwTrue => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(true), tok.span))
            }
            TokenKind::KwFalse => {
                self.advance();
                Ok(Expr::new(ExprKind::Bool(false), tok.span))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::new(
                        ExprKind::Call { callee: name, args },
                        tok.span.to(end),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), tok.span))
                }
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                let end = self.expect(TokenKind::RParen)?.span;
                Ok(Expr::new(inner.kind, tok.span.to(end)))
            }
            other => Err(ParseError::new(
                format!("expected expression, found {}", other.describe()),
                tok.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        parse_module("test.c", src, Dialect::C).expect("parse")
    }

    #[test]
    fn parses_function_with_params_and_return() {
        let m = parse("fn add(a: int, b: int) -> int { return a + b; }");
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
    }

    #[test]
    fn parses_globals() {
        let m = parse("global counter: int = 0;\nglobal name: str;");
        assert_eq!(m.globals.len(), 2);
        assert!(m.globals[0].init.is_some());
        assert!(m.globals[1].init.is_none());
    }

    #[test]
    fn parses_annotations() {
        let m = parse("@endpoint(network) @priv(root) @untrusted fn f() {}");
        let f = &m.functions[0];
        assert_eq!(f.endpoint_channels(), vec![ChannelKind::Network]);
        assert_eq!(f.privilege(), PrivLevel::Root);
        assert!(f.is_untrusted());
    }

    #[test]
    fn unknown_annotation_is_error() {
        let err = parse_module("t.c", "@inline fn f() {}", Dialect::C).unwrap_err();
        assert!(err.message.contains("unknown annotation"));
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse("fn f() -> int { return 1 + 2 * 3; }");
        let body = &m.functions[0].body.stmts[0];
        let StmtKind::Return(Some(e)) = &body.kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinaryOp::Add,
            rhs,
            ..
        } = &e.kind
        else {
            panic!("expected + at root, got {e:?}")
        };
        assert!(matches!(
            rhs.kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn precedence_comparison_over_logical() {
        let m = parse("fn f(a: int, b: int) -> bool { return a < 1 && b > 2; }");
        let StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_chain() {
        let m = parse("fn f(x: int) { if x < 0 { return; } else if x == 0 { } else { } }");
        let StmtKind::If {
            else_branch: Some(eb),
            ..
        } = &m.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        // `else if` desugars to a block holding exactly one nested `if`.
        assert_eq!(eb.stmts.len(), 1);
        assert!(matches!(eb.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_for_loop() {
        let m = parse("fn f() { for i = 0; i < 10; i += 1 { log_msg(\"x\"); } }");
        let StmtKind::For {
            init, cond, step, ..
        } = &m.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());
    }

    #[test]
    fn for_loop_slots_optional() {
        let m = parse("fn f() { for ; ; { break; } }");
        let StmtKind::For {
            init, cond, step, ..
        } = &m.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn parses_switch() {
        let m =
            parse("fn f(x: int) { switch x { case 1: { return; } case -2: { } default: { } } }");
        let StmtKind::Switch { cases, default, .. } = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[1].value, -2);
        assert!(default.is_some());
    }

    #[test]
    fn duplicate_default_is_error() {
        let err = parse_module(
            "t.c",
            "fn f(x: int) { switch x { default: { } default: { } } }",
            Dialect::C,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate `default`"));
    }

    #[test]
    fn parses_buffer_declaration_and_index_assignment() {
        let m = parse("fn f() { let buf: int[64]; buf[3] = 7; }");
        let StmtKind::Let { ty, .. } = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(ty.buffer_capacity(), Some(64));
        let StmtKind::Assign {
            target: LValue::Index { base, .. },
            ..
        } = &m.functions[0].body.stmts[1].kind
        else {
            panic!()
        };
        assert_eq!(base, "buf");
    }

    #[test]
    fn compound_assignment() {
        let m = parse("fn f() { let x: int = 0; x += 2; x *= 3; }");
        let StmtKind::Assign {
            op: Some(BinaryOp::Add),
            ..
        } = &m.functions[0].body.stmts[1].kind
        else {
            panic!()
        };
        let StmtKind::Assign {
            op: Some(BinaryOp::Mul),
            ..
        } = &m.functions[0].body.stmts[2].kind
        else {
            panic!()
        };
    }

    #[test]
    fn call_statement_and_nested_calls() {
        let m = parse("fn f() { printf(\"%d\", strlen(read_input())); }");
        let StmtKind::Expr(e) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call { callee, args } = &e.kind else {
            panic!()
        };
        assert_eq!(callee, "printf");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn invalid_assignment_target_is_error() {
        let err = parse_module("t.c", "fn f() { 1 + 2 = 3; }", Dialect::C).unwrap_err();
        assert!(err.message.contains("assignment target"));
    }

    #[test]
    fn unterminated_block_is_error() {
        let err = parse_module("t.c", "fn f() { let x: int = 1;", Dialect::C).unwrap_err();
        assert!(err.message.contains("unterminated block"));
    }

    #[test]
    fn zero_array_size_is_error() {
        let err = parse_module("t.c", "fn f() { let b: int[0]; }", Dialect::C).unwrap_err();
        assert!(err.message.contains("positive array size"));
    }

    #[test]
    fn parse_program_collects_modules() {
        let files = vec![
            ("a.c".to_string(), "fn a() {}".to_string()),
            ("b.c".to_string(), "fn b() {}".to_string()),
        ];
        let p = parse_program("app", Dialect::C, &files).unwrap();
        assert_eq!(p.modules.len(), 2);
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn parenthesized_expression_overrides_precedence() {
        let m = parse("fn f() -> int { return (1 + 2) * 3; }");
        let StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn nested_block_statement() {
        let m = parse("fn f() { { let x: int = 1; } }");
        assert!(matches!(
            m.functions[0].body.stmts[0].kind,
            StmtKind::Block(_)
        ));
    }
}
