//! Pretty-printer.
//!
//! Emits canonical MiniLang source from an AST. The corpus generator builds
//! ASTs and prints them (interleaving dialect-styled comments) to produce the
//! module source text; the property tests round-trip `parse ∘ print` to pin
//! the grammar.

use crate::ast::*;
use std::fmt::Write;

/// Render a module's items as canonical source text.
///
/// Note: this prints the AST, not `module.source` — comments are not
/// preserved (the corpus generator adds its own when synthesizing files).
pub fn print_module(module: &Module) -> String {
    let mut p = Printer::new();
    for g in &module.globals {
        p.global(g);
    }
    for f in &module.functions {
        p.function(f);
    }
    p.out
}

/// Render a single function.
pub fn print_function(f: &Function) -> String {
    let mut p = Printer::new();
    p.function(f);
    p.out
}

/// Render a single expression (used in diagnostics).
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn global(&mut self, g: &Global) {
        let mut s = format!("global {}: {}", g.name, g.ty);
        if let Some(init) = &g.init {
            let mut p = Printer::new();
            p.expr(init);
            let _ = write!(s, " = {}", p.out);
        }
        s.push(';');
        self.line(&s);
    }

    fn function(&mut self, f: &Function) {
        for ann in &f.annotations {
            let text = match ann {
                Annotation::Endpoint(k) => format!("@endpoint({})", k.name()),
                Annotation::Priv(p) => format!("@priv({})", p.name()),
                Annotation::Untrusted => "@untrusted".to_string(),
                Annotation::Deprecated => "@deprecated".to_string(),
            };
            self.line(&text);
        }
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| format!("{}: {}", p.name, p.ty))
            .collect();
        let header = if f.ret == Type::Void {
            format!("fn {}({}) {{", f.name, params.join(", "))
        } else {
            format!("fn {}({}) -> {} {{", f.name, params.join(", "), f.ret)
        };
        self.line(&header);
        self.indent += 1;
        for s in &f.body.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn block_inline(&mut self, b: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Let { name, ty, init } => {
                let mut text = format!("let {name}: {ty}");
                if let Some(e) = init {
                    let mut p = Printer::new();
                    p.expr(e);
                    let _ = write!(text, " = {}", p.out);
                }
                text.push(';');
                self.line(&text);
            }
            StmtKind::Assign { target, op, value } => {
                let mut text = String::new();
                match target {
                    LValue::Var(name, _) => text.push_str(name),
                    LValue::Index { base, index, .. } => {
                        let mut p = Printer::new();
                        p.expr(index);
                        let _ = write!(text, "{base}[{}]", p.out);
                    }
                }
                match op {
                    None => text.push_str(" = "),
                    Some(o) => {
                        let _ = write!(text, " {}= ", o.symbol());
                    }
                }
                let mut p = Printer::new();
                p.expr(value);
                text.push_str(&p.out);
                text.push(';');
                self.line(&text);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.start_line(&format!("if {} ", p.out));
                self.block_inline(then_branch);
                if let Some(eb) = else_branch {
                    self.out.push_str(" else ");
                    self.block_inline(eb);
                }
                self.out.push('\n');
            }
            StmtKind::While { cond, body } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.start_line(&format!("while {} ", p.out));
                self.block_inline(body);
                self.out.push('\n');
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let part = |stmt: &Option<Box<Stmt>>| -> String {
                    stmt.as_ref()
                        .map(|s| {
                            let mut p = Printer::new();
                            p.stmt(s);
                            // Strip trailing ";\n" and leading indent.
                            p.out.trim().trim_end_matches(';').to_string()
                        })
                        .unwrap_or_default()
                };
                let cond_text = cond
                    .as_ref()
                    .map(|c| {
                        let mut p = Printer::new();
                        p.expr(c);
                        p.out
                    })
                    .unwrap_or_default();
                self.start_line(&format!(
                    "for {}; {}; {} ",
                    part(init),
                    cond_text,
                    part(step)
                ));
                self.block_inline(body);
                self.out.push('\n');
            }
            StmtKind::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let mut p = Printer::new();
                p.expr(scrutinee);
                self.start_line(&format!("switch {} {{\n", p.out));
                self.indent += 1;
                for case in cases {
                    self.start_line(&format!("case {}: ", case.value));
                    self.block_inline(&case.body);
                    self.out.push('\n');
                }
                if let Some(d) = default {
                    self.start_line("default: ");
                    self.block_inline(d);
                    self.out.push('\n');
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Return(value) => match value {
                None => self.line("return;"),
                Some(e) => {
                    let mut p = Printer::new();
                    p.expr(e);
                    self.line(&format!("return {};", p.out));
                }
            },
            StmtKind::Expr(e) => {
                let mut p = Printer::new();
                p.expr(e);
                self.line(&format!("{};", p.out));
            }
            StmtKind::Block(b) => {
                self.start_line("");
                self.block_inline(b);
                self.out.push('\n');
            }
        }
    }

    /// Write the indent and `text` without a trailing newline.
    fn start_line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::Float(v) => {
                // Always keep a decimal point so the literal re-lexes as float.
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::Str(s) => {
                self.out.push('"');
                for ch in s.chars() {
                    match ch {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::Var(name) => self.out.push_str(name),
            ExprKind::Index { base, index } => {
                self.expr_paren_if_compound(base);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Unary { op, operand } => {
                self.out.push_str(op.symbol());
                self.expr_paren_if_compound(operand);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Fully parenthesize nested binaries: unambiguous and
                // guarantees the parse∘print round-trip is structure-exact.
                self.expr_paren_if_compound(lhs);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr_paren_if_compound(rhs);
            }
            ExprKind::Call { callee, args } => {
                self.out.push_str(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
        }
    }

    fn expr_paren_if_compound(&mut self, e: &Expr) {
        // Negative literals are parenthesized too: `0 + -1` would reparse as
        // a unary negation, which prints as `0 + (-1)` — parenthesizing up
        // front keeps printing canonical (print∘parse∘print = print).
        let needs_paren = match &e.kind {
            ExprKind::Binary { .. } | ExprKind::Unary { .. } => true,
            ExprKind::Int(v) => *v < 0,
            ExprKind::Float(v) => *v < 0.0,
            _ => false,
        };
        if needs_paren {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse_module;

    /// Parse, print, re-parse; the two ASTs must match modulo spans/source.
    fn round_trip(src: &str) {
        let m1 = parse_module("t.c", src, Dialect::C).expect("first parse");
        let printed = print_module(&m1);
        let m2 = parse_module("t.c", &printed, Dialect::C)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(strip(&m1), strip(&m2), "--- printed ---\n{printed}");
    }

    /// Erase spans and source so structural equality is meaningful.
    fn strip(m: &Module) -> String {
        // Printing is canonical, so compare by printing both.
        print_module(m)
    }

    #[test]
    fn round_trips_every_construct() {
        round_trip(
            r#"
            global limit: int = 100;
            @endpoint(network) @priv(root)
            fn handle(req: str, n: int) -> int {
                let buf: str[64];
                let i: int = 0;
                while i < n {
                    buf[i] = req[i];
                    i += 1;
                }
                for j = 0; j < 10; j += 2 {
                    if (j % 2) == 0 && n > 3 {
                        continue;
                    } else {
                        break;
                    }
                }
                switch n {
                    case 1: { return 1; }
                    case -2: { printf("%d", n); }
                    default: { log_msg("other"); }
                }
                return strlen(buf) * -n + (2 << 1);
            }
            "#,
        );
    }

    #[test]
    fn round_trips_floats_and_bools() {
        round_trip("fn f() -> float { let x: float = 2.0; let b: bool = true; return x * 1.5; }");
    }

    #[test]
    fn round_trips_string_escapes() {
        round_trip(r#"fn f() { printf("a\n\t\"b\"\\c"); }"#);
    }

    #[test]
    fn round_trips_nested_blocks_and_empty_for() {
        round_trip("fn f() { { let x: int = 1; } for ; ; { break; } }");
    }

    #[test]
    fn print_expr_is_parenthesized() {
        let m = parse_module("t.c", "fn f() -> int { return 1 + 2 * 3; }", Dialect::C).unwrap();
        let crate::ast::StmtKind::Return(Some(e)) = &m.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(print_expr(e), "1 + (2 * 3)");
    }
}
