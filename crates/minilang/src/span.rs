//! Source locations.
//!
//! Every token, statement and expression carries a [`Span`] so that analyses
//! and bug-finding tools can report findings with line-accurate positions,
//! exactly as the lint-style tools the paper leverages in §4.2 do.

use std::fmt;

/// A half-open byte range `[start, end)` into a module's source text, plus the
/// 1-based line/column of its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `[start, end)` starting at `line:col`.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The zero-width span used for synthesized nodes.
    pub fn dummy() -> Self {
        Span::default()
    }

    /// A span covering both `self` and `other` (keeps `self`'s line/col).
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True if the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_extremes() {
        let a = Span::new(4, 9, 1, 5);
        let b = Span::new(12, 20, 2, 3);
        let m = a.to(b);
        assert_eq!((m.start, m.end), (4, 20));
        assert_eq!((m.line, m.col), (1, 5));
    }

    #[test]
    fn merge_is_order_insensitive_for_range() {
        let a = Span::new(4, 9, 1, 5);
        let b = Span::new(12, 20, 2, 3);
        let m1 = a.to(b);
        let m2 = b.to(a);
        assert_eq!((m1.start, m1.end), (m2.start, m2.end));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(3, 7, 1, 1).len(), 4);
        assert!(Span::dummy().is_empty());
        assert!(!Span::new(0, 1, 1, 1).is_empty());
    }

    #[test]
    fn display_shows_line_col() {
        assert_eq!(Span::new(0, 1, 7, 13).to_string(), "7:13");
    }
}
