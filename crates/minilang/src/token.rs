//! Lexical tokens.

use crate::span::Span;
use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The kinds of tokens MiniLang's lexer produces.
///
/// Comments are *not* tokens: the lexer skips them (recording only counts),
/// because the line-classification work the paper assigns to `cloc` is done
/// by `static_analysis::loc` directly on the source text.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),

    // Keywords.
    KwFn,
    KwLet,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    KwTrue,
    KwFalse,
    KwGlobal,
    KwInt,
    KwFloat,
    KwBool,
    KwStr,
    KwVoid,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,  // ->
    At,     // @ (annotations)
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Amp,    // & (bitwise and / address-of-lite)
    Pipe,   // |
    Caret,  // ^
    Shl,    // <<
    Shr,    // >>
    AndAnd, // &&
    OrOr,   // ||
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "fn" => TokenKind::KwFn,
            "let" => TokenKind::KwLet,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "switch" => TokenKind::KwSwitch,
            "case" => TokenKind::KwCase,
            "default" => TokenKind::KwDefault,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "global" => TokenKind::KwGlobal,
            "int" => TokenKind::KwInt,
            "float" => TokenKind::KwFloat,
            "bool" => TokenKind::KwBool,
            "str" => TokenKind::KwStr,
            "void" => TokenKind::KwVoid,
            _ => return None,
        })
    }

    /// Short printable name used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal spelling of a fixed token (empty for variable tokens).
    pub fn symbol(&self) -> &'static str {
        match self {
            TokenKind::KwFn => "fn",
            TokenKind::KwLet => "let",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwFor => "for",
            TokenKind::KwSwitch => "switch",
            TokenKind::KwCase => "case",
            TokenKind::KwDefault => "default",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::KwReturn => "return",
            TokenKind::KwTrue => "true",
            TokenKind::KwFalse => "false",
            TokenKind::KwGlobal => "global",
            TokenKind::KwInt => "int",
            TokenKind::KwFloat => "float",
            TokenKind::KwBool => "bool",
            TokenKind::KwStr => "str",
            TokenKind::KwVoid => "void",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Arrow => "->",
            TokenKind::At => "@",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Bang => "!",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::PlusEq => "+=",
            TokenKind::MinusEq => "-=",
            TokenKind::StarEq => "*=",
            TokenKind::SlashEq => "/=",
            TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) | TokenKind::Ident(_) => "",
            TokenKind::Eof => "<eof>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip_through_symbol() {
        for kw in [
            "fn", "let", "if", "else", "while", "for", "switch", "return", "global",
        ] {
            let tok = TokenKind::keyword(kw).expect("is a keyword");
            assert_eq!(tok.symbol(), kw);
        }
    }

    #[test]
    fn non_keywords_are_identifiers() {
        assert!(TokenKind::keyword("handle_request").is_none());
        assert!(TokenKind::keyword("strcpy").is_none());
    }

    #[test]
    fn describe_variable_tokens() {
        assert_eq!(TokenKind::Int(42).describe(), "integer `42`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
