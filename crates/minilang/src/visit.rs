//! AST walking utilities.
//!
//! Most analyses need "visit every statement/expression under this function".
//! Rather than each analysis re-implementing recursion (and inevitably
//! missing the `for`-step or a switch default), this module provides
//! closure-based walkers plus a few common queries built on them.

use crate::ast::*;

/// Call `f` on every statement in the block, recursively (pre-order).
pub fn walk_stmts<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        walk_stmt(stmt, f);
    }
}

fn walk_stmt<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Stmt)) {
    f(stmt);
    match &stmt.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_stmts(then_branch, f);
            if let Some(eb) = else_branch {
                walk_stmts(eb, f);
            }
        }
        StmtKind::While { body, .. } => walk_stmts(body, f),
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                walk_stmt(i, f);
            }
            if let Some(s) = step {
                walk_stmt(s, f);
            }
            walk_stmts(body, f);
        }
        StmtKind::Switch { cases, default, .. } => {
            for c in cases {
                walk_stmts(&c.body, f);
            }
            if let Some(d) = default {
                walk_stmts(d, f);
            }
        }
        StmtKind::Block(b) => walk_stmts(b, f),
        StmtKind::Let { .. }
        | StmtKind::Assign { .. }
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Return(_)
        | StmtKind::Expr(_) => {}
    }
}

/// Call `f` on every expression under the block, including sub-expressions
/// (pre-order), covering conditions, initializers, steps, indices and
/// call arguments.
pub fn walk_exprs<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    walk_stmts(block, &mut |stmt| {
        for e in stmt_exprs(stmt) {
            walk_expr(e, f);
        }
    });
}

/// The expressions appearing *directly* in a statement (not recursing into
/// nested statements — `walk_stmts` handles those).
pub fn stmt_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match &stmt.kind {
        StmtKind::Let { init, .. } => init.iter().collect(),
        StmtKind::Assign { target, value, .. } => {
            let mut v = Vec::new();
            if let LValue::Index { index, .. } = target {
                v.push(index);
            }
            v.push(value);
            v
        }
        StmtKind::If { cond, .. } => vec![cond],
        StmtKind::While { cond, .. } => vec![cond],
        StmtKind::For { cond, .. } => cond.iter().collect(),
        StmtKind::Switch { scrutinee, .. } => vec![scrutinee],
        StmtKind::Return(value) => value.iter().collect(),
        StmtKind::Expr(e) => vec![e],
        StmtKind::Break | StmtKind::Continue | StmtKind::Block(_) => vec![],
    }
}

/// Call `f` on `expr` and all sub-expressions (pre-order).
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Unary { operand, .. } => walk_expr(operand, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Var(_) => {}
    }
}

/// Collect the callee names of every call under `block`, in visit order
/// (includes duplicates — callers dedup if they need to).
pub fn collect_calls(block: &Block) -> Vec<&str> {
    let mut out = Vec::new();
    walk_exprs(block, &mut |e| {
        if let ExprKind::Call { callee, .. } = &e.kind {
            out.push(callee.as_str());
        }
    });
    out
}

/// Collect every variable name *read* under `block` (not assignment targets).
pub fn collect_var_reads(block: &Block) -> Vec<&str> {
    let mut out = Vec::new();
    walk_exprs(block, &mut |e| {
        if let ExprKind::Var(name) = &e.kind {
            out.push(name.as_str());
        }
    });
    out
}

/// Call `f` on every identifier a function mentions, in a deterministic
/// pre-order: the function's own name, its parameter names, then per
/// statement (as [`walk_stmts`] visits them) any declared/assigned name
/// followed by every variable reference and callee in the statement's
/// direct expressions. Symbol interning is built on this walk — running it
/// once per function yields a stable numbering no matter which analysis
/// asks first.
pub fn function_identifiers<'a>(function: &'a Function, f: &mut dyn FnMut(&'a str)) {
    f(&function.name);
    for p in &function.params {
        f(&p.name);
    }
    walk_stmts(&function.body, &mut |stmt| {
        match &stmt.kind {
            StmtKind::Let { name, .. } => f(name),
            StmtKind::Assign { target, .. } => f(target.base_name()),
            _ => {}
        }
        for e in stmt_exprs(stmt) {
            walk_expr(e, &mut |e| match &e.kind {
                ExprKind::Var(name) => f(name),
                ExprKind::Call { callee, .. } => f(callee),
                _ => {}
            });
        }
    });
}

/// Maximum statement-nesting depth of the block (a top-level statement has
/// depth 1). Used by the "deep nesting" code smell.
pub fn max_nesting_depth(block: &Block) -> usize {
    fn stmt_depth(stmt: &Stmt) -> usize {
        let inner = match &stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let t = block_depth(then_branch);
                let e = else_branch.as_ref().map(block_depth).unwrap_or(0);
                t.max(e)
            }
            StmtKind::While { body, .. } => block_depth(body),
            StmtKind::For { body, .. } => block_depth(body),
            StmtKind::Switch { cases, default, .. } => {
                let c = cases
                    .iter()
                    .map(|c| block_depth(&c.body))
                    .max()
                    .unwrap_or(0);
                let d = default.as_ref().map(block_depth).unwrap_or(0);
                c.max(d)
            }
            StmtKind::Block(b) => block_depth(b),
            _ => return 1,
        };
        1 + inner
    }
    fn block_depth(block: &Block) -> usize {
        block.stmts.iter().map(stmt_depth).max().unwrap_or(0)
    }
    block_depth(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse_module;

    fn body(src: &str) -> Block {
        let m = parse_module("t.c", src, Dialect::C).unwrap();
        m.functions[0].body.clone()
    }

    #[test]
    fn walk_stmts_reaches_every_nesting_site() {
        let b = body(
            "fn f(x: int) {
                if x > 0 { let a: int = 1; } else { let b: int = 2; }
                while x < 10 { x += 1; }
                for i = 0; i < 3; i += 1 { log_msg(\"s\"); }
                switch x { case 1: { break; } default: { return; } }
                { let c: int = 3; }
            }",
        );
        let mut lets = 0;
        walk_stmts(&b, &mut |s| {
            if matches!(s.kind, StmtKind::Let { .. }) {
                lets += 1;
            }
        });
        // a, b, c plus nothing else (for-init is an assign, not a let).
        assert_eq!(lets, 3);
    }

    #[test]
    fn collect_calls_includes_nested_and_duplicate() {
        let b = body("fn f() { printf(\"%d\", strlen(read_input())); printf(\"x\"); }");
        assert_eq!(
            collect_calls(&b),
            vec!["printf", "strlen", "read_input", "printf"]
        );
    }

    #[test]
    fn collect_calls_sees_for_step_and_condition() {
        let b = body("fn f() { for i = strlen(\"a\"); i < strlen(\"bb\"); i += 1 { } }");
        assert_eq!(collect_calls(&b).len(), 2);
    }

    #[test]
    fn var_reads_exclude_plain_assignment_targets() {
        let b = body("fn f() { let x: int = 0; x = 5; let y: int = x; }");
        assert_eq!(collect_var_reads(&b), vec!["x"]);
    }

    #[test]
    fn var_reads_include_index_of_write_target() {
        let b = body("fn f(i: int) { let buf: int[8]; buf[i] = 1; }");
        assert_eq!(collect_var_reads(&b), vec!["i"]);
    }

    #[test]
    fn nesting_depth() {
        assert_eq!(max_nesting_depth(&body("fn f() { let x: int = 1; }")), 1);
        assert_eq!(
            max_nesting_depth(&body("fn f(x: int) { if x > 0 { if x > 1 { x = 2; } } }")),
            3
        );
        assert_eq!(max_nesting_depth(&body("fn f() { }")), 0);
    }

    #[test]
    fn function_identifiers_in_stable_preorder() {
        let m = parse_module(
            "t.c",
            "fn f(a: int, b: int) -> int {
                let x: int = a + 1;
                x = g(b);
                for i = 0; i < x; i += 1 { log_msg(\"s\"); }
                return x;
            }",
            Dialect::C,
        )
        .unwrap();
        let mut seen = Vec::new();
        function_identifiers(&m.functions[0], &mut |n| seen.push(n.to_string()));
        assert_eq!(
            seen,
            vec![
                "f", "a", "b", // signature
                "x", "a", // let x = a + 1
                "x", "g", "b", // x = g(b)
                "i", "x", "i", "i", "log_msg", // for cond, then init/step/body
                "x",       // return x
            ]
        );
    }

    #[test]
    fn walk_exprs_covers_switch_scrutinee_and_return() {
        let b = body("fn f(x: int) -> int { switch x + 1 { default: { } } return x * 2; }");
        let mut binaries = 0;
        walk_exprs(&b, &mut |e| {
            if matches!(e.kind, ExprKind::Binary { .. }) {
                binaries += 1;
            }
        });
        assert_eq!(binaries, 2);
    }
}
