//! Property tests: for any well-formed AST, `parse(print(ast))` succeeds and
//! re-prints to the identical canonical text. This pins the grammar against
//! lexer/parser/printer drift — crucial because the corpus generator feeds
//! printed ASTs back through the parser before analysis.

// Offline build: `proptest` is not vendored, so this whole suite is
// compiled out unless the crate's `proptest` feature is enabled (which
// additionally requires registry access and restoring the `proptest`
// dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

use minilang::ast::*;
use minilang::{parse_module, print_module, Dialect, Span};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords and intrinsics by prefixing.
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("v_{s}"))
}

fn ty() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Int),
        Just(Type::Float),
        Just(Type::Bool),
        Just(Type::Str),
        (1usize..512).prop_map(|n| Type::Array(Box::new(Type::Int), n)),
        (1usize..512).prop_map(|n| Type::Array(Box::new(Type::Str), n)),
    ]
}

fn literal() -> impl Strategy<Value = ExprKind> {
    prop_oneof![
        (-1000i64..1000).prop_map(ExprKind::Int),
        (0.5f64..100.0).prop_map(ExprKind::Float),
        "[ -~&&[^\"\\\\%]]{0,12}".prop_map(ExprKind::Str),
        any::<bool>().prop_map(ExprKind::Bool),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(|k| Expr::new(k, Span::dummy())),
        ident().prop_map(Expr::var),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), binop()).prop_map(|(l, r, op)| Expr::binary(op, l, r)),
            (inner.clone()).prop_map(|e| Expr::new(
                ExprKind::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(e)
                },
                Span::dummy()
            )),
            (ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::call(name, args)),
            (ident(), inner).prop_map(|(base, idx)| Expr::new(
                ExprKind::Index {
                    base: Box::new(Expr::var(base)),
                    index: Box::new(idx)
                },
                Span::dummy()
            )),
        ]
    })
}

fn binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Rem),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::BitXor),
        Just(BinaryOp::Shl),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Ge),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), ty(), prop::option::of(expr())).prop_map(|(name, ty, init)| Stmt::new(
            StmtKind::Let { name, ty, init },
            Span::dummy()
        )),
        (ident(), expr()).prop_map(|(name, value)| Stmt::new(
            StmtKind::Assign {
                target: LValue::Var(name, Span::dummy()),
                op: None,
                value
            },
            Span::dummy()
        )),
        (ident(), expr(), expr()).prop_map(|(base, index, value)| Stmt::new(
            StmtKind::Assign {
                target: LValue::Index {
                    base,
                    index,
                    span: Span::dummy()
                },
                op: Some(BinaryOp::Add),
                value
            },
            Span::dummy()
        )),
        prop::option::of(expr()).prop_map(|v| Stmt::new(StmtKind::Return(v), Span::dummy())),
        expr().prop_map(|e| Stmt::new(StmtKind::Expr(e), Span::dummy())),
        Just(Stmt::new(StmtKind::Break, Span::dummy())),
        Just(Stmt::new(StmtKind::Continue, Span::dummy())),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4)
            .prop_map(|stmts| Block::new(stmts, Span::dummy()));
        prop_oneof![
            (expr(), block.clone(), prop::option::of(block.clone())).prop_map(
                |(cond, then_branch, else_branch)| Stmt::new(
                    StmtKind::If {
                        cond,
                        then_branch,
                        else_branch
                    },
                    Span::dummy()
                )
            ),
            (expr(), block.clone())
                .prop_map(|(cond, body)| Stmt::new(StmtKind::While { cond, body }, Span::dummy())),
            (
                prop::collection::vec((-20i64..20, block.clone()), 0..3),
                prop::option::of(block.clone()),
                expr()
            )
                .prop_map(|(arms, default, scrutinee)| {
                    let cases = arms
                        .into_iter()
                        .map(|(value, body)| SwitchCase {
                            value,
                            body,
                            span: Span::dummy(),
                        })
                        .collect();
                    Stmt::new(
                        StmtKind::Switch {
                            scrutinee,
                            cases,
                            default,
                        },
                        Span::dummy(),
                    )
                }),
            block.prop_map(|b| Stmt::new(StmtKind::Block(b), Span::dummy())),
        ]
    })
}

fn function() -> impl Strategy<Value = Function> {
    (
        ident(),
        prop::collection::vec((ident(), ty()), 0..4),
        prop::collection::vec(stmt(), 0..6),
        prop_oneof![
            Just(vec![]),
            Just(vec![Annotation::Endpoint(ChannelKind::Network)]),
            Just(vec![
                Annotation::Priv(PrivLevel::Root),
                Annotation::Untrusted
            ]),
        ],
    )
        .prop_map(|(name, params, stmts, annotations)| Function {
            name,
            params: params
                .into_iter()
                .enumerate()
                .map(|(i, (n, ty))| Param {
                    name: format!("{n}_{i}"),
                    ty,
                    span: Span::dummy(),
                })
                .collect(),
            ret: Type::Int,
            body: Block::new(
                stmts
                    .into_iter()
                    .chain(std::iter::once(Stmt::new(
                        StmtKind::Return(Some(Expr::int(0))),
                        Span::dummy(),
                    )))
                    .collect(),
                Span::dummy(),
            ),
            annotations,
            span: Span::dummy(),
        })
}

fn module() -> impl Strategy<Value = Module> {
    (
        prop::collection::vec((ident(), ty()), 0..3),
        prop::collection::vec(function(), 1..4),
    )
        .prop_map(|(globals, mut functions)| {
            // Deduplicate function names (printer/parser don't care, but a
            // realistic module shouldn't have collisions).
            for (i, f) in functions.iter_mut().enumerate() {
                f.name = format!("{}_{i}", f.name);
            }
            Module {
                path: "gen.c".into(),
                dialect: Dialect::C,
                source: String::new(),
                globals: globals
                    .into_iter()
                    .enumerate()
                    .map(|(i, (name, ty))| Global {
                        name: format!("{name}_{i}"),
                        ty,
                        init: None,
                        span: Span::dummy(),
                    })
                    .collect(),
                functions,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// print → parse → print is a fixed point (canonical form).
    #[test]
    fn print_parse_print_is_identity(m in module()) {
        let printed = print_module(&m);
        let reparsed = parse_module("gen.c", &printed, Dialect::C)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{printed}")))?;
        let reprinted = print_module(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// Structural facts survive the round trip.
    #[test]
    fn roundtrip_preserves_structure(m in module()) {
        let printed = print_module(&m);
        let reparsed = parse_module("gen.c", &printed, Dialect::C).unwrap();
        prop_assert_eq!(m.functions.len(), reparsed.functions.len());
        prop_assert_eq!(m.globals.len(), reparsed.globals.len());
        for (a, b) in m.functions.iter().zip(&reparsed.functions) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.params.len(), b.params.len());
            prop_assert_eq!(&a.annotations, &b.annotations);
        }
    }

    /// The lexer never panics on arbitrary input (errors are Results).
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = minilang::Lexer::new(&s, Dialect::C).tokenize();
        let _ = minilang::Lexer::new(&s, Dialect::Python).tokenize();
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_total_on_arbitrary_input(s in "[a-z0-9{}();:=<>!&|+*/,\\[\\]\" \n@-]{0,120}") {
        let _ = parse_module("t.c", &s, Dialect::C);
    }
}
