//! Content-addressed feature-vector cache.
//!
//! The cache key is an FNV-1a 64-bit digest over everything that can
//! change an extraction result:
//!
//! ```text
//! key = fnv1a64( schema_version ‖ fingerprint ‖ dialect ‖ (path ‖ source)* )
//! ```
//!
//! * `schema_version` — the extractor's collector-schema version; bumping
//!   it invalidates every entry at once (new collector, changed feature
//!   names…);
//! * `fingerprint` — the extractor's digest of the collector set actually
//!   wired in (collector names + engine revision), so two extractors with
//!   the same schema version but different collectors never share entries;
//! * `dialect` — the same source parses differently per dialect;
//! * the files — length-prefixed path and source text of every module, in
//!   batch order. Editing one byte of one file of one program changes
//!   exactly that program's key and nobody else's.
//!
//! The program *name* is deliberately not part of the key: the cache is
//! content-addressed, so renaming an app (or two apps sharing identical
//! sources) still hits.
//!
//! Storage is an in-memory map, optionally persisted as JSONL (one entry
//! per line) under a cache directory for warm re-runs across processes.
//! Unparseable lines are treated as misses, never as errors — a corrupt
//! store degrades to a cold cache.

use crate::fnv::Fnv1a;
use static_analysis::FeatureVector;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Where cached feature vectors live.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Every program re-extracts, every run.
    Off,
    /// Warm within one process (one `Pipeline` value).
    #[default]
    Memory,
    /// Memory plus a JSONL store under this directory.
    Disk(PathBuf),
}

/// File name of the on-disk store inside the cache directory.
pub const STORE_FILE: &str = "feature-cache.jsonl";

/// Compute the content-addressed key for one program's sources.
pub fn cache_key(
    schema_version: u64,
    fingerprint: u64,
    dialect: minilang::Dialect,
    files: &[(String, String)],
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(schema_version);
    h.write_u64(fingerprint);
    h.write_str(&format!("{dialect:?}"));
    for (path, source) in files {
        h.write_str(path);
        h.write_str(source);
    }
    h.finish()
}

/// The feature-vector cache backing a [`crate::Pipeline`].
#[derive(Debug, Default)]
pub struct FeatureCache {
    mode: CacheMode,
    map: HashMap<u64, FeatureVector>,
    /// Entries added since the last persist.
    dirty: Vec<u64>,
}

impl FeatureCache {
    /// Open a cache in the given mode, loading the disk store if present.
    pub fn open(mode: CacheMode) -> FeatureCache {
        let mut cache = FeatureCache {
            mode,
            map: HashMap::new(),
            dirty: Vec::new(),
        };
        if let CacheMode::Disk(dir) = &cache.mode {
            cache.map = load_store(&dir.join(STORE_FILE));
        }
        cache
    }

    pub fn mode(&self) -> &CacheMode {
        &self.mode
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn get(&self, key: u64) -> Option<&FeatureVector> {
        if self.mode == CacheMode::Off {
            return None;
        }
        self.map.get(&key)
    }

    pub fn insert(&mut self, key: u64, fv: FeatureVector) {
        if self.mode == CacheMode::Off {
            return;
        }
        if self.map.insert(key, fv).is_none() {
            self.dirty.push(key);
        }
    }

    /// Append new entries to the JSONL store (no-op unless `Disk`).
    pub fn persist(&mut self) -> std::io::Result<()> {
        let CacheMode::Disk(dir) = &self.mode else {
            self.dirty.clear();
            return Ok(());
        };
        if self.dirty.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(dir)?;
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(STORE_FILE))?;
        for key in self.dirty.drain(..) {
            if let Some(fv) = self.map.get(&key) {
                writeln!(out, "{}", entry_json(key, fv))?;
            }
        }
        Ok(())
    }
}

/// One JSONL line: `{"key":"0123456789abcdef","features":{"name":1.5,…}}`.
///
/// `f64` values are written with Rust's shortest-roundtrip formatting, so
/// reading the line back yields bit-identical floats.
fn entry_json(key: u64, fv: &FeatureVector) -> String {
    let features: Vec<String> = fv
        .iter()
        .map(|(name, value)| format!("{}:{}", crate::report::json_str(name), fmt_f64(value)))
        .collect();
    format!(
        "{{\"key\":\"{key:016x}\",\"features\":{{{}}}}}",
        features.join(",")
    )
}

fn fmt_f64(v: f64) -> String {
    // `{:?}` is Rust's shortest representation that round-trips exactly;
    // make integral values explicit floats so the line stays obviously
    // typed (`1.0`, not `1`).
    format!("{v:?}")
}

/// Load the JSONL store, skipping lines that fail to parse.
fn load_store(path: &Path) -> HashMap<u64, FeatureVector> {
    let mut map = HashMap::new();
    let Ok(file) = std::fs::File::open(path) else {
        return map;
    };
    for line in BufReader::new(file).lines().map_while(Result::ok) {
        if let Some((key, fv)) = parse_entry(&line) {
            map.insert(key, fv);
        }
    }
    map
}

/// Parse one store line. Only the exact shape `entry_json` emits is
/// accepted (feature names never need escape sequences beyond `\"` and
/// `\\`, which are handled); anything else returns `None` → cache miss.
fn parse_entry(line: &str) -> Option<(u64, FeatureVector)> {
    let rest = line.strip_prefix("{\"key\":\"")?;
    let (hex, rest) = rest.split_once('"')?;
    let key = u64::from_str_radix(hex, 16).ok()?;
    let body = rest.strip_prefix(",\"features\":{")?.strip_suffix("}}")?;
    let mut fv = FeatureVector::new();
    let mut s = body;
    while !s.is_empty() {
        s = s.strip_prefix('"')?;
        let (name, tail) = split_json_string(s)?;
        s = tail.strip_prefix(':')?;
        let value_end = s.find(',').unwrap_or(s.len());
        let value: f64 = s[..value_end].parse().ok()?;
        fv.set(name, value);
        s = &s[value_end..];
        s = s.strip_prefix(',').unwrap_or(s);
    }
    Some((key, fv))
}

/// Split `name","rest` handling `\"` / `\\` escapes in the name.
fn split_json_string(s: &str) -> Option<(String, &str)> {
    let mut name = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((name, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => name.push('"'),
                '\\' => name.push('\\'),
                'n' => name.push('\n'),
                other => name.push(other),
            },
            c => name.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::Dialect;

    fn fv(pairs: &[(&str, f64)]) -> FeatureVector {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    fn files(src: &str) -> Vec<(String, String)> {
        vec![("main.c".to_string(), src.to_string())]
    }

    #[test]
    fn key_changes_with_source_dialect_schema_and_fingerprint() {
        let base = cache_key(1, 0, Dialect::C, &files("fn f() { }"));
        assert_eq!(base, cache_key(1, 0, Dialect::C, &files("fn f() { }")));
        assert_ne!(
            base,
            cache_key(1, 0, Dialect::C, &files("fn f() { let x: int; }"))
        );
        assert_ne!(base, cache_key(1, 0, Dialect::Python, &files("fn f() { }")));
        assert_ne!(base, cache_key(2, 0, Dialect::C, &files("fn f() { }")));
        assert_ne!(
            base,
            cache_key(1, 7, Dialect::C, &files("fn f() { }")),
            "collector-set fingerprint participates in the key"
        );
    }

    #[test]
    fn key_ignores_program_name_but_not_paths() {
        let a = cache_key(1, 0, Dialect::C, &[("a.c".into(), "fn f() { }".into())]);
        let b = cache_key(1, 0, Dialect::C, &[("b.c".into(), "fn f() { }".into())]);
        assert_ne!(a, b, "module path participates in the key");
    }

    #[test]
    fn memory_mode_round_trips() {
        let mut cache = FeatureCache::open(CacheMode::Memory);
        cache.insert(42, fv(&[("loc.code", 10.0)]));
        assert_eq!(cache.get(42).unwrap().get("loc.code"), Some(10.0));
        assert!(cache.get(43).is_none());
    }

    #[test]
    fn off_mode_never_stores() {
        let mut cache = FeatureCache::open(CacheMode::Off);
        cache.insert(42, fv(&[("a", 1.0)]));
        assert!(cache.get(42).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn entry_json_round_trips_exactly() {
        let vector = fv(&[
            ("loc.code", 1234.0),
            ("halstead.volume", 8239.471823712),
            ("weird\"name", -0.25),
            ("tiny", 1e-300),
        ]);
        let line = entry_json(0xdead_beef, &vector);
        let (key, parsed) = parse_entry(&line).expect("parses");
        assert_eq!(key, 0xdead_beef);
        assert_eq!(parsed, vector);
    }

    #[test]
    fn disk_store_survives_reopen_and_ignores_garbage() {
        let dir = std::env::temp_dir().join(format!("clairvoyant-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = FeatureCache::open(CacheMode::Disk(dir.clone()));
        cache.insert(7, fv(&[("x", 1.5)]));
        cache.persist().unwrap();
        // Corrupt the store with a partial line.
        std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(STORE_FILE))
            .unwrap()
            .write_all(b"{\"key\":\"zzzz\n")
            .unwrap();

        let reopened = FeatureCache::open(CacheMode::Disk(dir.clone()));
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.get(7).unwrap().get("x"), Some(1.5));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
