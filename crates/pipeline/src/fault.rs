//! Fault isolation for one program's extraction.
//!
//! A corpus sweep must survive any single program: a panicking collector
//! or a pathologically slow one yields a degraded-but-schema-stable
//! vector plus a recorded [`PipelineError`] — the batch never dies.
//!
//! * **Panics** are contained with `catch_unwind`; the payload message is
//!   preserved in the error.
//! * **Budgets** are enforced at the extraction boundary: the elapsed
//!   wall clock is checked when the extractor returns, and an over-budget
//!   program is degraded and flagged. (Pre-empting a non-cooperative
//!   collector mid-flight would need process isolation — a worker thread
//!   cannot be killed safely; this is the documented trade-off, and the
//!   hook where a future process-pool backend slots in.)

use crate::report::PipelineError;
use crate::Extractor;
use minilang::ast::Program;
use static_analysis::FeatureVector;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The outcome of one guarded extraction.
pub(crate) struct GuardedOutcome {
    pub features: FeatureVector,
    pub error: Option<PipelineError>,
    pub took: Duration,
}

/// Run `extractor` over `program` under a panic guard and an optional
/// wall-clock budget. On failure the extractor's schema-stable
/// [`Extractor::degraded`] vector is substituted.
pub(crate) fn guarded_extract<E: Extractor>(
    extractor: &E,
    program: &Program,
    budget: Option<Duration>,
) -> GuardedOutcome {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| extractor.extract(program)));
    let took = start.elapsed();

    match result {
        Ok(features) => match budget {
            Some(limit) if took > limit => GuardedOutcome {
                features: extractor.degraded(),
                error: Some(PipelineError::BudgetExceeded {
                    limit_ms: limit.as_millis() as u64,
                    took_ms: took.as_millis() as u64,
                }),
                took,
            },
            _ => GuardedOutcome {
                features,
                error: None,
                took,
            },
        },
        Err(payload) => GuardedOutcome {
            features: extractor.degraded(),
            // `&*payload`, not `&payload`: a `&Box<dyn Any>` would unsize
            // to a `&dyn Any` wrapping the box itself and every downcast
            // would miss.
            error: Some(PipelineError::Panicked(panic_message(&*payload))),
            took,
        },
    }
}

/// Best-effort extraction of the panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flaky;

    impl Extractor for Flaky {
        fn extract(&self, program: &Program) -> FeatureVector {
            if program.name == "bad" {
                panic!("injected failure in {}", program.name);
            }
            if program.name == "slow" {
                std::thread::sleep(Duration::from_millis(30));
            }
            [("f.ok".to_string(), 1.0)].into_iter().collect()
        }

        fn degraded(&self) -> FeatureVector {
            [("f.ok".to_string(), 0.0)].into_iter().collect()
        }
    }

    fn program(name: &str) -> Program {
        minilang::parse_program(
            name,
            minilang::Dialect::C,
            &[("m.c".into(), "fn f() { }".into())],
        )
        .unwrap()
    }

    #[test]
    fn clean_extraction_passes_through() {
        let out = guarded_extract(&Flaky, &program("good"), None);
        assert!(out.error.is_none());
        assert_eq!(out.features.get("f.ok"), Some(1.0));
    }

    #[test]
    fn panic_degrades_with_message() {
        let out = guarded_extract(&Flaky, &program("bad"), None);
        assert_eq!(
            out.features.get("f.ok"),
            Some(0.0),
            "degraded vector is schema-stable"
        );
        match out.error {
            Some(PipelineError::Panicked(msg)) => {
                assert!(msg.contains("injected failure"), "got: {msg:?}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_degrades_and_records_times() {
        let out = guarded_extract(&Flaky, &program("slow"), Some(Duration::from_millis(1)));
        assert_eq!(out.features.get("f.ok"), Some(0.0));
        match out.error {
            Some(PipelineError::BudgetExceeded { limit_ms, took_ms }) => {
                assert_eq!(limit_ms, 1);
                assert!(took_ms >= 20, "slept 30ms but took {took_ms}ms");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_is_not_triggered() {
        let out = guarded_extract(&Flaky, &program("good"), Some(Duration::from_secs(60)));
        assert!(out.error.is_none());
    }
}
