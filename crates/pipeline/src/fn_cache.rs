//! fn_cache — a keyed LRU store for per-function analysis entries.
//!
//! The whole-program [`FeatureCache`](crate::cache::FeatureCache) is
//! all-or-nothing: any edit invalidates the program's single entry. The
//! incremental engine instead caches one entry *per function*, keyed by a
//! fingerprint of that function's text (plus salt), so an edit invalidates
//! only the functions it touched. This store is the resident half of that
//! scheme: an in-memory `u64 → Arc<V>` map with approximate
//! least-recently-used eviction and hit/miss accounting. It is generic
//! over the entry type because this crate sits below the analysis crates
//! that define what a "function entry" holds.
//!
//! Eviction is batched: lookups stamp entries with a logical tick, and
//! when an insert finds the store full it drops the oldest ~1/8 of
//! entries in one sweep. That keeps the common path at one hash-map
//! operation while still bounding residency, which is what a long-lived
//! serve shard or `watch` daemon needs.

use std::collections::HashMap;
use std::sync::Arc;

/// Default entry capacity: comfortably holds several thousand-function
/// projects without letting a daemon grow unbounded.
pub const DEFAULT_FN_CAPACITY: usize = 65_536;

/// Hit/miss counters accumulated by a [`FnStore`] since construction (or
/// the last [`FnStore::take_counters`] call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnStoreCounters {
    /// Probes answered from the store.
    pub hits: u64,
    /// Probes that found no entry (the caller rebuilt and inserted).
    pub misses: u64,
}

/// An in-memory LRU map from function fingerprint to a shared entry.
#[derive(Debug)]
pub struct FnStore<V> {
    capacity: usize,
    tick: u64,
    counters: FnStoreCounters,
    entries: HashMap<u64, Slot<V>>,
}

#[derive(Debug)]
struct Slot<V> {
    last_used: u64,
    value: Arc<V>,
}

impl<V> FnStore<V> {
    /// A store bounded to `capacity` entries (0 means
    /// [`DEFAULT_FN_CAPACITY`]).
    pub fn new(capacity: usize) -> FnStore<V> {
        FnStore {
            capacity: if capacity == 0 {
                DEFAULT_FN_CAPACITY
            } else {
                capacity
            },
            tick: 0,
            counters: FnStoreCounters::default(),
            entries: HashMap::new(),
        }
    }

    /// Probe for `key`, counting a hit or miss and refreshing the entry's
    /// recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<V>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.counters.hits += 1;
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the entry for `key`, evicting the oldest ~1/8
    /// of entries first if the store is full.
    pub fn insert(&mut self, key: u64, value: Arc<V>) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.evict_oldest();
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Slot {
                last_used: self.tick,
                value,
            },
        );
    }

    fn evict_oldest(&mut self) {
        let drop_count = (self.capacity / 8).max(1);
        let mut ticks: Vec<u64> = self.entries.values().map(|s| s.last_used).collect();
        ticks.sort_unstable();
        // Every entry stamped at or before the threshold goes; ties are
        // all-or-nothing, which can only over-evict, never under-evict.
        let threshold = ticks[drop_count.min(ticks.len()) - 1];
        self.entries.retain(|_, slot| slot.last_used > threshold);
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters accumulated since construction or the last
    /// [`take_counters`](FnStore::take_counters).
    pub fn counters(&self) -> FnStoreCounters {
        self.counters
    }

    /// Drain and reset the hit/miss counters.
    pub fn take_counters(&mut self) -> FnStoreCounters {
        std::mem::take(&mut self.counters)
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut store: FnStore<u32> = FnStore::new(8);
        assert!(store.get(1).is_none());
        store.insert(1, Arc::new(10));
        assert_eq!(store.get(1).as_deref(), Some(&10));
        assert_eq!(store.counters(), FnStoreCounters { hits: 1, misses: 1 });
        assert_eq!(store.take_counters().hits, 1);
        assert_eq!(store.counters(), FnStoreCounters::default());
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        let mut store: FnStore<u64> = FnStore::new(16);
        for k in 0..16 {
            store.insert(k, Arc::new(k));
        }
        // Touch everything except key 0 so it is the coldest entry.
        for k in 1..16 {
            store.get(k);
        }
        store.insert(100, Arc::new(100));
        assert!(store.len() <= 16);
        assert!(store.get(100).is_some(), "new entry resident");
        assert!(store.get(0).is_none(), "coldest entry evicted");
        assert!(store.get(15).is_some(), "hot entry survives");
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut store: FnStore<u8> = FnStore::new(2);
        store.insert(1, Arc::new(1));
        store.insert(2, Arc::new(2));
        store.insert(2, Arc::new(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1).as_deref(), Some(&1));
        assert_eq!(store.get(2).as_deref(), Some(&3));
    }

    #[test]
    fn zero_capacity_means_default() {
        let store: FnStore<u8> = FnStore::new(0);
        assert!(store.is_empty());
        assert_eq!(store.capacity, DEFAULT_FN_CAPACITY);
    }
}
