//! FNV-1a 64-bit hashing for content-addressed cache keys.
//!
//! The cache key must be stable across processes and platforms, so the
//! std `DefaultHasher` (randomized, unspecified algorithm) is out. FNV-1a
//! is the classic tiny stable hash: one multiply and one xor per byte.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a {
            state: OFFSET_BASIS,
        }
    }
}

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    /// Hash a length-prefixed string: prefixing with the length keeps
    /// `("ab","c")` and `("a","bc")` from colliding when several strings
    /// are fed in sequence.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes())
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot convenience.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = Fnv1a::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
