//! clairvoyant-pipeline — the corpus-scale feature-extraction engine.
//!
//! The paper's testbed must "collect all the code properties from the
//! sample applications" across a 164-app corpus; this crate is the one
//! engine through which every such sweep flows. Four layers:
//!
//! 1. **Parallelism** — a std-only work-stealing thread pool
//!    ([`pool::parallel_map`]) fans the batch across `jobs` workers while
//!    preserving input order, so parallel output is byte-identical to
//!    sequential output.
//! 2. **Incrementality** — a content-addressed feature cache
//!    ([`cache::FeatureCache`]): FNV-1a over source + dialect + the
//!    collector-schema version, with an optional JSONL store on disk.
//!    Warm re-runs of an unchanged corpus skip extraction entirely.
//! 3. **Fault isolation** — each program runs under `catch_unwind` with
//!    an optional per-program wall-clock budget; a panicking or
//!    over-budget extraction yields the extractor's degraded but
//!    schema-stable vector plus a recorded [`PipelineError`], never a
//!    dead batch.
//! 4. **Observability** — per-stage timings, cache hit/miss counters,
//!    programs/sec and a progress event channel, summarized in a
//!    [`PipelineReport`] (with one-line JSON for BENCH_* tracking).
//!
//! The engine is generic over the [`Extractor`] so it does not depend on
//! the `clairvoyant` core crate (which implements `Extractor` for its
//! `Testbed` and builds its training pipeline on top).
//!
//! ```no_run
//! use pipeline::{Extractor, JobSpec, Pipeline, PipelineConfig};
//! # struct MyExtractor;
//! # impl Extractor for MyExtractor {
//! #     fn extract(&self, _: &minilang::ast::Program) -> static_analysis::FeatureVector {
//! #         static_analysis::FeatureVector::new()
//! #     }
//! # }
//! # let (program_refs, jobs): (Vec<minilang::ast::Program>, Vec<JobSpec>) = (vec![], vec![]);
//! let mut engine = Pipeline::with_config(MyExtractor, PipelineConfig::default().jobs(4));
//! let batch = engine.run(&jobs);
//! println!("{}", batch.report);
//! ```

pub mod cache;
pub mod fault;
pub mod fn_cache;
pub mod fnv;
pub mod pool;
pub mod report;

pub use cache::{cache_key, CacheMode, FeatureCache};
pub use fn_cache::{FnStore, FnStoreCounters};
pub use pool::{default_workers, parallel_map};
pub use report::{PipelineError, PipelineReport, StageTimings};

use minilang::ast::Program;
use minilang::Dialect;
use static_analysis::FeatureVector;
use std::sync::mpsc::Sender;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A feature extractor the pipeline can drive.
///
/// Implementations must be pure per program (same program → same vector):
/// the cache and the parallel/sequential-equivalence guarantee both rely
/// on it.
pub trait Extractor: Sync {
    /// Extract the full feature vector for one program.
    fn extract(&self, program: &Program) -> FeatureVector;

    /// Version of the collector schema. Bump whenever a collector is
    /// added, removed, or changes meaning — it participates in the cache
    /// key, so a bump invalidates every cached vector at once.
    fn schema_version(&self) -> u64 {
        1
    }

    /// Digest of the collector *set* actually wired into this extractor
    /// (collector names, engine revision, …). Participates in the cache
    /// key alongside [`schema_version`], so a vector cached by a testbed
    /// with one collector set is never served to a testbed with another.
    /// The default (0) is for extractors whose schema version alone
    /// describes them.
    ///
    /// [`schema_version`]: Extractor::schema_version
    fn fingerprint(&self) -> u64 {
        0
    }

    /// Drain the per-collector wall-time breakdown accumulated since the
    /// last call: `(collector name, micros)`, summed across programs and
    /// workers. The pipeline folds it into
    /// [`report::PipelineReport::collectors`] after each batch. Default:
    /// empty (no breakdown).
    fn take_collector_timings(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// The schema-stable vector substituted when extraction fails (every
    /// feature name present, typically all zeros). The default is an
    /// empty vector, which is only schema-stable for schema-less
    /// extractors — real extractors should override.
    fn degraded(&self) -> FeatureVector {
        FeatureVector::new()
    }
}

/// Closures are extractors too (handy in tests and ad-hoc sweeps).
impl<F> Extractor for F
where
    F: Fn(&Program) -> FeatureVector + Sync,
{
    fn extract(&self, program: &Program) -> FeatureVector {
        self(program)
    }
}

/// One program to extract: the parsed AST plus the raw sources the cache
/// key is computed from.
#[derive(Clone, Copy)]
pub struct JobSpec<'a> {
    /// Program name (reporting and events only — not part of the cache
    /// key, which is content-addressed).
    pub name: &'a str,
    pub dialect: Dialect,
    /// `(path, source)` modules, exactly as fed to the parser.
    pub files: &'a [(String, String)],
    pub program: &'a Program,
}

impl<'a> JobSpec<'a> {
    /// Build a job from a parsed program plus its sources.
    pub fn new(program: &'a Program, files: &'a [(String, String)]) -> JobSpec<'a> {
        JobSpec {
            name: &program.name,
            dialect: program.dialect,
            files,
            program,
        }
    }
}

/// Progress events, delivered over an optional channel while a batch
/// runs. Receivers drive progress bars / logs; a dropped receiver is
/// silently tolerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineEvent {
    /// A program began extraction (cache misses only).
    Started { program: String },
    /// A program finished, from cache or extraction.
    Finished {
        program: String,
        cache_hit: bool,
        micros: u64,
        degraded: bool,
    },
    /// The whole batch finished.
    BatchDone {
        programs: usize,
        cache_hits: usize,
        wall_micros: u64,
    },
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Worker threads; 0 = one per available core.
    pub jobs: usize,
    /// Cache behaviour (default: in-memory).
    pub cache: CacheMode,
    /// Per-program wall-clock budget; over-budget programs degrade.
    pub budget: Option<Duration>,
}

impl PipelineConfig {
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    pub fn cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Result of one program within a batch.
#[derive(Debug, Clone)]
pub struct ProgramOutput {
    pub name: String,
    pub features: FeatureVector,
    /// Served from the feature cache?
    pub cache_hit: bool,
    /// Present iff the vector is the degraded substitute.
    pub error: Option<PipelineError>,
}

/// Result of one batch: per-program outputs (input order) + the report.
#[derive(Debug, Clone)]
pub struct BatchResult {
    pub outputs: Vec<ProgramOutput>,
    pub report: PipelineReport,
}

impl BatchResult {
    /// `(name, features)` pairs in input order — the shape the training
    /// stage consumes.
    pub fn named_features(&self) -> Vec<(String, &FeatureVector)> {
        self.outputs
            .iter()
            .map(|o| (o.name.clone(), &o.features))
            .collect()
    }
}

/// The engine: an extractor + cache + pool, reusable across batches (the
/// in-memory cache stays warm between [`Pipeline::run`] calls).
pub struct Pipeline<E: Extractor> {
    extractor: E,
    config: PipelineConfig,
    cache: FeatureCache,
    progress: Option<Sender<PipelineEvent>>,
}

impl<E: Extractor> Pipeline<E> {
    /// An engine with the default configuration (auto workers, in-memory
    /// cache, no budget).
    pub fn new(extractor: E) -> Pipeline<E> {
        Pipeline::with_config(extractor, PipelineConfig::default())
    }

    pub fn with_config(extractor: E, config: PipelineConfig) -> Pipeline<E> {
        let cache = FeatureCache::open(config.cache.clone());
        Pipeline {
            extractor,
            config,
            cache,
            progress: None,
        }
    }

    /// Subscribe a progress channel; events from subsequent [`run`]
    /// calls are sent to it. Returns `self` for chaining.
    ///
    /// [`run`]: Pipeline::run
    pub fn with_progress(mut self, sender: Sender<PipelineEvent>) -> Pipeline<E> {
        self.progress = Some(sender);
        self
    }

    pub fn extractor(&self) -> &E {
        &self.extractor
    }

    /// Resident cache entries (loaded + inserted).
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// Run one batch. Outputs come back in input order; the batch always
    /// completes — individual failures degrade, they don't propagate.
    pub fn run(&mut self, jobs: &[JobSpec]) -> BatchResult {
        let batch_start = Instant::now();
        let workers = if self.config.jobs == 0 {
            pool::default_workers()
        } else {
            self.config.jobs
        };

        // Stage 1: hash sources and probe the cache (cheap, sequential).
        let lookup_start = Instant::now();
        let schema_version = self.extractor.schema_version();
        let fingerprint = self.extractor.fingerprint();
        let keys: Vec<u64> = jobs
            .iter()
            .map(|j| cache_key(schema_version, fingerprint, j.dialect, j.files))
            .collect();
        let mut outputs: Vec<Option<ProgramOutput>> = jobs
            .iter()
            .zip(&keys)
            .map(|(job, key)| {
                self.cache.get(*key).map(|fv| ProgramOutput {
                    name: job.name.to_string(),
                    features: fv.clone(),
                    cache_hit: true,
                    error: None,
                })
            })
            .collect();
        let cache_lookup = lookup_start.elapsed();

        let misses: Vec<usize> = (0..jobs.len()).filter(|&i| outputs[i].is_none()).collect();
        let cache_hits = jobs.len() - misses.len();
        for out in outputs.iter().flatten() {
            self.emit(PipelineEvent::Finished {
                program: out.name.clone(),
                cache_hit: true,
                micros: 0,
                degraded: false,
            });
        }

        // Stage 2: extract the misses on the pool, order-preserving.
        let progress = self.progress.as_ref().map(|s| Mutex::new(s.clone()));
        let extractor = &self.extractor;
        let budget = self.config.budget;
        let extracted: Vec<fault::GuardedOutcome> =
            pool::parallel_map(workers, &misses, |_, &job_index| {
                let job = &jobs[job_index];
                if let Some(p) = &progress {
                    let _ = p.lock().unwrap().send(PipelineEvent::Started {
                        program: job.name.to_string(),
                    });
                }
                let outcome = fault::guarded_extract(extractor, job.program, budget);
                if let Some(p) = &progress {
                    let _ = p.lock().unwrap().send(PipelineEvent::Finished {
                        program: job.name.to_string(),
                        cache_hit: false,
                        micros: outcome.took.as_micros() as u64,
                        degraded: outcome.error.is_some(),
                    });
                }
                outcome
            });

        // Stage 3: fold results back in, fill the cache, persist.
        let mut errors: Vec<(String, PipelineError)> = Vec::new();
        let mut extract_time = Duration::ZERO;
        for (&job_index, outcome) in misses.iter().zip(extracted) {
            let job = &jobs[job_index];
            extract_time += outcome.took;
            if let Some(error) = &outcome.error {
                errors.push((job.name.to_string(), error.clone()));
            } else {
                // Only clean vectors are cacheable: a degraded vector is
                // a symptom, not a property of the sources.
                self.cache.insert(keys[job_index], outcome.features.clone());
            }
            outputs[job_index] = Some(ProgramOutput {
                name: job.name.to_string(),
                features: outcome.features,
                cache_hit: false,
                error: outcome.error,
            });
        }
        let persist_start = Instant::now();
        // Cache persistence is best-effort: an unwritable directory cost
        // us the warm start, not the batch.
        let _ = self.cache.persist();
        let cache_persist = persist_start.elapsed();

        let wall = batch_start.elapsed();
        self.emit(PipelineEvent::BatchDone {
            programs: jobs.len(),
            cache_hits,
            wall_micros: wall.as_micros() as u64,
        });

        let report = PipelineReport {
            programs: jobs.len(),
            jobs: workers.clamp(1, jobs.len().max(1)),
            cache_hits,
            cache_misses: misses.len(),
            errors,
            stages: StageTimings {
                cache_lookup,
                extract: extract_time,
                cache_persist,
            },
            collectors: self.extractor.take_collector_timings(),
            wall,
        };
        BatchResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every job resolved"))
                .collect(),
            report,
        }
    }

    fn emit(&self, event: PipelineEvent) {
        if let Some(sender) = &self.progress {
            let _ = sender.send(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn program(name: &str, body: &str) -> (Program, Vec<(String, String)>) {
        let files = vec![("m.c".to_string(), body.to_string())];
        let program = minilang::parse_program(name, Dialect::C, &files).unwrap();
        (program, files)
    }

    fn toy_extractor(program: &Program) -> FeatureVector {
        [
            ("toy.functions".to_string(), program.function_count() as f64),
            ("toy.modules".to_string(), program.modules.len() as f64),
        ]
        .into_iter()
        .collect()
    }

    fn corpus() -> Vec<(Program, Vec<(String, String)>)> {
        (0..6)
            .map(|i| {
                program(
                    &format!("app-{i}"),
                    &format!("fn f{i}(a: int) -> int {{ return a + {i}; }}"),
                )
            })
            .collect()
    }

    #[test]
    fn batch_outputs_preserve_input_order() {
        let apps = corpus();
        let jobs: Vec<JobSpec> = apps.iter().map(|(p, f)| JobSpec::new(p, f)).collect();
        let mut engine = Pipeline::with_config(toy_extractor, PipelineConfig::default().jobs(3));
        let batch = engine.run(&jobs);
        let names: Vec<&str> = batch.outputs.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["app-0", "app-1", "app-2", "app-3", "app-4", "app-5"]
        );
        assert!(batch.report.errors.is_empty());
        assert_eq!(batch.report.cache_misses, 6);
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let apps = corpus();
        let jobs: Vec<JobSpec> = apps.iter().map(|(p, f)| JobSpec::new(p, f)).collect();
        let calls = AtomicUsize::new(0);
        let counting = |p: &Program| {
            calls.fetch_add(1, Ordering::SeqCst);
            toy_extractor(p)
        };
        let mut engine = Pipeline::new(&counting as &(dyn Fn(&Program) -> FeatureVector + Sync));
        let cold = engine.run(&jobs);
        let warm = engine.run(&jobs);
        assert_eq!(cold.report.cache_hits, 0);
        assert_eq!(warm.report.cache_hits, 6);
        assert_eq!(warm.report.cache_misses, 0);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            6,
            "warm run must not re-extract"
        );
        for (a, b) in cold.outputs.iter().zip(&warm.outputs) {
            assert_eq!(a.features, b.features);
        }
    }

    #[test]
    fn one_panicking_program_degrades_alone() {
        struct Brittle;
        impl Extractor for Brittle {
            fn extract(&self, program: &Program) -> FeatureVector {
                if program.name == "app-3" {
                    panic!("collector bug on {}", program.name);
                }
                toy_extractor(program)
            }
            fn degraded(&self) -> FeatureVector {
                [
                    ("toy.functions".to_string(), 0.0),
                    ("toy.modules".to_string(), 0.0),
                ]
                .into_iter()
                .collect()
            }
        }
        let apps = corpus();
        let jobs: Vec<JobSpec> = apps.iter().map(|(p, f)| JobSpec::new(p, f)).collect();
        let mut engine = Pipeline::with_config(Brittle, PipelineConfig::default().jobs(2));
        let batch = engine.run(&jobs);
        assert_eq!(batch.outputs.len(), 6, "batch survives the panic");
        assert_eq!(batch.report.errors.len(), 1);
        assert_eq!(batch.report.errors[0].0, "app-3");
        let bad = &batch.outputs[3];
        assert!(bad.error.is_some());
        assert_eq!(
            bad.features.names(),
            batch.outputs[0].features.names(),
            "schema-stable"
        );
        assert!(batch.outputs.iter().filter(|o| o.error.is_none()).count() == 5);
    }

    #[test]
    fn degraded_vectors_are_not_cached() {
        struct FailOnce {
            failed: AtomicUsize,
        }
        impl Extractor for FailOnce {
            fn extract(&self, program: &Program) -> FeatureVector {
                if program.name == "app-0" && self.failed.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                toy_extractor(program)
            }
        }
        let apps = corpus();
        let jobs: Vec<JobSpec> = apps.iter().map(|(p, f)| JobSpec::new(p, f)).collect();
        let mut engine = Pipeline::with_config(
            FailOnce {
                failed: AtomicUsize::new(0),
            },
            PipelineConfig::default().jobs(1),
        );
        let first = engine.run(&jobs);
        assert_eq!(first.report.errors.len(), 1);
        // The transient failure healed: the retry extracts for real.
        let second = engine.run(&jobs);
        assert!(second.report.errors.is_empty());
        assert_eq!(
            second.report.cache_hits, 5,
            "only the failed program re-ran"
        );
        assert_eq!(second.outputs[0].features.get("toy.functions"), Some(1.0));
    }

    #[test]
    fn progress_events_cover_the_batch() {
        let apps = corpus();
        let jobs: Vec<JobSpec> = apps.iter().map(|(p, f)| JobSpec::new(p, f)).collect();
        let (tx, rx) = std::sync::mpsc::channel();
        let mut engine = Pipeline::new(toy_extractor).with_progress(tx);
        engine.run(&jobs);
        let events: Vec<PipelineEvent> = rx.try_iter().collect();
        let finished = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::Finished { .. }))
            .count();
        assert_eq!(finished, 6);
        assert!(matches!(
            events.last(),
            Some(PipelineEvent::BatchDone { programs: 6, .. })
        ));
    }

    #[test]
    fn parallel_equals_sequential() {
        let apps = corpus();
        let jobs: Vec<JobSpec> = apps.iter().map(|(p, f)| JobSpec::new(p, f)).collect();
        let sequential = Pipeline::with_config(
            toy_extractor,
            PipelineConfig::default().jobs(1).cache(CacheMode::Off),
        )
        .run(&jobs);
        let parallel = Pipeline::with_config(
            toy_extractor,
            PipelineConfig::default().jobs(4).cache(CacheMode::Off),
        )
        .run(&jobs);
        for (a, b) in sequential.outputs.iter().zip(&parallel.outputs) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.features, b.features);
        }
    }
}
