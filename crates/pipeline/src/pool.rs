//! A std-only work-stealing thread pool for batch jobs.
//!
//! No external dependencies (the registry is offline), no unsafe: each
//! worker owns a deque of job indices; when its deque runs dry it steals
//! from the *back* of a sibling's deque (the classic Blumofe–Leiserson
//! discipline — owners pop LIFO-adjacent work from the front, thieves
//! take the largest remaining tail). Results flow back over an mpsc
//! channel tagged with the job index, so the output order is always the
//! input order regardless of scheduling — parallel runs are
//! byte-identical to sequential runs.
//!
//! Jobs are never re-queued, so a worker may exit as soon as every deque
//! is empty: whatever is still in flight belongs to another worker.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// Map `f` over `items` on `workers` threads, preserving input order.
///
/// `workers` is clamped to `[1, items.len()]`; with one worker the map
/// runs inline on the calling thread (no spawn overhead, identical
/// semantics).
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Contiguous chunks: worker w starts on its own slice of the batch,
    // so steals only happen once the tail of the batch is reached.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * items.len() / workers;
            let hi = (w + 1) * items.len() / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();

    thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = next_job(queues, w) {
                    // A send can only fail if the receiver was dropped,
                    // which cannot happen while this scope is alive.
                    let _ = tx.send((i, f(i, &items[i])));
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });

    out.into_iter()
        .map(|r| r.expect("worker completed every job"))
        .collect()
}

/// Pop from our own queue, else steal from the busiest sibling.
fn next_job(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(i) = queues[own].lock().unwrap().pop_front() {
        return Some(i);
    }
    // Steal from the back of the longest sibling queue.
    let victim = (0..queues.len())
        .filter(|&w| w != own)
        .max_by_key(|&w| queues[w].lock().unwrap().len())?;
    queues[victim].lock().unwrap().pop_back()
}

/// The worker count to use when the caller passes 0 ("auto").
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let doubled = parallel_map(4, &items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_sequential() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            parallel_map(1, &items, |i, &x| (i as u64, x)),
            items
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as u64, x))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let n = 200;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        parallel_map(8, &items, |_, &i| {
            counters[i].fetch_add(1, Ordering::SeqCst)
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        parallel_map(4, &items, |_, _| {
            seen.lock().unwrap().insert(thread::current().id());
            // Give the scheduler a chance to overlap workers.
            thread::yield_now();
        });
        // All four workers existed; on a single-core box the scheduler may
        // still have run everything on few of them, so only assert > 0.
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn empty_batch_is_fine() {
        let items: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &items, |_, &x| x).is_empty());
    }
}
