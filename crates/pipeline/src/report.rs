//! Pipeline observability: per-stage timings, cache counters, errors,
//! throughput — everything a corpus-scale sweep needs to print.

use std::fmt;
use std::time::Duration;

/// Why one program's extraction degraded (the batch itself never fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A collector panicked; the payload message is preserved.
    Panicked(String),
    /// Extraction finished but blew the per-program wall-clock budget.
    BudgetExceeded { limit_ms: u64, took_ms: u64 },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Panicked(msg) => write!(f, "collector panicked: {msg}"),
            PipelineError::BudgetExceeded { limit_ms, took_ms } => {
                write!(f, "budget exceeded: {took_ms}ms > {limit_ms}ms limit")
            }
        }
    }
}

/// Cumulative wall time per pipeline stage, summed across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Hashing sources + cache probes.
    pub cache_lookup: Duration,
    /// Running the extractor over cache misses.
    pub extract: Duration,
    /// Writing the on-disk store back out.
    pub cache_persist: Duration,
}

/// The summary of one batch run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Programs in the batch.
    pub programs: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Programs served from the feature cache.
    pub cache_hits: usize,
    /// Programs that ran the extractor.
    pub cache_misses: usize,
    /// Programs that degraded, with why (`(program name, error)`).
    pub errors: Vec<(String, PipelineError)>,
    /// Per-stage cumulative timings (sum over workers, so `extract` can
    /// exceed `wall` when workers overlap).
    pub stages: StageTimings,
    /// Per-collector wall time within the extract stage:
    /// `(collector name, micros)`, summed across programs and workers.
    /// Empty for extractors without a breakdown.
    pub collectors: Vec<(String, u64)>,
    /// End-to-end wall time of the batch.
    pub wall: Duration,
}

impl PipelineReport {
    /// Programs per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.programs as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of the batch served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.programs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.programs as f64
        }
    }

    /// Machine-readable single-line JSON for BENCH_* trajectory tracking.
    pub fn to_json(&self) -> String {
        let errors: Vec<String> = self
            .errors
            .iter()
            .map(|(name, e)| {
                format!(
                    "{{\"program\":{},\"error\":{}}}",
                    json_str(name),
                    json_str(&e.to_string())
                )
            })
            .collect();
        let collectors: Vec<String> = self
            .collectors
            .iter()
            .map(|(name, micros)| format!("{}:{micros}", json_str(name)))
            .collect();
        format!(
            "{{\"programs\":{},\"jobs\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"hit_rate\":{:.4},\"wall_ms\":{:.3},\"cache_lookup_ms\":{:.3},\
             \"extract_ms\":{:.3},\"cache_persist_ms\":{:.3},\
             \"programs_per_sec\":{:.3},\"collectors_us\":{{{}}},\"errors\":[{}]}}",
            self.programs,
            self.jobs,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.wall.as_secs_f64() * 1e3,
            self.stages.cache_lookup.as_secs_f64() * 1e3,
            self.stages.extract.as_secs_f64() * 1e3,
            self.stages.cache_persist.as_secs_f64() * 1e3,
            self.throughput(),
            collectors.join(","),
            errors.join(",")
        )
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: {} programs on {} worker(s) in {:.1}ms ({:.1} programs/sec)",
            self.programs,
            self.jobs,
            self.wall.as_secs_f64() * 1e3,
            self.throughput()
        )?;
        writeln!(
            f,
            "  cache: {} hits / {} misses ({:.0}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0
        )?;
        write!(
            f,
            "  stages: lookup {:.1}ms, extract {:.1}ms, persist {:.1}ms",
            self.stages.cache_lookup.as_secs_f64() * 1e3,
            self.stages.extract.as_secs_f64() * 1e3,
            self.stages.cache_persist.as_secs_f64() * 1e3
        )?;
        if !self.collectors.is_empty() {
            let parts: Vec<String> = self
                .collectors
                .iter()
                .map(|(name, micros)| format!("{name} {:.1}ms", *micros as f64 / 1e3))
                .collect();
            write!(f, "\n  collectors: {}", parts.join(", "))?;
        }
        for (name, e) in &self.errors {
            write!(f, "\n  degraded: {name}: {e}")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_hit_rate() {
        let report = PipelineReport {
            programs: 10,
            jobs: 2,
            cache_hits: 9,
            cache_misses: 1,
            wall: Duration::from_millis(500),
            ..Default::default()
        };
        assert!((report.throughput() - 20.0).abs() < 1e-9);
        assert!((report.hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn json_is_one_line_and_escaped() {
        let report = PipelineReport {
            programs: 1,
            jobs: 1,
            cache_misses: 1,
            errors: vec![("we\"ird".into(), PipelineError::Panicked("boom\n".into()))],
            ..Default::default()
        };
        let json = report.to_json();
        assert_eq!(json.lines().count(), 1);
        assert!(json.contains("\\\"ird"));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn collector_breakdown_in_json_and_display() {
        let report = PipelineReport {
            programs: 1,
            jobs: 1,
            cache_misses: 1,
            collectors: vec![("context".into(), 1500), ("taint".into(), 250)],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"collectors_us\":{\"context\":1500,\"taint\":250}"));
        let text = report.to_string();
        assert!(text.contains("collectors: context 1.5ms, taint 0.2ms"));
        // No breakdown → no line, and an empty JSON object.
        let bare = PipelineReport::default();
        assert!(bare.to_json().contains("\"collectors_us\":{}"));
        assert!(!bare.to_string().contains("collectors:"));
    }

    #[test]
    fn display_mentions_degraded_programs() {
        let report = PipelineReport {
            programs: 2,
            jobs: 1,
            cache_misses: 2,
            errors: vec![("app-7".into(), PipelineError::Panicked("x".into()))],
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("degraded: app-7"));
    }
}
