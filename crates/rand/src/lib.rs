//! In-tree, dependency-free stand-in for the tiny slice of the `rand`
//! crate this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! real `rand` cannot be fetched. This shim provides the same *paths and
//! call signatures* (`rand::rngs::StdRng`, `rand::Rng`,
//! `rand::SeedableRng`, `rand::seq::SliceRandom`) backed by a
//! [splitmix64](https://prng.di.unimi.it/splitmix64.c) generator — a
//! 64-bit state, statistically solid, trivially seedable PRNG.
//!
//! Properties the workspace relies on and this shim preserves:
//!
//! * **Determinism** — `seed_from_u64(s)` yields the same stream on every
//!   platform and every run; the synthetic corpus stays a pure function of
//!   its configuration.
//! * **Stream independence** — distinct seeds give uncorrelated streams
//!   (splitmix64 is the generator the reference `rand` itself uses to
//!   expand `seed_from_u64` seeds).
//!
//! The *values* drawn for a given seed differ from the real `StdRng`
//! (ChaCha12), so absolute numbers in any previously recorded corpus
//! change; all corpus-level statistics are calibrated, not hard-coded, so
//! downstream behaviour is preserved.

use std::ops::{Range, RangeInclusive};

/// Derive an independent stream seed from a `root` seed and a `stream`
/// index — one splitmix64 finalizer pass over their combination.
///
/// Parallel consumers (forest trees, CV folds) seed a fresh generator
/// from `derive_seed(root, i)` for task `i`; each task's stream then
/// depends only on `(root, i)`, never on which thread ran it or in what
/// order, which is what makes parallel training byte-identical to
/// sequential training.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Types drawable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`]. The output type `T` is a trait
/// parameter (mirroring the real `rand`) so that return-type inference
/// fixes the element type of a bare range literal: `let i: usize =
/// rng.gen_range(0..4)` types the literal as `Range<usize>`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        // The closed upper bound is hit with probability 0; treating the
        // range as half-open keeps the math simple and is exactly what
        // the callers (quality factors in [0, 1]) expect.
        start + rng.next_f64() * (end - start)
    }
}

/// The user-facing draw methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (`shuffle`, `choose`) — the `rand::seq` subset in use.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..18usize);
            assert!((3..18).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        // splitmix64 passes BigCrush; this just guards against a typo in
        // the mixing constants.
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0..8usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        use super::derive_seed;
        let mut seen = std::collections::HashSet::new();
        for root in [0u64, 42, u64::MAX] {
            for stream in 0..100 {
                assert_eq!(derive_seed(root, stream), derive_seed(root, stream));
                assert!(seen.insert(derive_seed(root, stream)));
            }
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        let original = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, original, "32 elements staying put is ~impossible");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(original.contains(v.choose(&mut r).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
