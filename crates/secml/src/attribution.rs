//! Exact per-feature attribution for compiled models.
//!
//! For every scored row this module answers "*which columns moved the
//! prediction, and by how much*" with a Saabas-style path decomposition:
//! walking a flattened tree from the root, each split reassigns the
//! expected leaf value from the parent's subtree to the taken child's,
//! and that change is credited to the split feature. Summed over a
//! forest and divided by the tree count, the credits decompose the
//! prediction around a per-model baseline (the leaf-count-weighted
//! expectation of the empty query). Linear and logistic models decompose
//! their margin into `weight × value` terms, gaussian NB into per-feature
//! class-1-minus-class-0 log-likelihood terms; k-NN has no additive
//! structure and degrades to an all-baseline attribution.
//!
//! **The invariant is bitwise, not approximate**: folding
//! `baseline + c_0 + c_1 + …` in column order reproduces
//! [`RowAttribution::score`] exactly, and `score`/`prediction` are
//! bit-identical to what [`CompiledClassifier::predict_batch`] /
//! [`CompiledRegressor::predict_batch`] emit for the same row. Floating
//! point addition is not associative, so raw path credits only sum to
//! the prediction within rounding; [`exactify`] closes the gap by
//! folding the residual into the last nonzero credit (a few-ulp nudge on
//! a feature that already dominates), which makes the invariant hold by
//! construction for every model family, worker count, and block size.
//!
//! Tree attribution is batched exactly like scoring: rows are gathered
//! by [`for_each_block`] into the same row-major scratch layout, and
//! every tree walks all [`BLOCK_ROWS`] rows via the packed
//! [`KernelTables`] before the next tree starts. Crediting is split off
//! the descent so the hot loop stays the scoring kernel verbatim
//! (branch-free, leaf-blind, four loads and a select per step): each
//! edge's credit `E[child] − E[parent]` depends only on the child
//! reached, so it is precomputed per node ([`Credits`]) and deposited by
//! a short parent-pointer walk *up* from the landed leaf — actual path
//! length, not padded max depth, and no per-step leaf test. Per row,
//! credits accumulate in the same (tree-major, leaf-to-root) order as
//! the scalar walk, so batched and scalar attributions are bit-identical.

use crate::dataset::ColMatrix;
use crate::infer::{
    for_each_block, sq_dist, CompiledClassifier, CompiledRegressor, FlatForest, FlatTree,
    KernelTables, BLOCK_ROWS, LANES, LEAF,
};

/// One row's decomposed prediction.
///
/// `contributions[j]` is column `j`'s credit in *score space* (the
/// prediction itself for trees, forests and linear regression; the
/// pre-sigmoid margin for logistic regression; the class-1-vs-class-0
/// log-odds margin for gaussian NB). Folding `baseline` plus the
/// contributions in column order reproduces `score` bit-for-bit (see
/// [`fold`]), and `prediction` is bit-identical to the batched scoring
/// kernels' output for the same row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowAttribution {
    /// Expected score of the empty query (model-only prior).
    pub baseline: f64,
    /// Per-column credits; `baseline + Σ contributions == score` bitwise.
    pub contributions: Vec<f64>,
    /// The decomposed quantity: the model's score-space output.
    pub score: f64,
    /// The model's prediction, bit-identical to `predict_batch`.
    pub prediction: f64,
}

impl RowAttribution {
    /// An attribution with no feature credits: baseline, score and
    /// prediction all equal `value`. Used for models (or inputs) without
    /// additive structure — empty forests, unfitted NB, k-NN.
    fn constant(value: f64, width: usize) -> RowAttribution {
        RowAttribution {
            baseline: value,
            contributions: vec![exact_zero(value); width],
            score: value,
            prediction: value,
        }
    }
}

/// The canonical verification fold: `baseline + c_0 + c_1 + …` in
/// column order, one rounding per addition.
pub fn fold(baseline: f64, contributions: &[f64]) -> f64 {
    let mut acc = baseline;
    for &c in contributions {
        acc += c;
    }
    acc
}

/// A zero that keeps `value + 0 == value` bitwise: `-0.0 + 0.0` is
/// `+0.0`, so a negative-zero target needs negative-zero padding.
fn exact_zero(target: f64) -> f64 {
    if target == 0.0 && target.is_sign_negative() {
        -0.0
    } else {
        0.0
    }
}

/// Step `x` one representable value toward `+∞` (`up`) or `-∞`.
fn next_toward(x: f64, up: bool) -> f64 {
    if x == 0.0 {
        let tiny = f64::from_bits(1);
        return if up { tiny } else { -tiny };
    }
    let bits = x.to_bits();
    let bits = if (x > 0.0) == up { bits + 1 } else { bits - 1 };
    f64::from_bits(bits)
}

/// Force `fold(baseline, bins) == target` *bitwise* by absorbing the
/// floating-point residual into the last nonzero bin (or the baseline
/// when every bin is zero).
///
/// The correction slot is the last nonzero bin, so the fold past it only
/// adds exact zeros and the problem reduces to one addition:
/// `prefix + bins[slot] == target`. A Newton step
/// (`bins[slot] += target − fold`) lands exactly whenever the residual
/// subtraction is exact (Sterbenz: always, once the fold is within a
/// factor of two of the target — i.e. after at most one step in the
/// common case); the ulp walk covers the remaining rounding cases, and
/// a degenerate all-baseline attribution guarantees the invariant even
/// for non-finite targets (NaN leaves, overflowing margins).
fn exactify(baseline: &mut f64, bins: &mut [f64], target: f64) {
    if fold(*baseline, bins).to_bits() == target.to_bits() {
        return;
    }
    if target.is_finite() {
        let slot = bins.iter().rposition(|&b| b != 0.0);
        for _ in 0..32 {
            let f = fold(*baseline, bins);
            if f.to_bits() == target.to_bits() {
                return;
            }
            let adjustment = target - f;
            if !adjustment.is_finite() {
                break;
            }
            match slot {
                Some(j) => bins[j] += adjustment,
                None => *baseline += adjustment,
            }
        }
        for _ in 0..256 {
            let f = fold(*baseline, bins);
            if f.to_bits() == target.to_bits() {
                return;
            }
            if !f.is_finite() || f == target {
                break; // ±0 sign mismatch: ulp steps cannot fix it
            }
            let up = f < target;
            match slot {
                Some(j) => bins[j] = next_toward(bins[j], up),
                None => *baseline = next_toward(*baseline, up),
            }
        }
    }
    // Last resort: give the whole score to the baseline. Exact for any
    // target, including NaN and signed zeros.
    *baseline = target;
    let zero = exact_zero(target);
    bins.iter_mut().for_each(|b| *b = zero);
}

/// Leaf-count-weighted expected value of every subtree, via the same
/// reverse pass as `node_depths` (children follow their parent in the
/// preorder table, so suffix values are final when read). Flat tables
/// carry no training cover counts, so every leaf weighs 1 — the
/// expectation of a uniformly random root-to-leaf descent.
fn subtree_expected(tree: &FlatTree) -> Vec<f64> {
    let n = tree.feature.len();
    let mut expected = vec![0.0f64; n];
    let mut leaves = vec![0u64; n];
    for i in (0..n).rev() {
        if tree.feature[i] == LEAF {
            expected[i] = tree.threshold[i];
            leaves[i] = 1;
        } else {
            let (l, r) = (tree.left[i] as usize, tree.right[i] as usize);
            let (cl, cr) = (leaves[l], leaves[r]);
            leaves[i] = cl + cr;
            expected[i] = (expected[l] * cl as f64 + expected[r] * cr as f64) / (cl + cr) as f64;
        }
    }
    expected
}

/// A forest's derived attribution view, cached on [`FlatForest`] after
/// the first use: per-subtree expectations (baseline inputs) and the
/// per-edge credit tables.
#[derive(Debug, Clone)]
pub(crate) struct AttrTables {
    expected: Vec<f64>,
    credits: Credits,
}

impl FlatForest {
    fn attr_tables(&self) -> &AttrTables {
        self.attr.get_or_init(|| {
            let expected = subtree_expected(&self.nodes);
            let credits = Credits::build(&self.nodes, &expected);
            Box::new(AttrTables { expected, credits })
        })
    }
}

/// Per-edge credit tables for the leaf-to-root deposit walk. A preorder
/// flat tree gives every node a unique parent, so the credit a row earns
/// at a node — `E[node] − E[parent]`, owed to the parent's split feature
/// — is a per-node constant. Precomputing it turns attribution into the
/// *scoring* descent (branch-free, leaf-blind) plus a parent-pointer
/// walk up from the landed leaf that runs for the actual path length.
#[derive(Debug, Clone)]
struct Credits {
    /// `parent[i]` is `i`'s parent; roots point at themselves (the
    /// up-walk's stop condition).
    parent: Vec<u32>,
    /// The parent split's feature — which bin `delta` belongs to.
    feat: Vec<u32>,
    /// `expected[i] − expected[parent[i]]`; `0.0` at roots (never read).
    delta: Vec<f64>,
}

impl Credits {
    fn build(tree: &FlatTree, expected: &[f64]) -> Credits {
        let n = tree.feature.len();
        let mut credits = Credits {
            parent: (0..n as u32).collect(),
            feat: vec![0; n],
            delta: vec![0.0; n],
        };
        for i in 0..n {
            if tree.feature[i] == LEAF {
                continue;
            }
            for child in [tree.left[i] as usize, tree.right[i] as usize] {
                credits.parent[child] = i as u32;
                credits.feat[child] = tree.feature[i];
                credits.delta[child] = expected[child] - expected[i];
            }
        }
        credits
    }

    /// Deposit the path credits for the row that landed on `leaf`,
    /// leaf-edge first. Credits to features outside `bins` are dropped
    /// (narrow-row fallback) — `exactify` re-absorbs them.
    #[inline]
    fn deposit(&self, leaf: usize, bins: &mut [f64]) {
        let mut i = leaf;
        loop {
            let p = self.parent[i] as usize;
            if p == i {
                return;
            }
            if let Some(bin) = bins.get_mut(self.feat[i] as usize) {
                *bin += self.delta[i];
            }
            i = p;
        }
    }
}

/// Walk one tree for one row — the same branches as `score_from`
/// (missing features read 0.0, `NaN <= t` goes right) — then deposit the
/// path's credits and return the leaf value.
fn attribute_walk_row(
    nodes: &FlatTree,
    credits: &Credits,
    root: u32,
    row: &[f64],
    bins: &mut [f64],
) -> f64 {
    let mut i = root as usize;
    loop {
        let f = nodes.feature[i];
        if f == LEAF {
            credits.deposit(i, bins);
            return nodes.threshold[i];
        }
        let v = row.get(f as usize).copied().unwrap_or(0.0);
        i = if v <= nodes.threshold[i] {
            nodes.left[i]
        } else {
            nodes.right[i]
        } as usize;
    }
}

/// The blocked attribution kernel: one tree over every row of a
/// row-major block (a [`LANES`] multiple, as [`for_each_block`]
/// guarantees). The descent is the scoring kernel's verbatim — lanes
/// advance in lockstep through the packed [`KernelTables`] with no leaf
/// test (a finished lane self-loops under the `NaN` rule) — and each
/// lane's credits are then deposited by [`Credits::deposit`] from the
/// landed leaf, in the same per-row order as [`attribute_walk_row`].
/// `bins` is row-major (`width` per row);
/// `leaf_sink(row_in_block, leaf_value)` fires once per lane, including
/// for padding rows the caller must ignore (their bins are overwritten
/// or discarded, so crediting them is harmless).
#[allow(clippy::too_many_arguments)]
fn attribute_walk_block(
    nodes: &FlatTree,
    kt: &KernelTables,
    credits: &Credits,
    root: u32,
    depth: u32,
    block: &[f64],
    width: usize,
    bins: &mut [f64],
    leaf_sink: &mut impl FnMut(usize, f64),
) {
    let mut base = 0;
    for chunk in block.chunks_exact(width * LANES) {
        let mut idx = [root as usize; LANES];
        for _ in 0..depth {
            for (l, i) in idx.iter_mut().enumerate() {
                let fr = kt.feature_right[*i];
                let v = chunk[l * width + (fr >> 32) as usize];
                *i = if v <= kt.threshold[*i] {
                    *i + 1
                } else {
                    (fr & u64::from(u32::MAX)) as usize
                };
            }
        }
        for (l, &i) in idx.iter().enumerate() {
            leaf_sink(base + l, nodes.threshold[i]);
            credits.deposit(i, &mut bins[(base + l) * width..(base + l + 1) * width]);
        }
        base += LANES;
    }
}

/// Exactified attribution from raw credits: `score` becomes the fold
/// target, `prediction` is supplied by the caller (identical to `score`
/// for identity-link models).
fn finish_additive(
    mut baseline: f64,
    mut contributions: Vec<f64>,
    target: f64,
    prediction: f64,
) -> RowAttribution {
    exactify(&mut baseline, &mut contributions, target);
    RowAttribution {
        baseline,
        contributions,
        score: target,
        prediction,
    }
}

/// Scalar forest attribution for one row: every tree walked in order,
/// leaf values folded like `score_row`, credits and baseline divided by
/// the tree count bin-by-bin.
fn forest_attribute_row(
    forest: &FlatForest,
    expected: &[f64],
    credits: &Credits,
    row: &[f64],
    width: usize,
) -> RowAttribution {
    let mut bins = vec![0.0f64; width];
    let mut sum = 0.0;
    for &root in &forest.roots {
        sum += attribute_walk_row(&forest.nodes, credits, root, row, &mut bins);
    }
    finish_forest_row(forest, expected, &bins, sum)
}

fn finish_forest_row(
    forest: &FlatForest,
    expected: &[f64],
    raw_bins: &[f64],
    leaf_sum: f64,
) -> RowAttribution {
    let mut root_sum = 0.0;
    for &root in &forest.roots {
        root_sum += expected[root as usize];
    }
    let baseline = root_sum / forest.n_trees;
    let contributions: Vec<f64> = raw_bins.iter().map(|&b| b / forest.n_trees).collect();
    let target = leaf_sum / forest.n_trees;
    finish_additive(baseline, contributions, target, target)
}

/// Batched forest attribution with the same block/fallback structure as
/// `FlatForest::predict_batch`: empty forests yield constant
/// attributions, zero-width or too-narrow matrices take the scalar row
/// walk, everything else the blocked kernel.
fn forest_attribute_batch(forest: &FlatForest, x: &ColMatrix) -> Vec<RowAttribution> {
    let n = x.n_rows();
    let width = x.n_cols();
    if forest.roots.is_empty() {
        return (0..n)
            .map(|_| RowAttribution::constant(forest.empty_value, width))
            .collect();
    }
    let at = forest.attr_tables();
    let (expected, credits) = (at.expected.as_slice(), &at.credits);
    if width == 0 || forest.nodes.kernel_tables().max_feature as usize >= width {
        let mut row = vec![0.0; width];
        return (0..n)
            .map(|i| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = x.value(i, j);
                }
                forest_attribute_row(forest, expected, credits, &row, width)
            })
            .collect();
    }
    if let Some(prog) = forest.program() {
        // The compiled program lands on the same leaf ids in the same
        // per-row tree order, so deposits and leaf sums — and therefore
        // every attribution — are bit-identical to the interpreter.
        let mut bins = vec![0.0f64; n * width];
        let mut sums = vec![0.0f64; n];
        prog.walk_batch(x, &mut |r, leaf, v| {
            sums[r] += v;
            credits.deposit(leaf as usize, &mut bins[r * width..(r + 1) * width]);
        });
        return (0..n)
            .map(|r| {
                finish_forest_row(forest, expected, &bins[r * width..(r + 1) * width], sums[r])
            })
            .collect();
    }
    let mut out = Vec::with_capacity(n);
    let mut bins = vec![0.0f64; BLOCK_ROWS * width];
    let mut sums = [0.0f64; BLOCK_ROWS];
    for_each_block(x, |_start, rows, block| {
        let padded = block.len() / width;
        bins[..padded * width].fill(0.0);
        sums[..padded].fill(0.0);
        for (&root, &depth) in forest.roots.iter().zip(&forest.depths) {
            attribute_walk_block(
                &forest.nodes,
                forest.nodes.kernel_tables(),
                credits,
                root,
                depth,
                block,
                width,
                &mut bins,
                &mut |r, v| sums[r] += v,
            );
        }
        for r in 0..rows {
            out.push(finish_forest_row(
                forest,
                expected,
                &bins[r * width..(r + 1) * width],
                sums[r],
            ));
        }
    });
    out
}

/// Scalar single-tree attribution: the leaf value *is* the prediction.
fn tree_attribute_row(
    tree: &FlatTree,
    expected: &[f64],
    credits: &Credits,
    row: &[f64],
    width: usize,
) -> RowAttribution {
    let mut bins = vec![0.0f64; width];
    let leaf = attribute_walk_row(tree, credits, 0, row, &mut bins);
    finish_additive(expected[0], bins, leaf, leaf)
}

/// Batched single-tree attribution, mirroring `FlatTree::predict_batch`'s
/// fallback structure.
fn tree_attribute_batch(tree: &FlatTree, x: &ColMatrix) -> Vec<RowAttribution> {
    let n = x.n_rows();
    let width = x.n_cols();
    let expected = subtree_expected(tree);
    let credits = Credits::build(tree, &expected);
    if width == 0 {
        return (0..n)
            .map(|_| tree_attribute_row(tree, &expected, &credits, &[], 0))
            .collect();
    }
    let kt = tree.kernel_tables();
    if kt.max_feature as usize >= width {
        let mut row = vec![0.0; width];
        return (0..n)
            .map(|i| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = x.value(i, j);
                }
                tree_attribute_row(tree, &expected, &credits, &row, width)
            })
            .collect();
    }
    if let Some(prog) = tree.program() {
        let mut bins = vec![0.0f64; n * width];
        let mut leaves = vec![0.0f64; n];
        prog.walk_batch(x, &mut |r, leaf, v| {
            leaves[r] = v;
            credits.deposit(leaf as usize, &mut bins[r * width..(r + 1) * width]);
        });
        return (0..n)
            .map(|r| {
                finish_additive(
                    expected[0],
                    bins[r * width..(r + 1) * width].to_vec(),
                    leaves[r],
                    leaves[r],
                )
            })
            .collect();
    }
    let depth = tree.node_depths()[0];
    let mut out = Vec::with_capacity(n);
    let mut bins = vec![0.0f64; BLOCK_ROWS * width];
    let mut leaves = [0.0f64; BLOCK_ROWS];
    for_each_block(x, |_start, rows, block| {
        let padded = block.len() / width;
        bins[..padded * width].fill(0.0);
        attribute_walk_block(
            tree,
            kt,
            &credits,
            0,
            depth,
            block,
            width,
            &mut bins,
            &mut |r, v| leaves[r] = v,
        );
        for r in 0..rows {
            let leaf = leaves[r];
            out.push(finish_additive(
                expected[0],
                bins[r * width..(r + 1) * width].to_vec(),
                leaf,
                leaf,
            ));
        }
    });
    out
}

/// Linear margin decomposition: `contributions[j] = w_j · x_j`, baseline
/// is the intercept, and the target is folded in `linear_batch`'s order
/// (weights first, intercept last) so it matches the scoring kernel
/// bitwise; `exactify` reconciles the baseline-first verification fold.
fn linear_attribute_row(bias: f64, weights: &[f64], row: &[f64]) -> (f64, Vec<f64>, f64) {
    let mut z = 0.0;
    let mut bins = vec![0.0f64; row.len()];
    for (j, (w, &v)) in weights.iter().zip(row.iter()).enumerate() {
        let term = w * v;
        z += term;
        bins[j] = term;
    }
    z += bias;
    (bias, bins, z)
}

/// Gaussian-NB log-odds decomposition: baseline is the prior log-odds,
/// each feature credits its class-1-minus-class-0 log-likelihood term,
/// and the prediction is recomputed with exactly `nb_batch`'s fold
/// (priors first, per-feature terms in column order, max-shifted exp).
fn nb_attribute_row(
    log_priors: [f64; 2],
    stats: &[Vec<(f64, f64)>; 2],
    row: &[f64],
) -> RowAttribution {
    let ln_2pi = (2.0 * std::f64::consts::PI).ln();
    let width = row.len();
    let mut ll = [log_priors[0], log_priors[1]];
    let mut terms: Vec<[f64; 2]> = vec![[0.0, 0.0]; width];
    for (class, total) in ll.iter_mut().enumerate() {
        for (&(mean, var), j) in stats[class].iter().zip(0..width) {
            let v = row[j];
            let term = -0.5 * ((v - mean) * (v - mean) / var + var.ln() + ln_2pi);
            *total += term;
            terms[j][class] = term;
        }
    }
    let margin = ll[1] - ll[0];
    let m = ll[0].max(ll[1]);
    let e0 = (ll[0] - m).exp();
    let e1 = (ll[1] - m).exp();
    let prediction = e1 / (e0 + e1);
    let baseline = log_priors[1] - log_priors[0];
    let bins: Vec<f64> = terms.iter().map(|t| t[1] - t[0]).collect();
    finish_additive(baseline, bins, margin, prediction)
}

/// k-NN vote fraction with `knn_batch`'s exact per-row ops. Nearest
/// neighbours have no per-feature additive decomposition, so the whole
/// score sits in the baseline and every contribution is zero — the
/// invariant holds trivially.
fn knn_attribute_row(
    k: usize,
    width: usize,
    train: &[f64],
    labels: &[u32],
    row: &[f64],
) -> RowAttribution {
    let value = if labels.is_empty() {
        0.5
    } else {
        let mut dists: Vec<(f64, u32)> = if width == 0 {
            labels.iter().map(|&l| (0.0, l)).collect()
        } else {
            train
                .chunks_exact(width)
                .zip(labels)
                .map(|(t, &l)| (sq_dist(row, t), l))
                .collect()
        };
        let k = k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let votes: u32 = dists[..k].iter().map(|&(_, l)| l).sum();
        votes as f64 / k as f64
    };
    RowAttribution::constant(value, row.len())
}

/// Gather rows out of `x` and attribute each through `f`.
fn per_row(x: &ColMatrix, mut f: impl FnMut(&[f64]) -> RowAttribution) -> Vec<RowAttribution> {
    let mut row = vec![0.0; x.n_cols()];
    (0..x.n_rows())
        .map(|i| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = x.value(i, j);
            }
            f(&row)
        })
        .collect()
}

impl CompiledClassifier {
    /// Attribute every row of `x`. Tree-family models run the blocked
    /// kernel (one tree over all rows per block); the rest are cheap
    /// per-row decompositions. Results are bit-identical to
    /// [`attribute_row`](CompiledClassifier::attribute_row) on the same
    /// row, and `prediction` to
    /// [`predict_batch`](CompiledClassifier::predict_batch).
    pub fn attribute_batch(&self, x: &ColMatrix) -> Vec<RowAttribution> {
        match self {
            CompiledClassifier::Forest(forest) => forest_attribute_batch(forest, x),
            CompiledClassifier::Tree(tree) => tree_attribute_batch(tree, x),
            _ => per_row(x, |row| self.attribute_row(row)),
        }
    }

    /// The scalar reference: attribute one row.
    pub fn attribute_row(&self, row: &[f64]) -> RowAttribution {
        match self {
            CompiledClassifier::Forest(forest) => {
                if forest.roots.is_empty() {
                    return RowAttribution::constant(forest.empty_value, row.len());
                }
                let at = forest.attr_tables();
                forest_attribute_row(forest, &at.expected, &at.credits, row, row.len())
            }
            CompiledClassifier::Tree(tree) => {
                let expected = subtree_expected(tree);
                let credits = Credits::build(tree, &expected);
                tree_attribute_row(tree, &expected, &credits, row, row.len())
            }
            CompiledClassifier::Logistic { bias, weights } => {
                let (baseline, bins, z) = linear_attribute_row(*bias, weights, row);
                finish_additive(baseline, bins, z, crate::logreg::sigmoid(z))
            }
            CompiledClassifier::GaussianNb {
                log_priors,
                stats,
                fitted,
            } => {
                if !*fitted {
                    return RowAttribution::constant(0.5, row.len());
                }
                nb_attribute_row(*log_priors, stats, row)
            }
            CompiledClassifier::Knn {
                k,
                width,
                train,
                labels,
            } => knn_attribute_row(*k, *width, train, labels, row),
        }
    }
}

impl CompiledRegressor {
    /// Attribute every row of `x`; see
    /// [`CompiledClassifier::attribute_batch`].
    pub fn attribute_batch(&self, x: &ColMatrix) -> Vec<RowAttribution> {
        match self {
            CompiledRegressor::Forest(forest) => forest_attribute_batch(forest, x),
            CompiledRegressor::Tree(tree) => tree_attribute_batch(tree, x),
            CompiledRegressor::Linear { .. } => per_row(x, |row| self.attribute_row(row)),
        }
    }

    /// The scalar reference: attribute one row.
    pub fn attribute_row(&self, row: &[f64]) -> RowAttribution {
        match self {
            CompiledRegressor::Forest(forest) => {
                if forest.roots.is_empty() {
                    return RowAttribution::constant(forest.empty_value, row.len());
                }
                let at = forest.attr_tables();
                forest_attribute_row(forest, &at.expected, &at.credits, row, row.len())
            }
            CompiledRegressor::Tree(tree) => {
                let expected = subtree_expected(tree);
                let credits = Credits::build(tree, &expected);
                tree_attribute_row(tree, &expected, &credits, row, row.len())
            }
            CompiledRegressor::Linear {
                intercept,
                coefficients,
            } => {
                let (baseline, bins, z) = linear_attribute_row(*intercept, coefficients, row);
                finish_additive(baseline, bins, z, z)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::{ByteReader, ByteWriter};
    use crate::forest::{RandomForest, RandomForestRegressor};
    use crate::knn::Knn;
    use crate::logreg::LogisticRegression;
    use crate::nb::GaussianNb;
    use crate::tree::{DecisionTree, RegressionTree};
    use crate::{Classifier, Regressor};

    fn synth_rows(n: usize, cols: usize, salt: u64) -> Vec<Vec<f64>> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt | 1);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        (0..n)
            .map(|_| (0..cols).map(|_| next() * 10.0 - 5.0).collect())
            .collect()
    }

    fn labels_of(rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| (r[0] + r[1] > 0.0) as usize).collect()
    }

    fn assert_attribution_invariants(model: &CompiledClassifier, rows: &[Vec<f64>], name: &str) {
        let x = ColMatrix::from_rows(rows);
        let batch = model.attribute_batch(&x);
        let predictions = model.predict_batch(&x);
        assert_eq!(batch.len(), rows.len(), "{name}");
        for (i, (row, att)) in rows.iter().zip(&batch).enumerate() {
            assert_eq!(att.contributions.len(), row.len(), "{name} row {i}");
            // The fold reproduces the score exactly.
            assert_eq!(
                fold(att.baseline, &att.contributions).to_bits(),
                att.score.to_bits(),
                "{name} row {i}: fold != score"
            );
            // The prediction matches the scoring kernel exactly.
            assert_eq!(
                att.prediction.to_bits(),
                predictions[i].to_bits(),
                "{name} row {i}: prediction != predict_batch"
            );
            // Block and scalar paths agree exactly.
            let scalar = model.attribute_row(row);
            assert_eq!(att, &scalar, "{name} row {i}: batch != scalar");
        }
    }

    #[test]
    fn every_classifier_attribution_is_exact() {
        // 150 rows: two full blocks plus a tail, exercising padding lanes.
        let rows = synth_rows(150, 7, 3);
        let y = labels_of(&rows);
        let models: Vec<(&str, Box<dyn Classifier>)> = vec![
            ("forest", Box::new(RandomForest::new())),
            ("tree", Box::new(DecisionTree::new())),
            ("logistic", Box::new(LogisticRegression::new())),
            ("nb", Box::new(GaussianNb::new())),
            ("knn", Box::new(Knn::new(5))),
        ];
        for (name, mut model) in models {
            model.fit(&rows, &y);
            let compiled = model.compile().expect("compiles");
            assert_attribution_invariants(&compiled, &rows, name);
        }
    }

    #[test]
    fn regressor_attributions_are_exact() {
        let rows = synth_rows(97, 5, 11);
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[2] + 0.5).collect();
        let x = ColMatrix::from_rows(&rows);

        let mut forest = RandomForestRegressor::new();
        forest.fit(&rows, &y);
        let mut tree = RegressionTree::new();
        tree.fit(&rows, &y);
        let mut linear = crate::linreg::LinearRegression::new();
        linear.fit(&rows, &y);

        for (name, compiled) in [
            ("forest", forest.compile().unwrap()),
            ("tree", tree.compile().unwrap()),
            ("linear", linear.compile().unwrap()),
        ] {
            let batch = compiled.attribute_batch(&x);
            let predictions = compiled.predict_batch(&x);
            for (i, (row, att)) in rows.iter().zip(&batch).enumerate() {
                assert_eq!(
                    fold(att.baseline, &att.contributions).to_bits(),
                    att.score.to_bits(),
                    "{name} row {i}"
                );
                assert_eq!(att.prediction.to_bits(), predictions[i].to_bits(), "{name}");
                assert_eq!(att, &compiled.attribute_row(row), "{name} row {i}");
            }
        }
    }

    #[test]
    fn tree_credits_point_at_split_features() {
        // A hand-built stump on feature 2: all credit must land there.
        let mut w = ByteWriter::new();
        w.put_u8(1); // tree tag
        w.put_u32s(&[2, LEAF, LEAF]);
        w.put_f64s(&[0.0, 1.0, 5.0]);
        w.put_u32s(&[1, 1, 2]);
        w.put_u32s(&[2, 1, 2]);
        let bytes = w.into_bytes();
        let tree = CompiledClassifier::decode(&mut ByteReader::new(&bytes)).unwrap();
        let att = tree.attribute_row(&[9.0, 9.0, -1.0, 9.0]);
        assert_eq!(att.baseline, 3.0); // (1 + 5) / 2
        assert_eq!(att.score, 1.0);
        assert_eq!(att.contributions[2], -2.0);
        assert!(att
            .contributions
            .iter()
            .enumerate()
            .all(|(j, &c)| j == 2 || c == 0.0));
    }

    #[test]
    fn nan_leaves_degrade_to_constant_attribution() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u32s(&[LEAF]);
        w.put_f64s(&[f64::NAN]);
        w.put_u32s(&[0]);
        w.put_u32s(&[0]);
        let bytes = w.into_bytes();
        let tree = CompiledClassifier::decode(&mut ByteReader::new(&bytes)).unwrap();
        let rows = synth_rows(70, 3, 17);
        let x = ColMatrix::from_rows(&rows);
        for att in tree.attribute_batch(&x) {
            assert!(att.prediction.is_nan());
            assert!(att.baseline.is_nan());
            assert!(att.contributions.iter().all(|&c| c == 0.0));
        }
    }

    #[test]
    fn empty_forest_attributes_its_empty_value() {
        let forest = crate::infer::flatten_forest(std::iter::empty(), 0.5);
        let compiled = CompiledClassifier::Forest(forest);
        let rows = synth_rows(9, 3, 5);
        let x = ColMatrix::from_rows(&rows);
        for (att, row) in compiled.attribute_batch(&x).iter().zip(&rows) {
            assert_eq!(att.baseline, 0.5);
            assert_eq!(att.prediction, 0.5);
            assert_eq!(
                fold(att.baseline, &att.contributions).to_bits(),
                0.5f64.to_bits()
            );
            assert_eq!(att, &compiled.attribute_row(row));
        }
    }

    #[test]
    fn unfitted_models_attribute_constants() {
        let rows = synth_rows(10, 3, 1);
        let x = ColMatrix::from_rows(&rows);
        for model in [
            RandomForest::new().compile().unwrap(),
            DecisionTree::new().compile().unwrap(),
            GaussianNb::new().compile().unwrap(),
        ] {
            for att in model.attribute_batch(&x) {
                assert_eq!(att.prediction, 0.5);
                assert_eq!(
                    fold(att.baseline, &att.contributions).to_bits(),
                    att.score.to_bits()
                );
            }
        }
    }

    #[test]
    fn exactify_handles_awkward_targets() {
        // Residual absorption into the last nonzero bin.
        let mut baseline = 0.1;
        let mut bins = vec![0.2, 0.0, 0.3, 0.0];
        let target = 0.1 + (0.2 + 0.3) + 1e-18;
        exactify(&mut baseline, &mut bins, target);
        assert_eq!(fold(baseline, &bins).to_bits(), target.to_bits());
        assert_eq!(bins[1], 0.0);
        assert_eq!(bins[3], 0.0);

        // All-zero bins: the baseline takes the correction.
        let mut baseline = 1.0;
        let mut bins = vec![0.0; 3];
        exactify(&mut baseline, &mut bins, 2.5);
        assert_eq!(fold(baseline, &bins).to_bits(), 2.5f64.to_bits());

        // Non-finite targets collapse to the degenerate form.
        let mut baseline = 1.0;
        let mut bins = vec![0.5, 0.25];
        exactify(&mut baseline, &mut bins, f64::INFINITY);
        assert_eq!(baseline, f64::INFINITY);
        assert!(bins.iter().all(|&b| b == 0.0));

        // Negative-zero target survives the trailing-zero fold.
        let mut baseline = 1.0;
        let mut bins = vec![0.5, 0.25];
        exactify(&mut baseline, &mut bins, -0.0);
        assert_eq!(fold(baseline, &bins).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn wide_tree_features_fall_back_to_scalar_rows() {
        // A stump on feature 5 scored against 3-column rows: the batch
        // path must take the same fallback as `predict_batch` and stay
        // exact (the dropped credit is re-absorbed by exactify).
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u32s(&[5, LEAF, LEAF]);
        w.put_f64s(&[0.5, 1.0, 2.0]);
        w.put_u32s(&[1, 1, 2]);
        w.put_u32s(&[2, 1, 2]);
        let bytes = w.into_bytes();
        let tree = CompiledClassifier::decode(&mut ByteReader::new(&bytes)).unwrap();
        let rows = synth_rows(20, 3, 23);
        let x = ColMatrix::from_rows(&rows);
        let predictions = tree.predict_batch(&x);
        for (i, (att, row)) in tree.attribute_batch(&x).iter().zip(&rows).enumerate() {
            assert_eq!(att.prediction.to_bits(), predictions[i].to_bits());
            assert_eq!(
                fold(att.baseline, &att.contributions).to_bits(),
                att.score.to_bits()
            );
            assert_eq!(att, &tree.attribute_row(row));
        }
    }
}
