//! Minimal serde-free binary encoding for compiled models.
//!
//! The workspace builds offline with no registry access, so model
//! persistence is a hand-rolled little-endian format: fixed-width
//! integers, `f64::to_le_bytes` floats, and length-prefixed slices and
//! strings. [`ByteWriter`] appends to a growable buffer; [`ByteReader`]
//! walks a borrowed buffer with bounds checks, returning `Err(String)`
//! on truncated or malformed input instead of panicking.

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated input: need {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn get_usize(&mut self) -> Result<usize, String> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} overflows usize"))
    }

    pub fn get_f64(&mut self) -> Result<f64, String> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length from the stream, sanity-checked against the bytes left so
    /// a corrupt header cannot trigger an enormous allocation.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, String> {
        let n = self.get_usize()?;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(format!(
                "corrupt length {n} at offset {}: only {} bytes left",
                self.pos,
                self.remaining()
            ));
        }
        Ok(n)
    }

    pub fn get_str(&mut self) -> Result<String, String> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }

    pub fn get_f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_slices() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_str("naïve");
        w.put_f64s(&[1.5, f64::NAN, f64::INFINITY]);
        w.put_u32s(&[0, u32::MAX]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "naïve");
        let fs = r.get_f64s().unwrap();
        assert_eq!(fs[0], 1.5);
        assert!(fs[1].is_nan());
        assert_eq!(fs[2], f64::INFINITY);
        assert_eq!(r.get_u32s().unwrap(), vec![0, u32::MAX]);
        assert!(r.is_done());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = ByteWriter::new();
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.get_f64().is_err());
    }

    #[test]
    fn corrupt_length_errors_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64s().is_err());
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }
}
