//! Named-column datasets.

use std::collections::BTreeSet;

/// A feature matrix with named columns and an optional numeric or binary
/// class target — the ARFF-file role in the paper's Weka pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Column names, in column order.
    pub feature_names: Vec<String>,
    /// Row-major feature matrix; every row has `feature_names.len()` values.
    pub rows: Vec<Vec<f64>>,
    /// Per-row identifiers (application names), parallel to `rows`.
    pub ids: Vec<String>,
}

impl Dataset {
    /// Build a dataset from per-item `(id, features)` pairs where features
    /// are `(name, value)` lists. Columns are the union of all names, in
    /// sorted order; missing values become 0.0 (collectors always emit the
    /// full set, so this is a safety net, not an imputation strategy).
    pub fn from_named(items: &[(String, Vec<(String, f64)>)]) -> Dataset {
        let names: BTreeSet<&str> = items
            .iter()
            .flat_map(|(_, fv)| fv.iter().map(|(k, _)| k.as_str()))
            .collect();
        let feature_names: Vec<String> = names.into_iter().map(String::from).collect();
        let mut rows = Vec::with_capacity(items.len());
        let mut ids = Vec::with_capacity(items.len());
        for (id, fv) in items {
            let mut row = vec![0.0; feature_names.len()];
            for (k, v) in fv {
                if let Ok(i) = feature_names.binary_search(k) {
                    row[i] = *v;
                }
            }
            rows.push(row);
            ids.push(id.clone());
        }
        Dataset {
            feature_names,
            rows,
            ids,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.feature_names.len()
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Extract one column's values.
    pub fn column_values(&self, index: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[index]).collect()
    }

    /// A new dataset keeping only the named columns (in the given order).
    /// Unknown names are skipped.
    pub fn project(&self, names: &[&str]) -> Dataset {
        let indices: Vec<usize> = names.iter().filter_map(|n| self.column(n)).collect();
        Dataset {
            feature_names: indices
                .iter()
                .map(|&i| self.feature_names[i].clone())
                .collect(),
            rows: self
                .rows
                .iter()
                .map(|r| indices.iter().map(|&i| r[i]).collect())
                .collect(),
            ids: self.ids.clone(),
        }
    }

    /// A new dataset keeping only columns whose name starts with `prefix` —
    /// the single-family ablation helper.
    pub fn project_prefix(&self, prefix: &str) -> Dataset {
        let names: Vec<&str> = self
            .feature_names
            .iter()
            .filter(|n| n.starts_with(prefix))
            .map(|n| n.as_str())
            .collect();
        self.project(&names)
    }

    /// The subset of rows at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            ids: indices.iter().map(|&i| self.ids[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_named(&[
            (
                "app1".into(),
                vec![("loc".into(), 10.0), ("cyclo".into(), 3.0)],
            ),
            (
                "app2".into(),
                vec![("cyclo".into(), 5.0), ("loc".into(), 20.0)],
            ),
            ("app3".into(), vec![("loc".into(), 30.0)]),
        ])
    }

    #[test]
    fn columns_are_union_sorted() {
        let d = sample();
        assert_eq!(d.feature_names, vec!["cyclo", "loc"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.width(), 2);
    }

    #[test]
    fn rows_align_regardless_of_input_order() {
        let d = sample();
        assert_eq!(d.rows[0], vec![3.0, 10.0]);
        assert_eq!(d.rows[1], vec![5.0, 20.0]);
        // Missing cyclo for app3 defaults to 0.
        assert_eq!(d.rows[2], vec![0.0, 30.0]);
        assert_eq!(d.ids, vec!["app1", "app2", "app3"]);
    }

    #[test]
    fn column_lookup_and_values() {
        let d = sample();
        assert_eq!(d.column("loc"), Some(1));
        assert_eq!(d.column("nope"), None);
        assert_eq!(d.column_values(1), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn project_keeps_order_and_skips_unknown() {
        let d = sample();
        let p = d.project(&["loc", "ghost"]);
        assert_eq!(p.feature_names, vec!["loc"]);
        assert_eq!(p.rows, vec![vec![10.0], vec![20.0], vec![30.0]]);
        assert_eq!(p.ids.len(), 3);
    }

    #[test]
    fn project_prefix_filters() {
        let d = Dataset::from_named(&[(
            "a".into(),
            vec![
                ("loc.code".into(), 1.0),
                ("loc.blank".into(), 2.0),
                ("taint.flows".into(), 3.0),
            ],
        )]);
        let p = d.project_prefix("loc.");
        assert_eq!(p.width(), 2);
        assert!(p.column("taint.flows").is_none());
    }

    #[test]
    fn subset_selects_rows() {
        let d = sample();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids, vec!["app3", "app1"]);
        assert_eq!(s.rows[0][1], 30.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_named(&[]);
        assert!(d.is_empty());
        assert_eq!(d.width(), 0);
    }
}
