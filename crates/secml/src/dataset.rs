//! Named-column datasets and the columnar training matrix.
//!
//! Besides the in-RAM layout, [`ColMatrixBuilder`] can spill the matrix
//! to disk as fixed-width column segments (see [`ColMatrixBuilder::spill`])
//! and hand back a [`ColMatrix`] whose columns chunk-read lazily — the
//! out-of-core path for corpora too large to hold row-major in memory.
//! Spilled and in-RAM matrices are bit-identical through `col`, the sort
//! permutations and `subset`, so `fit_matrix` consumers never know the
//! difference.

use std::collections::BTreeSet;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotone source of [`ColMatrix::identity`] values. Starts at 1 so 0
/// never names a live matrix.
static NEXT_MATRIX_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_matrix_id() -> u64 {
    NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed)
}

/// A feature-major (columnar) matrix: one contiguous `Vec<f64>` per
/// feature, plus lazily computed per-column sort permutations.
///
/// This is the layout every learner trains on. Row-major `&[Vec<f64>]`
/// input is converted once at the training boundary; from there, split
/// sweeps, gram matrices, gradient passes and class statistics all walk
/// contiguous columns. The sort permutations make decision-tree split
/// finding O(n log n)-once-per-column instead of per-node, and
/// [`ColMatrix::subset`] *derives* a child's permutations from its
/// parent's in O(n) per column — so cross-validation folds and forest
/// bootstraps never re-sort.
#[derive(Debug)]
pub struct ColMatrix {
    n_rows: usize,
    columns: Columns,
    /// Unique per construction (clones included): matrices are immutable
    /// once built, so equal identities imply equal contents — the key the
    /// compiled kernels' shared rank cache relies on (see
    /// [`crate::kernel`]). Never reused within a process.
    id: u64,
    /// Per-column row permutation, ascending by value (ties keep row
    /// order). Computed on first use, shared across threads.
    perms: OnceLock<Vec<Vec<u32>>>,
}

/// Column storage: resident vectors, or disk segments read on demand.
#[derive(Debug, Clone)]
enum Columns {
    Ram(Vec<Vec<f64>>),
    Spilled(SpillReader),
}

impl Default for ColMatrix {
    fn default() -> Self {
        ColMatrix {
            n_rows: 0,
            columns: Columns::Ram(Vec::new()),
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        }
    }
}

impl Clone for ColMatrix {
    fn clone(&self) -> Self {
        let perms = OnceLock::new();
        if let Some(p) = self.perms.get() {
            let _ = perms.set(p.clone());
        }
        ColMatrix {
            n_rows: self.n_rows,
            columns: self.columns.clone(),
            // A fresh identity is sound (at worst one redundant rank
            // recompute) and keeps "same id ⟹ same allocation lineage"
            // trivially true.
            id: fresh_matrix_id(),
            perms,
        }
    }
}

impl ColMatrix {
    /// Transpose a row-major matrix. Every row must have the same width.
    pub fn from_rows(rows: &[Vec<f64>]) -> ColMatrix {
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut columns = vec![Vec::with_capacity(rows.len()); n_cols];
        for row in rows {
            debug_assert_eq!(row.len(), n_cols, "ragged row-major input");
            for (col, &v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        ColMatrix {
            n_rows: rows.len(),
            columns: Columns::Ram(columns),
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        }
    }

    /// Wrap ready-made columns. Every column must have the same length.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> ColMatrix {
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        assert!(columns.iter().all(|c| c.len() == n_rows), "ragged columns");
        ColMatrix {
            n_rows,
            columns: Columns::Ram(columns),
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        }
    }

    /// Re-open a matrix previously spilled to `dir` (by
    /// [`ColMatrixBuilder::spill`] or [`ColMatrix::spill_columns`]).
    /// Columns are chunk-read from the segment files on first touch.
    pub fn open_spilled(dir: &Path) -> io::Result<ColMatrix> {
        let reader = SpillReader::open(dir)?;
        Ok(ColMatrix {
            n_rows: reader.n_rows,
            columns: Columns::Spilled(reader),
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        })
    }

    /// Write columns to `dir` one at a time (single segment) and return
    /// the spilled matrix — the column-producer counterpart of
    /// [`ColMatrixBuilder`]'s row path. Peak memory is one column.
    pub fn spill_columns(
        dir: &Path,
        n_rows: usize,
        columns: impl IntoIterator<Item = Vec<f64>>,
    ) -> io::Result<ColMatrix> {
        std::fs::create_dir_all(dir)?;
        let mut seg = io::BufWriter::new(std::fs::File::create(dir.join("seg-0.col"))?);
        let mut n_cols = 0usize;
        for col in columns {
            assert_eq!(col.len(), n_rows, "ragged spilled column");
            for v in &col {
                seg.write_all(&v.to_le_bytes())?;
            }
            n_cols += 1;
        }
        seg.flush()?;
        let segment_rows = if n_rows > 0 {
            vec![n_rows as u32]
        } else {
            Vec::new()
        };
        write_spill_meta(dir, n_cols, n_rows, &segment_rows)?;
        if n_rows == 0 {
            // The lone segment would be empty; readers only open listed
            // segments, so drop the placeholder file.
            let _ = std::fs::remove_file(dir.join("seg-0.col"));
        }
        ColMatrix::open_spilled(dir)
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Process-unique identity (see the field docs): cache key for
    /// derived per-matrix state.
    pub(crate) fn identity(&self) -> u64 {
        self.id
    }

    pub fn n_cols(&self) -> usize {
        match &self.columns {
            Columns::Ram(cols) => cols.len(),
            Columns::Spilled(r) => r.n_cols,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// One feature column, contiguous. Spilled columns are read from disk
    /// on first touch and stay resident afterwards; use
    /// [`col_owned`](ColMatrix::col_owned) for one-shot passes that must
    /// not grow the resident set.
    pub fn col(&self, j: usize) -> &[f64] {
        match &self.columns {
            Columns::Ram(cols) => &cols[j],
            Columns::Spilled(r) => r.cache[j].get_or_init(|| {
                r.read_column(j)
                    .unwrap_or_else(|e| panic!("spilled column {j} unreadable: {e}"))
            }),
        }
    }

    /// Owned copy of column `j`. For spilled matrices this chunk-reads
    /// from disk WITHOUT populating the resident cache — the streaming
    /// statistics path over matrices wider than memory.
    pub fn col_owned(&self, j: usize) -> Vec<f64> {
        match &self.columns {
            Columns::Ram(cols) => cols[j].clone(),
            Columns::Spilled(r) => match r.cache[j].get() {
                Some(c) => c.clone(),
                None => r
                    .read_column(j)
                    .unwrap_or_else(|e| panic!("spilled column {j} unreadable: {e}")),
            },
        }
    }

    /// Single cell (row `i`, column `j`).
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.col(j)[i]
    }

    /// Materialize row `i` (allocation per call — prediction-path only).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.n_cols()).map(|j| self.col(j)[i]).collect()
    }

    /// Materialize the whole matrix row-major (for row-based consumers
    /// like k-NN's training-set store).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }

    /// Row indices of column `j` in ascending value order (NaNs sort
    /// last under `total_cmp`; ties keep row order). First call sorts
    /// every column once; the result is cached and shared.
    pub fn sorted(&self, j: usize) -> &[u32] {
        &self.all_perms()[j]
    }

    fn all_perms(&self) -> &Vec<Vec<u32>> {
        self.perms.get_or_init(|| {
            (0..self.n_cols())
                .map(|j| {
                    let col = self.col(j);
                    let mut idx: Vec<u32> = (0..self.n_rows as u32).collect();
                    idx.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
                    idx
                })
                .collect()
        })
    }

    /// Gather the rows at `indices` (duplicates allowed — this is also
    /// the forest-bootstrap path). If this matrix's sort permutations
    /// are already computed, the subset's permutations are *derived*
    /// from them with a counting pass instead of re-sorting: O(N + n)
    /// per column.
    pub fn subset(&self, indices: &[usize]) -> ColMatrix {
        let columns: Vec<Vec<f64>> = (0..self.n_cols())
            .map(|j| {
                let col = self.col(j);
                indices.iter().map(|&i| col[i]).collect()
            })
            .collect();
        let out = ColMatrix {
            n_rows: indices.len(),
            columns: Columns::Ram(columns),
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        };
        if let Some(parent_perms) = self.perms.get() {
            // Stable counting sort by parent row: slots[start[r]..] are
            // the subset positions holding parent row r, ascending.
            let mut count = vec![0u32; self.n_rows];
            for &r in indices {
                count[r] += 1;
            }
            let mut start = vec![0u32; self.n_rows];
            let mut sum = 0u32;
            for (s, &c) in start.iter_mut().zip(&count) {
                *s = sum;
                sum += c;
            }
            let mut slots = vec![0u32; indices.len()];
            let mut cursor = start.clone();
            for (pos, &r) in indices.iter().enumerate() {
                slots[cursor[r] as usize] = pos as u32;
                cursor[r] += 1;
            }
            let derived: Vec<Vec<u32>> = parent_perms
                .iter()
                .map(|perm| {
                    let mut out_perm = Vec::with_capacity(indices.len());
                    for &r in perm {
                        let (r, lo) = (r as usize, start[r as usize] as usize);
                        out_perm.extend_from_slice(&slots[lo..lo + count[r] as usize]);
                    }
                    out_perm
                })
                .collect();
            let _ = out.perms.set(derived);
        }
        out
    }
}

/// On-disk spill layout, all integers little-endian:
///
/// ```text
/// dir/matrix.meta : "CLSM" magic, version byte (1), n_cols u32,
///                   n_rows u64, n_segments u32, then rows-per-segment u32…
/// dir/seg-<k>.col : column-major f64 bits for segment k — column j's
///                   rows live at byte offset j·rows(k)·8.
/// ```
///
/// Values are raw `f64::to_le_bytes`, so every bit pattern (NaN payloads
/// included) round-trips exactly — the spilled matrix is bit-identical
/// to its in-RAM twin.
const SPILL_MAGIC: &[u8; 4] = b"CLSM";
const SPILL_VERSION: u8 = 1;

fn write_spill_meta(
    dir: &Path,
    n_cols: usize,
    n_rows: usize,
    segment_rows: &[u32],
) -> io::Result<()> {
    let mut meta = Vec::with_capacity(21 + 4 * segment_rows.len());
    meta.extend_from_slice(SPILL_MAGIC);
    meta.push(SPILL_VERSION);
    meta.extend_from_slice(&(n_cols as u32).to_le_bytes());
    meta.extend_from_slice(&(n_rows as u64).to_le_bytes());
    meta.extend_from_slice(&(segment_rows.len() as u32).to_le_bytes());
    for &rows in segment_rows {
        meta.extend_from_slice(&rows.to_le_bytes());
    }
    std::fs::write(dir.join("matrix.meta"), meta)
}

fn bad_meta(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("spill meta: {msg}"))
}

/// Lazily reads the columns of a spilled matrix back from its segment
/// files via plain `std::fs` seeks — offline-safe, no mmap dependency.
#[derive(Debug)]
struct SpillReader {
    dir: PathBuf,
    n_cols: usize,
    n_rows: usize,
    segment_rows: Vec<u32>,
    /// One lazily-loaded resident cell per column; columns the training
    /// path never touches never leave disk.
    cache: Vec<OnceLock<Vec<f64>>>,
}

impl Clone for SpillReader {
    fn clone(&self) -> Self {
        let cache = self
            .cache
            .iter()
            .map(|cell| {
                let fresh = OnceLock::new();
                if let Some(v) = cell.get() {
                    let _ = fresh.set(v.clone());
                }
                fresh
            })
            .collect();
        SpillReader {
            dir: self.dir.clone(),
            n_cols: self.n_cols,
            n_rows: self.n_rows,
            segment_rows: self.segment_rows.clone(),
            cache,
        }
    }
}

impl SpillReader {
    fn open(dir: &Path) -> io::Result<SpillReader> {
        let meta = std::fs::read(dir.join("matrix.meta"))?;
        if meta.len() < 21 || &meta[..4] != SPILL_MAGIC {
            return Err(bad_meta("missing CLSM magic"));
        }
        if meta[4] != SPILL_VERSION {
            return Err(bad_meta(&format!("unsupported version {}", meta[4])));
        }
        let n_cols = u32::from_le_bytes(meta[5..9].try_into().unwrap()) as usize;
        let n_rows = u64::from_le_bytes(meta[9..17].try_into().unwrap()) as usize;
        let n_segments = u32::from_le_bytes(meta[17..21].try_into().unwrap()) as usize;
        if meta.len() != 21 + 4 * n_segments {
            return Err(bad_meta("truncated segment table"));
        }
        let segment_rows: Vec<u32> = (0..n_segments)
            .map(|k| u32::from_le_bytes(meta[21 + 4 * k..25 + 4 * k].try_into().unwrap()))
            .collect();
        if segment_rows.iter().map(|&r| r as usize).sum::<usize>() != n_rows {
            return Err(bad_meta("segment rows do not sum to n_rows"));
        }
        Ok(SpillReader {
            dir: dir.to_path_buf(),
            n_cols,
            n_rows,
            segment_rows,
            cache: (0..n_cols).map(|_| OnceLock::new()).collect(),
        })
    }

    /// Chunk-read column `j` across every segment, in row order.
    fn read_column(&self, j: usize) -> io::Result<Vec<f64>> {
        assert!(j < self.n_cols, "column {j} out of {}", self.n_cols);
        let mut out = Vec::with_capacity(self.n_rows);
        let mut buf = Vec::new();
        for (k, &rows) in self.segment_rows.iter().enumerate() {
            let rows = rows as usize;
            let mut file = std::fs::File::open(self.dir.join(format!("seg-{k}.col")))?;
            file.seek(SeekFrom::Start((j * rows * 8) as u64))?;
            buf.resize(rows * 8, 0);
            file.read_exact(&mut buf)?;
            out.extend(
                buf.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
            );
        }
        Ok(out)
    }
}

/// Incremental row-streaming constructor for [`ColMatrix`], with an
/// optional spill-to-disk mode for matrices that must never be fully
/// resident. Rows accumulate in a bounded columnar chunk buffer; once
/// [`spill`](ColMatrixBuilder::spill) is armed, each full chunk flushes
/// to its own fixed-width column segment and the buffer resets.
#[derive(Debug)]
pub struct ColMatrixBuilder {
    n_cols: usize,
    chunk_rows: usize,
    buf: Vec<Vec<f64>>,
    buffered: usize,
    n_rows: usize,
    spill: Option<SpillTarget>,
}

#[derive(Debug)]
struct SpillTarget {
    dir: PathBuf,
    segment_rows: Vec<u32>,
}

impl ColMatrixBuilder {
    /// A builder for a `n_cols`-wide matrix (in-RAM until `spill`).
    pub fn new(n_cols: usize) -> ColMatrixBuilder {
        ColMatrixBuilder {
            n_cols,
            chunk_rows: 4096,
            buf: vec![Vec::new(); n_cols],
            buffered: 0,
            n_rows: 0,
            spill: None,
        }
    }

    /// Rows per disk segment (and the spill-mode memory bound).
    pub fn chunk_rows(mut self, rows: usize) -> ColMatrixBuilder {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Arm spill-to-disk mode: every full chunk of rows is written to
    /// `dir` as a column-major segment and dropped from memory. Call
    /// before the first [`push_row`](ColMatrixBuilder::push_row).
    pub fn spill(mut self, dir: &Path) -> io::Result<ColMatrixBuilder> {
        assert_eq!(self.n_rows, 0, "spill must be armed before rows are pushed");
        std::fs::create_dir_all(dir)?;
        self.spill = Some(SpillTarget {
            dir: dir.to_path_buf(),
            segment_rows: Vec::new(),
        });
        Ok(self)
    }

    /// Append one row (must have exactly `n_cols` values).
    pub fn push_row(&mut self, row: &[f64]) -> io::Result<()> {
        assert_eq!(row.len(), self.n_cols, "ragged row pushed into builder");
        for (col, &v) in self.buf.iter_mut().zip(row) {
            col.push(v);
        }
        self.buffered += 1;
        self.n_rows += 1;
        if self.spill.is_some() && self.buffered == self.chunk_rows {
            self.flush_segment()?;
        }
        Ok(())
    }

    /// Rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        let target = self.spill.as_mut().expect("flush only in spill mode");
        let k = target.segment_rows.len();
        let mut seg = io::BufWriter::new(std::fs::File::create(
            target.dir.join(format!("seg-{k}.col")),
        )?);
        for col in &mut self.buf {
            for v in col.iter() {
                seg.write_all(&v.to_le_bytes())?;
            }
            col.clear();
        }
        seg.flush()?;
        target.segment_rows.push(self.buffered as u32);
        self.buffered = 0;
        Ok(())
    }

    /// Finish the matrix: in-RAM columns, or (in spill mode) flush the
    /// tail segment, write the meta header and re-open the spilled form.
    pub fn finish(mut self) -> io::Result<ColMatrix> {
        match self.spill.is_some() {
            false => Ok(ColMatrix::from_columns(self.buf)),
            true => {
                if self.buffered > 0 {
                    self.flush_segment()?;
                }
                let target = self.spill.take().expect("spill mode");
                write_spill_meta(&target.dir, self.n_cols, self.n_rows, &target.segment_rows)?;
                ColMatrix::open_spilled(&target.dir)
            }
        }
    }
}

/// A feature matrix with named columns and an optional numeric or binary
/// class target — the ARFF-file role in the paper's Weka pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Column names, in column order.
    pub feature_names: Vec<String>,
    /// Row-major feature matrix; every row has `feature_names.len()` values.
    pub rows: Vec<Vec<f64>>,
    /// Per-row identifiers (application names), parallel to `rows`.
    pub ids: Vec<String>,
}

impl Dataset {
    /// Build a dataset from per-item `(id, features)` pairs where features
    /// are `(name, value)` lists. Columns are the union of all names, in
    /// sorted order; missing values become 0.0 (collectors always emit the
    /// full set, so this is a safety net, not an imputation strategy).
    pub fn from_named(items: &[(String, Vec<(String, f64)>)]) -> Dataset {
        let names: BTreeSet<&str> = items
            .iter()
            .flat_map(|(_, fv)| fv.iter().map(|(k, _)| k.as_str()))
            .collect();
        let feature_names: Vec<String> = names.into_iter().map(String::from).collect();
        let mut rows = Vec::with_capacity(items.len());
        let mut ids = Vec::with_capacity(items.len());
        for (id, fv) in items {
            let mut row = vec![0.0; feature_names.len()];
            for (k, v) in fv {
                if let Ok(i) = feature_names.binary_search(k) {
                    row[i] = *v;
                }
            }
            rows.push(row);
            ids.push(id.clone());
        }
        Dataset {
            feature_names,
            rows,
            ids,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.feature_names.len()
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Extract one column's values.
    pub fn column_values(&self, index: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[index]).collect()
    }

    /// A new dataset keeping only the named columns (in the given order).
    /// Unknown names are skipped.
    pub fn project(&self, names: &[&str]) -> Dataset {
        let indices: Vec<usize> = names.iter().filter_map(|n| self.column(n)).collect();
        Dataset {
            feature_names: indices
                .iter()
                .map(|&i| self.feature_names[i].clone())
                .collect(),
            rows: self
                .rows
                .iter()
                .map(|r| indices.iter().map(|&i| r[i]).collect())
                .collect(),
            ids: self.ids.clone(),
        }
    }

    /// A new dataset keeping only columns whose name starts with `prefix` —
    /// the single-family ablation helper.
    pub fn project_prefix(&self, prefix: &str) -> Dataset {
        let names: Vec<&str> = self
            .feature_names
            .iter()
            .filter(|n| n.starts_with(prefix))
            .map(|n| n.as_str())
            .collect();
        self.project(&names)
    }

    /// The subset of rows at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            ids: indices.iter().map(|&i| self.ids[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_named(&[
            (
                "app1".into(),
                vec![("loc".into(), 10.0), ("cyclo".into(), 3.0)],
            ),
            (
                "app2".into(),
                vec![("cyclo".into(), 5.0), ("loc".into(), 20.0)],
            ),
            ("app3".into(), vec![("loc".into(), 30.0)]),
        ])
    }

    #[test]
    fn columns_are_union_sorted() {
        let d = sample();
        assert_eq!(d.feature_names, vec!["cyclo", "loc"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.width(), 2);
    }

    #[test]
    fn rows_align_regardless_of_input_order() {
        let d = sample();
        assert_eq!(d.rows[0], vec![3.0, 10.0]);
        assert_eq!(d.rows[1], vec![5.0, 20.0]);
        // Missing cyclo for app3 defaults to 0.
        assert_eq!(d.rows[2], vec![0.0, 30.0]);
        assert_eq!(d.ids, vec!["app1", "app2", "app3"]);
    }

    #[test]
    fn column_lookup_and_values() {
        let d = sample();
        assert_eq!(d.column("loc"), Some(1));
        assert_eq!(d.column("nope"), None);
        assert_eq!(d.column_values(1), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn project_keeps_order_and_skips_unknown() {
        let d = sample();
        let p = d.project(&["loc", "ghost"]);
        assert_eq!(p.feature_names, vec!["loc"]);
        assert_eq!(p.rows, vec![vec![10.0], vec![20.0], vec![30.0]]);
        assert_eq!(p.ids.len(), 3);
    }

    #[test]
    fn project_prefix_filters() {
        let d = Dataset::from_named(&[(
            "a".into(),
            vec![
                ("loc.code".into(), 1.0),
                ("loc.blank".into(), 2.0),
                ("taint.flows".into(), 3.0),
            ],
        )]);
        let p = d.project_prefix("loc.");
        assert_eq!(p.width(), 2);
        assert!(p.column("taint.flows").is_none());
    }

    #[test]
    fn subset_selects_rows() {
        let d = sample();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids, vec!["app3", "app1"]);
        assert_eq!(s.rows[0][1], 30.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_named(&[]);
        assert!(d.is_empty());
        assert_eq!(d.width(), 0);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clairvoyant-spill-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spill_twin(rows: &[Vec<f64>], chunk: usize, tag: &str) -> (ColMatrix, ColMatrix) {
        let n_cols = rows.first().map_or(0, |r| r.len());
        let ram = ColMatrix::from_rows(rows);
        let dir = scratch_dir(tag);
        let mut b = ColMatrixBuilder::new(n_cols)
            .chunk_rows(chunk)
            .spill(&dir)
            .unwrap();
        for row in rows {
            b.push_row(row).unwrap();
        }
        (ram, b.finish().unwrap())
    }

    #[test]
    fn spill_round_trips_bits_across_segments() {
        let rows = vec![
            vec![1.5, f64::NAN, -0.0],
            vec![2.5, 7.0, 3.25],
            vec![-1.0, f64::INFINITY, 1e-300],
            vec![0.0, -7.5, f64::MIN_POSITIVE],
            vec![9.0, 0.125, -4.0],
        ];
        let (ram, spilled) = spill_twin(&rows, 2, "bits");
        assert_eq!(spilled.n_rows(), 5);
        assert_eq!(spilled.n_cols(), 3);
        for j in 0..3 {
            let a: Vec<u64> = ram.col(j).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = spilled.col(j).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "column {j} bit pattern");
        }
    }

    #[test]
    fn spill_matches_ram_permutations_and_subset() {
        let rows = vec![
            vec![3.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, f64::NAN],
            vec![1.0, 0.5],
        ];
        let (ram, spilled) = spill_twin(&rows, 3, "perms");
        for j in 0..2 {
            assert_eq!(ram.sorted(j), spilled.sorted(j), "perm {j}");
        }
        let sr = ram.subset(&[2, 0, 3]);
        let ss = spilled.subset(&[2, 0, 3]);
        for j in 0..2 {
            assert_eq!(
                sr.col(j).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ss.col(j).iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(sr.sorted(j), ss.sorted(j));
        }
    }

    #[test]
    fn builder_without_spill_matches_from_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut b = ColMatrixBuilder::new(2);
        for row in &rows {
            b.push_row(row).unwrap();
        }
        let m = b.finish().unwrap();
        let twin = ColMatrix::from_rows(&rows);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.col(0), twin.col(0));
        assert_eq!(m.col(1), twin.col(1));
    }

    #[test]
    fn spill_edge_shapes() {
        // Single row.
        let (ram, spilled) = spill_twin(&[vec![4.0, 5.0, 6.0]], 4096, "onerow");
        assert_eq!(ram.sorted(1), spilled.sorted(1));
        // Zero rows, zero columns.
        let dir = scratch_dir("empty");
        let b = ColMatrixBuilder::new(0).spill(&dir).unwrap();
        let empty = b.finish().unwrap();
        assert_eq!(empty.n_rows(), 0);
        assert_eq!(empty.n_cols(), 0);
        // Zero rows, some columns: every column reads back empty.
        let dir = scratch_dir("norows");
        let b = ColMatrixBuilder::new(2).spill(&dir).unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.n_cols(), 2);
        assert!(m.col(0).is_empty());
        assert_eq!(m.sorted(1), Vec::<u32>::new());
    }

    #[test]
    fn spilled_value_and_row_accessors() {
        let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let (_, spilled) = spill_twin(&rows, 2, "access");
        assert_eq!(spilled.value(1, 1), 20.0);
        assert_eq!(spilled.row(2), vec![3.0, 30.0]);
    }

    #[test]
    fn open_spilled_rejects_bad_meta() {
        let dir = scratch_dir("badmeta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("matrix.meta"), b"NOPE").unwrap();
        assert!(ColMatrix::open_spilled(&dir).is_err());
    }
}
