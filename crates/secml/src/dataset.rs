//! Named-column datasets and the columnar training matrix.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotone source of [`ColMatrix::identity`] values. Starts at 1 so 0
/// never names a live matrix.
static NEXT_MATRIX_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_matrix_id() -> u64 {
    NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed)
}

/// A feature-major (columnar) matrix: one contiguous `Vec<f64>` per
/// feature, plus lazily computed per-column sort permutations.
///
/// This is the layout every learner trains on. Row-major `&[Vec<f64>]`
/// input is converted once at the training boundary; from there, split
/// sweeps, gram matrices, gradient passes and class statistics all walk
/// contiguous columns. The sort permutations make decision-tree split
/// finding O(n log n)-once-per-column instead of per-node, and
/// [`ColMatrix::subset`] *derives* a child's permutations from its
/// parent's in O(n) per column — so cross-validation folds and forest
/// bootstraps never re-sort.
#[derive(Debug)]
pub struct ColMatrix {
    n_rows: usize,
    columns: Vec<Vec<f64>>,
    /// Unique per construction (clones included): matrices are immutable
    /// once built, so equal identities imply equal contents — the key the
    /// compiled kernels' shared rank cache relies on (see
    /// [`crate::kernel`]). Never reused within a process.
    id: u64,
    /// Per-column row permutation, ascending by value (ties keep row
    /// order). Computed on first use, shared across threads.
    perms: OnceLock<Vec<Vec<u32>>>,
}

impl Default for ColMatrix {
    fn default() -> Self {
        ColMatrix {
            n_rows: 0,
            columns: Vec::new(),
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        }
    }
}

impl Clone for ColMatrix {
    fn clone(&self) -> Self {
        let perms = OnceLock::new();
        if let Some(p) = self.perms.get() {
            let _ = perms.set(p.clone());
        }
        ColMatrix {
            n_rows: self.n_rows,
            columns: self.columns.clone(),
            // A fresh identity is sound (at worst one redundant rank
            // recompute) and keeps "same id ⟹ same allocation lineage"
            // trivially true.
            id: fresh_matrix_id(),
            perms,
        }
    }
}

impl ColMatrix {
    /// Transpose a row-major matrix. Every row must have the same width.
    pub fn from_rows(rows: &[Vec<f64>]) -> ColMatrix {
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut columns = vec![Vec::with_capacity(rows.len()); n_cols];
        for row in rows {
            debug_assert_eq!(row.len(), n_cols, "ragged row-major input");
            for (col, &v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        ColMatrix {
            n_rows: rows.len(),
            columns,
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        }
    }

    /// Wrap ready-made columns. Every column must have the same length.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> ColMatrix {
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        assert!(columns.iter().all(|c| c.len() == n_rows), "ragged columns");
        ColMatrix {
            n_rows,
            columns,
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Process-unique identity (see the field docs): cache key for
    /// derived per-matrix state.
    pub(crate) fn identity(&self) -> u64 {
        self.id
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// One feature column, contiguous.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.columns[j]
    }

    /// Single cell (row `i`, column `j`).
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.columns[j][i]
    }

    /// Materialize row `i` (allocation per call — prediction-path only).
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[i]).collect()
    }

    /// Materialize the whole matrix row-major (for row-based consumers
    /// like k-NN's training-set store).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }

    /// Row indices of column `j` in ascending value order (NaNs sort
    /// last under `total_cmp`; ties keep row order). First call sorts
    /// every column once; the result is cached and shared.
    pub fn sorted(&self, j: usize) -> &[u32] {
        &self.all_perms()[j]
    }

    fn all_perms(&self) -> &Vec<Vec<u32>> {
        self.perms.get_or_init(|| {
            self.columns
                .iter()
                .map(|col| {
                    let mut idx: Vec<u32> = (0..self.n_rows as u32).collect();
                    idx.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
                    idx
                })
                .collect()
        })
    }

    /// Gather the rows at `indices` (duplicates allowed — this is also
    /// the forest-bootstrap path). If this matrix's sort permutations
    /// are already computed, the subset's permutations are *derived*
    /// from them with a counting pass instead of re-sorting: O(N + n)
    /// per column.
    pub fn subset(&self, indices: &[usize]) -> ColMatrix {
        let columns: Vec<Vec<f64>> = self
            .columns
            .iter()
            .map(|col| indices.iter().map(|&i| col[i]).collect())
            .collect();
        let out = ColMatrix {
            n_rows: indices.len(),
            columns,
            id: fresh_matrix_id(),
            perms: OnceLock::new(),
        };
        if let Some(parent_perms) = self.perms.get() {
            // Stable counting sort by parent row: slots[start[r]..] are
            // the subset positions holding parent row r, ascending.
            let mut count = vec![0u32; self.n_rows];
            for &r in indices {
                count[r] += 1;
            }
            let mut start = vec![0u32; self.n_rows];
            let mut sum = 0u32;
            for (s, &c) in start.iter_mut().zip(&count) {
                *s = sum;
                sum += c;
            }
            let mut slots = vec![0u32; indices.len()];
            let mut cursor = start.clone();
            for (pos, &r) in indices.iter().enumerate() {
                slots[cursor[r] as usize] = pos as u32;
                cursor[r] += 1;
            }
            let derived: Vec<Vec<u32>> = parent_perms
                .iter()
                .map(|perm| {
                    let mut out_perm = Vec::with_capacity(indices.len());
                    for &r in perm {
                        let (r, lo) = (r as usize, start[r as usize] as usize);
                        out_perm.extend_from_slice(&slots[lo..lo + count[r] as usize]);
                    }
                    out_perm
                })
                .collect();
            let _ = out.perms.set(derived);
        }
        out
    }
}

/// A feature matrix with named columns and an optional numeric or binary
/// class target — the ARFF-file role in the paper's Weka pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Column names, in column order.
    pub feature_names: Vec<String>,
    /// Row-major feature matrix; every row has `feature_names.len()` values.
    pub rows: Vec<Vec<f64>>,
    /// Per-row identifiers (application names), parallel to `rows`.
    pub ids: Vec<String>,
}

impl Dataset {
    /// Build a dataset from per-item `(id, features)` pairs where features
    /// are `(name, value)` lists. Columns are the union of all names, in
    /// sorted order; missing values become 0.0 (collectors always emit the
    /// full set, so this is a safety net, not an imputation strategy).
    pub fn from_named(items: &[(String, Vec<(String, f64)>)]) -> Dataset {
        let names: BTreeSet<&str> = items
            .iter()
            .flat_map(|(_, fv)| fv.iter().map(|(k, _)| k.as_str()))
            .collect();
        let feature_names: Vec<String> = names.into_iter().map(String::from).collect();
        let mut rows = Vec::with_capacity(items.len());
        let mut ids = Vec::with_capacity(items.len());
        for (id, fv) in items {
            let mut row = vec![0.0; feature_names.len()];
            for (k, v) in fv {
                if let Ok(i) = feature_names.binary_search(k) {
                    row[i] = *v;
                }
            }
            rows.push(row);
            ids.push(id.clone());
        }
        Dataset {
            feature_names,
            rows,
            ids,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.feature_names.len()
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Extract one column's values.
    pub fn column_values(&self, index: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[index]).collect()
    }

    /// A new dataset keeping only the named columns (in the given order).
    /// Unknown names are skipped.
    pub fn project(&self, names: &[&str]) -> Dataset {
        let indices: Vec<usize> = names.iter().filter_map(|n| self.column(n)).collect();
        Dataset {
            feature_names: indices
                .iter()
                .map(|&i| self.feature_names[i].clone())
                .collect(),
            rows: self
                .rows
                .iter()
                .map(|r| indices.iter().map(|&i| r[i]).collect())
                .collect(),
            ids: self.ids.clone(),
        }
    }

    /// A new dataset keeping only columns whose name starts with `prefix` —
    /// the single-family ablation helper.
    pub fn project_prefix(&self, prefix: &str) -> Dataset {
        let names: Vec<&str> = self
            .feature_names
            .iter()
            .filter(|n| n.starts_with(prefix))
            .map(|n| n.as_str())
            .collect();
        self.project(&names)
    }

    /// The subset of rows at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            ids: indices.iter().map(|&i| self.ids[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_named(&[
            (
                "app1".into(),
                vec![("loc".into(), 10.0), ("cyclo".into(), 3.0)],
            ),
            (
                "app2".into(),
                vec![("cyclo".into(), 5.0), ("loc".into(), 20.0)],
            ),
            ("app3".into(), vec![("loc".into(), 30.0)]),
        ])
    }

    #[test]
    fn columns_are_union_sorted() {
        let d = sample();
        assert_eq!(d.feature_names, vec!["cyclo", "loc"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.width(), 2);
    }

    #[test]
    fn rows_align_regardless_of_input_order() {
        let d = sample();
        assert_eq!(d.rows[0], vec![3.0, 10.0]);
        assert_eq!(d.rows[1], vec![5.0, 20.0]);
        // Missing cyclo for app3 defaults to 0.
        assert_eq!(d.rows[2], vec![0.0, 30.0]);
        assert_eq!(d.ids, vec!["app1", "app2", "app3"]);
    }

    #[test]
    fn column_lookup_and_values() {
        let d = sample();
        assert_eq!(d.column("loc"), Some(1));
        assert_eq!(d.column("nope"), None);
        assert_eq!(d.column_values(1), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn project_keeps_order_and_skips_unknown() {
        let d = sample();
        let p = d.project(&["loc", "ghost"]);
        assert_eq!(p.feature_names, vec!["loc"]);
        assert_eq!(p.rows, vec![vec![10.0], vec![20.0], vec![30.0]]);
        assert_eq!(p.ids.len(), 3);
    }

    #[test]
    fn project_prefix_filters() {
        let d = Dataset::from_named(&[(
            "a".into(),
            vec![
                ("loc.code".into(), 1.0),
                ("loc.blank".into(), 2.0),
                ("taint.flows".into(), 3.0),
            ],
        )]);
        let p = d.project_prefix("loc.");
        assert_eq!(p.width(), 2);
        assert!(p.column("taint.flows").is_none());
    }

    #[test]
    fn subset_selects_rows() {
        let d = sample();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids, vec!["app3", "app1"]);
        assert_eq!(s.rows[0][1], 30.0);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_named(&[]);
        assert!(d.is_empty());
        assert_eq!(d.width(), 0);
    }
}
