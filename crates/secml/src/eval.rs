//! Model evaluation: classification and regression metrics plus stratified
//! k-fold cross-validation — "with cross validation within the ground
//! truth" (paper §1, §5.2 and Figure 4).

use crate::dataset::ColMatrix;
use crate::{Classifier, Regressor};
use pipeline::pool::parallel_map;

/// A 2×2 confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    pub tp: usize,
    pub tn: usize,
    pub fp: usize,
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tally predictions against truth.
    pub fn from_predictions(truth: &[usize], predicted: &[usize]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (1, 1) => m.tp += 1,
                (0, 0) => m.tn += 1,
                (0, 1) => m.fp += 1,
                _ => m.fn_ += 1,
            }
        }
        m
    }

    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Classification metrics bundle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassificationReport {
    pub matrix: ConfusionMatrix,
    pub accuracy: f64,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub auc: f64,
}

impl ClassificationReport {
    /// Compute from truth, hard predictions and scores (for AUC).
    pub fn compute(truth: &[usize], predicted: &[usize], scores: &[f64]) -> Self {
        let matrix = ConfusionMatrix::from_predictions(truth, predicted);
        ClassificationReport {
            matrix,
            accuracy: matrix.accuracy(),
            precision: matrix.precision(),
            recall: matrix.recall(),
            f1: matrix.f1(),
            auc: roc_auc(truth, scores),
        }
    }
}

/// Area under the ROC curve via the rank-sum (Mann-Whitney) formulation,
/// with midrank tie handling. Returns 0.5 when one class is absent.
pub fn roc_auc(truth: &[usize], scores: &[f64]) -> f64 {
    let pos = truth.iter().filter(|&&t| t == 1).count();
    let neg = truth.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Rank scores ascending with midranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t == 1)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

/// Brier score: mean squared error of predicted probabilities against
/// the 0/1 labels. Lower is better; 0.25 is the no-skill score for a
/// balanced class. Returns 0.0 for an empty input.
pub fn brier_score(truth: &[usize], probs: &[f64]) -> f64 {
    assert_eq!(truth.len(), probs.len());
    if truth.is_empty() {
        return 0.0;
    }
    let sum: f64 = truth
        .iter()
        .zip(probs)
        .map(|(&t, &p)| {
            let d = p - t as f64;
            d * d
        })
        .sum();
    sum / truth.len() as f64
}

/// Regression metrics bundle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegressionReport {
    /// Coefficient of determination (can be negative for bad fits).
    pub r_squared: f64,
    pub mae: f64,
    pub rmse: f64,
    pub n: usize,
}

impl RegressionReport {
    /// Compute from truth and predictions.
    pub fn compute(truth: &[f64], predicted: &[f64]) -> Self {
        assert_eq!(truth.len(), predicted.len());
        let n = truth.len();
        if n == 0 {
            return RegressionReport::default();
        }
        let mean = truth.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = truth.iter().map(|v| (v - mean) * (v - mean)).sum();
        let ss_res: f64 = truth
            .iter()
            .zip(predicted)
            .map(|(t, p)| (t - p) * (t - p))
            .sum();
        let mae = truth
            .iter()
            .zip(predicted)
            .map(|(t, p)| (t - p).abs())
            .sum::<f64>()
            / n as f64;
        let rmse = (ss_res / n as f64).sqrt();
        let r_squared = if ss_tot < 1e-12 {
            0.0
        } else {
            1.0 - ss_res / ss_tot
        };
        RegressionReport {
            r_squared,
            mae,
            rmse,
            n,
        }
    }
}

/// Deterministic stratified k-fold split: returns per-fold test index sets.
/// Class proportions are preserved per fold; assignment round-robins within
/// each class so results are reproducible without an RNG.
pub fn stratified_folds(labels: &[usize], k: usize) -> Vec<Vec<usize>> {
    let k = k.max(2);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in [0usize, 1] {
        let members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        for (pos, &i) in members.iter().enumerate() {
            folds[pos % k].push(i);
        }
    }
    folds.retain(|f| !f.is_empty());
    folds
}

/// Plain k-fold for regression targets.
pub fn folds(n: usize, k: usize) -> Vec<Vec<usize>> {
    let k = k.max(2);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..n {
        out[i % k].push(i);
    }
    out.retain(|f| !f.is_empty());
    out
}

/// The complement of `test` within `0..n`.
fn train_indices(n: usize, test: &[usize]) -> Vec<usize> {
    let mut held_out = vec![false; n];
    for &i in test {
        held_out[i] = true;
    }
    (0..n).filter(|&i| !held_out[i]).collect()
}

/// Cross-validate a classifier factory: for each fold, train on the rest and
/// evaluate on the fold; returns the pooled report over all held-out rows.
pub fn cross_validate_classifier<C: Classifier>(
    make: impl Fn() -> C + Sync,
    x: &ColMatrix,
    y: &[usize],
    k: usize,
) -> ClassificationReport {
    cross_validate_classifier_jobs(make, x, y, k, 1)
}

/// [`cross_validate_classifier`] with folds trained on `jobs` workers
/// (0 = all cores). Fold results are concatenated in fold order, so the
/// report is identical for any worker count.
pub fn cross_validate_classifier_jobs<C: Classifier>(
    make: impl Fn() -> C + Sync,
    x: &ColMatrix,
    y: &[usize],
    k: usize,
    jobs: usize,
) -> ClassificationReport {
    let fold_sets = stratified_folds(y, k);
    if x.n_cols() > 0 {
        // Sort once up front so every fold derives its permutations.
        x.sorted(0);
    }
    let jobs = if jobs == 0 {
        pipeline::pool::default_workers()
    } else {
        jobs
    };
    let per_fold = parallel_map(jobs, &fold_sets, |_, test| {
        let train_idx = train_indices(x.n_rows(), test);
        let tx = x.subset(&train_idx);
        let ty: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
        let mut model = make();
        model.fit_matrix(&tx, &ty);
        test.iter()
            .map(|&i| (y[i], model.predict_proba(&x.row(i))))
            .collect::<Vec<(usize, f64)>>()
    });
    let mut truth = Vec::new();
    let mut hard = Vec::new();
    let mut scores = Vec::new();
    for (t, p) in per_fold.into_iter().flatten() {
        truth.push(t);
        scores.push(p);
        hard.push((p >= 0.5) as usize);
    }
    ClassificationReport::compute(&truth, &hard, &scores)
}

/// Cross-validate a regressor factory; pooled report over held-out rows.
pub fn cross_validate_regressor<R: Regressor>(
    make: impl Fn() -> R + Sync,
    x: &ColMatrix,
    y: &[f64],
    k: usize,
) -> RegressionReport {
    cross_validate_regressor_jobs(make, x, y, k, 1)
}

/// [`cross_validate_regressor`] with folds trained on `jobs` workers
/// (0 = all cores); identical output for any worker count.
pub fn cross_validate_regressor_jobs<R: Regressor>(
    make: impl Fn() -> R + Sync,
    x: &ColMatrix,
    y: &[f64],
    k: usize,
    jobs: usize,
) -> RegressionReport {
    let fold_sets = folds(x.n_rows(), k);
    if x.n_cols() > 0 {
        x.sorted(0);
    }
    let jobs = if jobs == 0 {
        pipeline::pool::default_workers()
    } else {
        jobs
    };
    let per_fold = parallel_map(jobs, &fold_sets, |_, test| {
        let train_idx = train_indices(x.n_rows(), test);
        let tx = x.subset(&train_idx);
        let ty: Vec<f64> = train_idx.iter().map(|&i| y[i]).collect();
        let mut model = make();
        model.fit_matrix(&tx, &ty);
        test.iter()
            .map(|&i| (y[i], model.predict(&x.row(i))))
            .collect::<Vec<(f64, f64)>>()
    });
    let mut truth = Vec::new();
    let mut predicted = Vec::new();
    for (t, p) in per_fold.into_iter().flatten() {
        truth.push(t);
        predicted.push(p);
    }
    RegressionReport::compute(&truth, &predicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;
    use crate::logreg::LogisticRegression;

    #[test]
    fn confusion_matrix_counts() {
        let m = ConfusionMatrix::from_predictions(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!((m.tp, m.fn_, m.tn, m.fp), (2, 1, 1, 1));
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_matrix_metrics_are_zero_not_nan() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truth = [0, 0, 1, 1];
        assert_eq!(roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let truth = [0, 1, 0, 1];
        let same = [0.5, 0.5, 0.5, 0.5];
        assert!((roc_auc(&truth, &same) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1, 1, 1], &[0.1, 0.2, 0.3]), 0.5);
        assert_eq!(roc_auc(&[0, 0], &[0.1, 0.2]), 0.5);
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        // Two pos and two neg all tied → 0.5.
        assert!((roc_auc(&[0, 1, 0, 1], &[0.3, 0.3, 0.3, 0.3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn regression_report_perfect_fit() {
        let truth = [1.0, 2.0, 3.0];
        let r = RegressionReport::compute(&truth, &truth);
        assert_eq!(r.r_squared, 1.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
    }

    #[test]
    fn regression_report_mean_predictor_r2_zero() {
        let truth = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        let r = RegressionReport::compute(&truth, &mean);
        assert!(r.r_squared.abs() < 1e-12);
        assert!(r.mae > 0.0);
    }

    #[test]
    fn regression_report_bad_fit_negative_r2() {
        let truth = [1.0, 2.0, 3.0];
        let bad = [10.0, -10.0, 10.0];
        assert!(RegressionReport::compute(&truth, &bad).r_squared < 0.0);
    }

    #[test]
    fn stratified_folds_preserve_class_presence() {
        // 20 rows, 25% positive.
        let labels: Vec<usize> = (0..20).map(|i| (i % 4 == 0) as usize).collect();
        let folds = stratified_folds(&labels, 5);
        assert_eq!(folds.len(), 5);
        let all: Vec<usize> = folds.iter().flatten().copied().collect();
        assert_eq!(all.len(), 20);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "folds must partition");
        for f in &folds {
            assert!(
                f.iter().any(|&i| labels[i] == 1),
                "fold lost the minority class"
            );
        }
    }

    #[test]
    fn plain_folds_partition() {
        let f = folds(10, 3);
        let total: usize = f.iter().map(|x| x.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn cv_classifier_on_separable_data_scores_high() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 - 20.0 + if i % 2 == 0 { 0.3 } else { -0.3 };
            x.push(vec![v]);
            y.push((v > 0.0) as usize);
        }
        let m = ColMatrix::from_rows(&x);
        let report = cross_validate_classifier(LogisticRegression::new, &m, &y, 5);
        assert!(report.accuracy > 0.9, "acc = {}", report.accuracy);
        assert!(report.auc > 0.95, "auc = {}", report.auc);
    }

    #[test]
    fn cv_regressor_on_linear_data_scores_high() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let m = ColMatrix::from_rows(&x);
        let report = cross_validate_regressor(LinearRegression::new, &m, &y, 5);
        assert!(report.r_squared > 0.99);
    }

    #[test]
    fn cv_parallel_folds_match_sequential_bitwise() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.push(vec![(i % 13) as f64, (i % 7) as f64]);
            y.push((i % 13 > 6) as usize);
        }
        let m = ColMatrix::from_rows(&x);
        let seq = cross_validate_classifier_jobs(LogisticRegression::new, &m, &y, 5, 1);
        let par = cross_validate_classifier_jobs(LogisticRegression::new, &m, &y, 5, 4);
        assert_eq!(seq.auc.to_bits(), par.auc.to_bits());
        assert_eq!(seq.matrix, par.matrix);
    }

    #[test]
    fn brier_score_basics() {
        // Perfect predictions score 0, maximally wrong score 1.
        assert_eq!(brier_score(&[1, 0], &[1.0, 0.0]), 0.0);
        assert_eq!(brier_score(&[1, 0], &[0.0, 1.0]), 1.0);
        // Uniform 0.5 guess on balanced labels scores 0.25.
        assert!((brier_score(&[1, 0, 1, 0], &[0.5; 4]) - 0.25).abs() < 1e-12);
        assert_eq!(brier_score(&[], &[]), 0.0);
    }
}
