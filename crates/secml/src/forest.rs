//! Random forests: bagging + per-tree feature subsampling over the
//! decision/regression trees.

use crate::tree::{DecisionTree, RegressionTree, TreeConfig};
use crate::{Classifier, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Shared forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Features sampled per tree as a fraction of the total (√p-style
    /// defaults are achieved by the caller choosing ~ `1/√p`).
    pub feature_fraction: f64,
    /// RNG seed — forests are deterministic for a given seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            tree: TreeConfig::default(),
            feature_fraction: 0.6,
            seed: 42,
        }
    }
}

fn bootstrap(rng: &mut StdRng, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

fn feature_pool(rng: &mut StdRng, cols: usize, fraction: f64) -> Vec<usize> {
    let k = ((cols as f64 * fraction).ceil() as usize).clamp(1, cols.max(1));
    let mut all: Vec<usize> = (0..cols).collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

/// Random-forest classifier: mean of per-tree leaf probabilities.
#[derive(Debug, Clone, Default)]
pub struct RandomForest {
    pub config: ForestConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: ForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let cols = x[0].len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.n_trees {
            let sample = bootstrap(&mut rng, x.len());
            let bx: Vec<Vec<f64>> = sample.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<usize> = sample.iter().map(|&i| y[i]).collect();
            let pool = feature_pool(&mut rng, cols, self.config.feature_fraction);
            let mut tree = DecisionTree::with_config(self.config.tree);
            tree.fit_with_pool(&bx, &by, &pool);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.predict_proba(row)).sum::<f64>() / self.trees.len() as f64
    }
}

/// Random-forest regressor: mean of per-tree predictions.
#[derive(Debug, Clone, Default)]
pub struct RandomForestRegressor {
    pub config: ForestConfig,
    trees: Vec<RegressionTree>,
}

impl RandomForestRegressor {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: ForestConfig) -> Self {
        RandomForestRegressor {
            config,
            trees: Vec::new(),
        }
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "row/target count mismatch");
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let cols = x[0].len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.n_trees {
            let sample = bootstrap(&mut rng, x.len());
            let bx: Vec<Vec<f64>> = sample.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<f64> = sample.iter().map(|&i| y[i]).collect();
            let pool = feature_pool(&mut rng, cols, self.config.feature_fraction);
            let mut tree = RegressionTree::with_config(self.config.tree);
            tree.fit_with_pool(&bx, &by, &pool);
            self.trees.push(tree);
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_threshold() -> (Vec<Vec<f64>>, Vec<usize>) {
        // class = x0 + x1 > 10, with an irrelevant third feature.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let a = (i % 10) as f64;
            let b = (i / 10) as f64;
            x.push(vec![a, b, (i % 3) as f64]);
            y.push((a + b > 10.0) as usize);
        }
        (x, y)
    }

    #[test]
    fn forest_learns_threshold() {
        let (x, y) = noisy_threshold();
        let mut f = RandomForest::new();
        f.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(r, &l)| f.predict(r) == l).count();
        assert!(
            correct as f64 / x.len() as f64 > 0.9,
            "accuracy {}",
            correct as f64 / x.len() as f64
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = noisy_threshold();
        let mut f1 = RandomForest::new();
        f1.fit(&x, &y);
        let mut f2 = RandomForest::new();
        f2.fit(&x, &y);
        for row in &x {
            assert_eq!(f1.predict_proba(row), f2.predict_proba(row));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_threshold();
        let mut f1 = RandomForest::with_config(ForestConfig {
            seed: 1,
            ..Default::default()
        });
        f1.fit(&x, &y);
        let mut f2 = RandomForest::with_config(ForestConfig {
            seed: 2,
            ..Default::default()
        });
        f2.fit(&x, &y);
        let any_diff = x
            .iter()
            .any(|r| (f1.predict_proba(r) - f2.predict_proba(r)).abs() > 1e-12);
        assert!(any_diff);
    }

    #[test]
    fn probabilities_average_over_trees() {
        let (x, y) = noisy_threshold();
        let mut f = RandomForest::with_config(ForestConfig {
            n_trees: 30,
            ..Default::default()
        });
        f.fit(&x, &y);
        // Trees whose sampled feature pool misses one of the two relevant
        // features cap out near 0.75 on this out-of-distribution point, so
        // the ensemble mean lands in the low 0.8s with lucky draws and the
        // mid 0.7s with unlucky ones — assert confident direction, not a
        // specific bootstrap outcome.
        let p = f.predict_proba(&[9.0, 9.0, 0.0]);
        assert!(p > 0.7, "p = {p}");
        let p = f.predict_proba(&[0.0, 0.0, 0.0]);
        assert!(p < 0.3, "p = {p}");
    }

    #[test]
    fn regressor_fits_smooth_function() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let mut f = RandomForestRegressor::new();
        f.fit(&x, &y);
        let pred = f.predict(&[5.0]);
        assert!((pred - 16.0).abs() < 2.0, "pred = {pred}");
    }

    #[test]
    fn empty_fit_is_harmless() {
        let mut f = RandomForest::new();
        f.fit(&[], &[]);
        assert_eq!(f.predict_proba(&[1.0]), 0.5);
        let mut r = RandomForestRegressor::new();
        r.fit(&[], &[]);
        assert_eq!(r.predict(&[1.0]), 0.0);
    }
}
