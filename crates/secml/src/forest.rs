//! Random forests: bagging + per-tree feature subsampling over the
//! decision/regression trees.
//!
//! Trees are independent given their seeds, so training fans out over the
//! work-stealing pool: tree `t` draws its bootstrap and feature pool from
//! a generator seeded with `derive_seed(config.seed, t)`, which makes
//! every tree a pure function of `(config, data, t)` — the forest is
//! byte-identical whether grown on 1 thread or 16. Bootstrap matrices are
//! [`ColMatrix::subset`] gathers, so the per-column sort order is derived
//! from the parent matrix rather than re-sorted per tree.

use crate::dataset::ColMatrix;
use crate::tree::{DecisionTree, RegressionTree, TreeConfig};
use crate::{Classifier, Regressor};
use pipeline::pool::{default_workers, parallel_map};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{derive_seed, Rng, SeedableRng};

/// Shared forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    /// Features sampled per tree as a fraction of the total (√p-style
    /// defaults are achieved by the caller choosing ~ `1/√p`).
    pub feature_fraction: f64,
    /// RNG seed — forests are deterministic for a given seed, and the
    /// result does not depend on `jobs`.
    pub seed: u64,
    /// Worker threads for tree growing (0 = all cores, 1 = sequential).
    pub jobs: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            tree: TreeConfig::default(),
            feature_fraction: 0.6,
            seed: 42,
            jobs: 1,
        }
    }
}

impl ForestConfig {
    fn workers(&self) -> usize {
        if self.jobs == 0 {
            default_workers()
        } else {
            self.jobs
        }
    }
}

fn bootstrap(rng: &mut StdRng, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

fn feature_pool(rng: &mut StdRng, cols: usize, fraction: f64) -> Vec<usize> {
    let k = ((cols as f64 * fraction).ceil() as usize).clamp(1, cols.max(1));
    let mut all: Vec<usize> = (0..cols).collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

/// The bootstrap sample and feature pool for tree `t` — a pure function
/// of the config seed and the tree index.
fn tree_draw(config: &ForestConfig, t: usize, n: usize, cols: usize) -> (Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, t as u64));
    let sample = bootstrap(&mut rng, n);
    let pool = feature_pool(&mut rng, cols, config.feature_fraction);
    (sample, pool)
}

/// Random-forest classifier: mean of per-tree leaf probabilities.
#[derive(Debug, Clone, Default)]
pub struct RandomForest {
    pub config: ForestConfig,
    trees: Vec<DecisionTree>,
    /// Number of voting trees as `f64`, cached at fit time so prediction
    /// never reconverts the count per row. Kept as a divisor rather than
    /// a reciprocal: `sum * (1.0 / n)` is not bit-identical to `sum / n`
    /// for non-power-of-two tree counts.
    n_trees_f: f64,
}

impl RandomForest {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: ForestConfig) -> Self {
        RandomForest {
            config,
            ..Default::default()
        }
    }
}

impl Classifier for RandomForest {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[usize]) {
        assert_eq!(x.n_rows(), y.len(), "row/label count mismatch");
        self.trees.clear();
        self.n_trees_f = 0.0;
        if x.is_empty() || x.n_cols() == 0 {
            return;
        }
        // Sort once up front so every bootstrap derives its permutations.
        x.sorted(0);
        let indices: Vec<usize> = (0..self.config.n_trees).collect();
        self.trees = parallel_map(self.config.workers(), &indices, |_, &t| {
            let (sample, pool) = tree_draw(&self.config, t, x.n_rows(), x.n_cols());
            let bx = x.subset(&sample);
            let by: Vec<usize> = sample.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::with_config(self.config.tree);
            tree.fit_with_pool(&bx, &by, &pool);
            tree
        });
        self.n_trees_f = self.trees.len() as f64;
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.predict_proba(row)).sum::<f64>() / self.n_trees_f
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        crate::infer::flatten_forest(self.trees.iter().map(|t| t.root()), 0.5).predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledClassifier> {
        Some(crate::CompiledClassifier::Forest(
            crate::infer::flatten_forest(self.trees.iter().map(|t| t.root()), 0.5),
        ))
    }
}

/// Random-forest regressor: mean of per-tree predictions.
#[derive(Debug, Clone, Default)]
pub struct RandomForestRegressor {
    pub config: ForestConfig,
    trees: Vec<RegressionTree>,
    /// See [`RandomForest::n_trees_f`](RandomForest): fit-time divisor.
    n_trees_f: f64,
}

impl RandomForestRegressor {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: ForestConfig) -> Self {
        RandomForestRegressor {
            config,
            ..Default::default()
        }
    }
}

impl Regressor for RandomForestRegressor {
    fn fit_matrix(&mut self, x: &ColMatrix, y: &[f64]) {
        assert_eq!(x.n_rows(), y.len(), "row/target count mismatch");
        self.trees.clear();
        self.n_trees_f = 0.0;
        if x.is_empty() || x.n_cols() == 0 {
            return;
        }
        x.sorted(0);
        let indices: Vec<usize> = (0..self.config.n_trees).collect();
        self.trees = parallel_map(self.config.workers(), &indices, |_, &t| {
            let (sample, pool) = tree_draw(&self.config, t, x.n_rows(), x.n_cols());
            let bx = x.subset(&sample);
            let by: Vec<f64> = sample.iter().map(|&i| y[i]).collect();
            let mut tree = RegressionTree::with_config(self.config.tree);
            tree.fit_with_pool(&bx, &by, &pool);
            tree
        });
        self.n_trees_f = self.trees.len() as f64;
    }

    fn predict(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.n_trees_f
    }

    fn predict_batch(&self, x: &ColMatrix) -> Vec<f64> {
        crate::infer::flatten_forest(self.trees.iter().map(|t| t.root()), 0.0).predict_batch(x)
    }

    fn compile(&self) -> Option<crate::CompiledRegressor> {
        Some(crate::CompiledRegressor::Forest(
            crate::infer::flatten_forest(self.trees.iter().map(|t| t.root()), 0.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_threshold() -> (Vec<Vec<f64>>, Vec<usize>) {
        // class = x0 + x1 > 10, with an irrelevant third feature.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let a = (i % 10) as f64;
            let b = (i / 10) as f64;
            x.push(vec![a, b, (i % 3) as f64]);
            y.push((a + b > 10.0) as usize);
        }
        (x, y)
    }

    #[test]
    fn forest_learns_threshold() {
        let (x, y) = noisy_threshold();
        let mut f = RandomForest::new();
        f.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(r, &l)| f.predict(r) == l).count();
        assert!(
            correct as f64 / x.len() as f64 > 0.9,
            "accuracy {}",
            correct as f64 / x.len() as f64
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = noisy_threshold();
        let mut f1 = RandomForest::new();
        f1.fit(&x, &y);
        let mut f2 = RandomForest::new();
        f2.fit(&x, &y);
        for row in &x {
            assert_eq!(f1.predict_proba(row), f2.predict_proba(row));
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (x, y) = noisy_threshold();
        let mut seq = RandomForest::with_config(ForestConfig {
            jobs: 1,
            ..Default::default()
        });
        seq.fit(&x, &y);
        let mut par = RandomForest::with_config(ForestConfig {
            jobs: 4,
            ..Default::default()
        });
        par.fit(&x, &y);
        for row in &x {
            assert_eq!(
                seq.predict_proba(row).to_bits(),
                par.predict_proba(row).to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_threshold();
        let mut f1 = RandomForest::with_config(ForestConfig {
            seed: 1,
            ..Default::default()
        });
        f1.fit(&x, &y);
        let mut f2 = RandomForest::with_config(ForestConfig {
            seed: 2,
            ..Default::default()
        });
        f2.fit(&x, &y);
        let any_diff = x
            .iter()
            .any(|r| (f1.predict_proba(r) - f2.predict_proba(r)).abs() > 1e-12);
        assert!(any_diff);
    }

    #[test]
    fn probabilities_average_over_trees() {
        let (x, y) = noisy_threshold();
        let mut f = RandomForest::with_config(ForestConfig {
            n_trees: 30,
            ..Default::default()
        });
        f.fit(&x, &y);
        // Trees whose sampled feature pool misses one of the two relevant
        // features cap out near 0.75 on this out-of-distribution point, so
        // the ensemble mean lands in the low 0.8s with lucky draws and the
        // mid 0.7s with unlucky ones — assert confident direction, not a
        // specific bootstrap outcome.
        let p = f.predict_proba(&[9.0, 9.0, 0.0]);
        assert!(p > 0.7, "p = {p}");
        let p = f.predict_proba(&[0.0, 0.0, 0.0]);
        assert!(p < 0.3, "p = {p}");
    }

    #[test]
    fn regressor_fits_smooth_function() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let mut f = RandomForestRegressor::new();
        f.fit(&x, &y);
        let pred = f.predict(&[5.0]);
        assert!((pred - 16.0).abs() < 2.0, "pred = {pred}");
    }

    #[test]
    fn empty_fit_is_harmless() {
        let mut f = RandomForest::new();
        f.fit(&[], &[]);
        assert_eq!(f.predict_proba(&[1.0]), 0.5);
        let mut r = RandomForestRegressor::new();
        r.fit(&[], &[]);
        assert_eq!(r.predict(&[1.0]), 0.0);
    }
}
